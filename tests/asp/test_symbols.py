"""SymbolTable: the interning contract the grounder hot path relies on.

Everything downstream of the grounder assumes three properties:

* **bijection** — ids are dense, stable, and round-trip back to the exact
  values that were interned (including type distinctions like ``1`` vs
  ``"1"`` where hashing would happily collapse semantics);
* **pickle-stability** — a table that crosses a process/cache boundary
  assigns the *same* ids to already-known values afterwards, so id-tuples
  grounded before the pickle stay valid after it;
* **thread-safety** — concurrent interning of overlapping values from
  thread-backend workers never assigns two ids to one value.
"""

from __future__ import annotations

import pickle
import threading

from repro.asp.symbols import SymbolTable


def test_intern_is_idempotent_and_dense():
    table = SymbolTable()
    ids = [table.intern(v) for v in ("zlib", "1.2.11", 3, "zlib", 3)]
    assert ids == [0, 1, 2, 0, 2]
    assert len(table) == 3


def test_round_trip_values():
    table = SymbolTable()
    values = ("node", "zlib", 7, True, ("nested", 1))
    symbols = table.intern_tuple(values)
    assert table.materialize(symbols) == values
    assert [table.value(s) for s in symbols] == list(values)


def test_distinct_types_stay_distinct():
    # version "1" and int 1 are different ground terms and must keep
    # different ids
    table = SymbolTable()
    assert table.intern(1) != table.intern("1")
    # bool and int DO collapse (1 == True under dict equality) — which is
    # why ground_atom normalizes bools to ints before anything is interned;
    # this pin documents the invariant that normalization relies on
    assert table.intern(True) == table.intern(1)


def test_seeded_construction_preserves_ids():
    table = SymbolTable(["a", "b", "c"])
    assert table.intern("a") == 0
    assert table.intern("c") == 2
    assert table.intern("d") == 3


def test_pickle_round_trip_keeps_ids_stable():
    table = SymbolTable()
    before = {v: table.intern(v) for v in ("attr", "node", "zlib", 5)}
    clone = pickle.loads(pickle.dumps(table))
    assert len(clone) == len(table)
    for value, symbol in before.items():
        assert clone.intern(value) == symbol
        assert clone.value(symbol) == value
    # the clone keeps assigning dense ids past the pickled prefix
    assert clone.intern("fresh") == len(before)


def test_concurrent_intern_assigns_one_id_per_value():
    table = SymbolTable()
    universe = [f"value-{i}" for i in range(200)]
    results = []

    def worker(offset):
        local = {}
        for value in universe[offset:] + universe[:offset]:
            local[value] = table.intern(value)
        results.append(local)

    threads = [threading.Thread(target=worker, args=(o,)) for o in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(table) == len(universe)
    canonical = results[0]
    for local in results[1:]:
        assert local == canonical
    for value, symbol in canonical.items():
        assert table.value(symbol) == value
