"""CDCL solver unit tests (clauses, linear constraints, assumptions)."""

import itertools

import pytest

from repro.asp.solver import CDCLSolver, _luby


def make_solver(n, **kwargs):
    solver = CDCLSolver(**kwargs)
    variables = [solver.new_var() for _ in range(n)]
    return solver, variables


class TestBasics:
    def test_empty_problem_is_sat(self):
        solver = CDCLSolver()
        assert solver.solve() is True

    def test_unit_clause(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.solve() is True
        assert solver.model_value(a) is True

    def test_contradictory_units(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.add_clause([-a]) is False
        assert solver.solve() is False

    def test_empty_clause_is_unsat(self):
        solver, _ = make_solver(1)
        assert solver.add_clause([]) is False

    def test_simple_implication_chain(self):
        solver, (a, b, c) = make_solver(3)
        solver.add_clause([a])
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        assert solver.solve() is True
        assert solver.model_value(c) is True

    def test_three_sat_instance(self):
        solver, (a, b, c) = make_solver(3)
        solver.add_clause([a, b, c])
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        solver.add_clause([-c, -a])
        assert solver.solve() is True
        model = solver.model()
        # verify the model satisfies every clause
        for clause in ([a, b, c], [-a, b], [-b, c], [-c, -a]):
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: variables p[i][j] = pigeon i in hole j
        solver = CDCLSolver()
        p = [[solver.new_var() for _ in range(2)] for _ in range(3)]
        for i in range(3):
            solver.add_clause([p[i][0], p[i][1]])
        for j in range(2):
            for i1, i2 in itertools.combinations(range(3), 2):
                solver.add_clause([-p[i1][j], -p[i2][j]])
        assert solver.solve() is False

    def test_tautology_is_ignored(self):
        solver, (a,) = make_solver(1)
        assert solver.add_clause([a, -a]) is True
        assert solver.solve() is True

    def test_duplicate_literals_are_deduplicated(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, a, b, b])
        assert solver.solve() is True


class TestIncremental:
    def test_clauses_added_between_solves(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve() is True
        solver.add_clause([-a])
        assert solver.solve() is True
        assert solver.model_value(b) is True
        solver.add_clause([-b])
        assert solver.solve() is False

    def test_statistics_accumulate(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        solver.solve()
        solver.solve()
        assert solver.statistics()["solve_calls"] == 2


class TestAssumptions:
    def test_sat_under_assumption(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([-a, b])
        assert solver.solve([a]) is True
        assert solver.model_value(b) is True

    def test_unsat_under_assumption_but_sat_without(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([-a, b])
        solver.add_clause([-b])
        assert solver.solve([a]) is False
        assert solver.solve() is True
        assert solver.ok

    def test_conflicting_assumptions(self):
        solver, (a,) = make_solver(1)
        assert solver.solve([a, -a]) is False
        assert solver.solve() is True

    def test_many_assumptions(self):
        solver, variables = make_solver(20)
        for v1, v2 in zip(variables, variables[1:]):
            solver.add_clause([-v1, v2])
        assert solver.solve([variables[0]]) is True
        assert all(solver.model_value(v) for v in variables)


class TestLinearConstraints:
    def test_at_least_k(self):
        solver, variables = make_solver(4)
        solver.add_at_least(variables, 3)
        assert solver.solve() is True
        assert sum(solver.model_value(v) for v in variables) >= 3

    def test_at_most_k(self):
        solver, variables = make_solver(4)
        solver.add_at_most(variables, 1)
        solver.add_clause([variables[0]])
        assert solver.solve() is True
        assert sum(solver.model_value(v) for v in variables) <= 1

    def test_exactly_one(self):
        solver, variables = make_solver(5)
        solver.add_at_least(variables, 1)
        solver.add_at_most(variables, 1)
        assert solver.solve() is True
        assert sum(solver.model_value(v) for v in variables) == 1

    def test_infeasible_bound(self):
        solver, variables = make_solver(3)
        assert solver.add_at_least(variables, 4) is False

    def test_weighted_constraint(self):
        solver, (a, b, c) = make_solver(3)
        # 3a + 2b + 1c >= 3 and not a  =>  b and c must both be true
        solver.add_linear_geq([a, b, c], [3, 2, 1], 3)
        solver.add_clause([-a])
        assert solver.solve() is True
        assert solver.model_value(b) and solver.model_value(c)

    def test_weighted_constraint_infeasible_after_assignment(self):
        solver, (a, b, c) = make_solver(3)
        # 3a + 2b + 1c >= 4 and not a leaves at most 3: unsatisfiable
        solver.add_linear_geq([a, b, c], [3, 2, 1], 4)
        solver.add_clause([-a])
        assert solver.solve() is False

    def test_linear_conflict_is_learned(self):
        solver, variables = make_solver(6)
        solver.add_at_least(variables[:3], 2)
        solver.add_at_most(variables, 3)
        solver.add_clause([variables[3], variables[4], variables[5]])
        assert solver.solve() is True
        assert sum(solver.model_value(v) for v in variables) <= 3
        assert sum(solver.model_value(v) for v in variables[:3]) >= 2
        assert any(solver.model_value(v) for v in variables[3:])

    def test_negative_coefficient_rejected(self):
        solver, (a,) = make_solver(1)
        with pytest.raises(Exception):
            solver.add_linear_geq([a], [-1], 0)


class TestHeuristicsAndRestarts:
    @pytest.mark.parametrize("heuristic", ["vsids", "fixed"])
    @pytest.mark.parametrize("restart", ["luby", "geometric", "none"])
    def test_all_configurations_agree(self, heuristic, restart):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        solver = CDCLSolver(heuristic=heuristic, restart_strategy=restart)
        for _ in range(3):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(list(clause))
        assert solver.solve() is True

    def test_default_phase_true(self):
        solver = CDCLSolver(default_phase=True)
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve() is True


class TestLuby:
    def test_luby_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
