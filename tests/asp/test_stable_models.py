"""Stable-model semantics: completion, unfounded sets, loop nogoods."""

from repro.asp.completion import complete
from repro.asp.control import solve_program
from repro.asp.grounder import ground_program
from repro.asp.optimization import Optimizer
from repro.asp.parser import parse_program
from repro.asp.unfounded import StableModelEnforcer, find_unfounded_set


def solve(text, **kwargs):
    return solve_program(text, **kwargs)


class TestSupportedVsStable:
    def test_positive_loop_without_support_is_rejected(self):
        # {a, b} is a supported model of the completion but not stable.
        result = solve("a :- b. b :- a. c :- not a.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"c"}

    def test_loop_with_external_support_is_allowed(self):
        result = solve("a :- b. b :- a. b :- c. c.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"a", "b", "c"}

    def test_choice_gives_external_support(self):
        result = solve(
            """
            seed.
            { b } :- seed.
            a :- b.
            b :- a.
            need_b :- not b.
            :- need_b.
            """
        )
        assert result.satisfiable
        atoms = {atom[0] for atom in result.model.atoms()}
        assert "b" in atoms and "a" in atoms

    def test_long_loop_rejected(self):
        result = solve(
            """
            a :- b. b :- c. c :- d. d :- a.
            ok :- not a.
            """
        )
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"ok"}

    def test_negation_cycle_has_two_answer_sets(self):
        # a :- not b / b :- not a: either answer set is acceptable.
        result = solve("a :- not b. b :- not a.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms in ({"a"}, {"b"})

    def test_constraint_prunes_answer_sets(self):
        result = solve("a :- not b. b :- not a. :- a.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"b"}

    def test_unsatisfiable_program(self):
        result = solve("a :- not a.")
        assert not result.satisfiable


class TestUnfoundedSetMachinery:
    # A loop a <-> b whose only external support is the choice atom `trigger`:
    # if trigger is false, {a, b} is supported by the completion but unstable.
    LOOP_PROGRAM = """
        { trigger }.
        a :- trigger.
        a :- b.
        b :- a.
    """

    def _completed(self, text):
        ground = ground_program(parse_program(text))
        return complete(ground)

    def _var(self, completed, name):
        return completed.atom_to_var[completed.ground_program.atoms.lookup((name,))]

    def test_find_unfounded_set_detects_loop(self):
        completed = self._completed(self.LOOP_PROGRAM)
        solver = completed.solver
        # force the (supported but unstable) model {a, b} with trigger false
        solver.add_clause([-self._var(completed, "trigger")])
        solver.add_clause([self._var(completed, "a")])
        solver.add_clause([self._var(completed, "b")])
        assert solver.solve() is True
        unfounded = find_unfounded_set(completed, completed.true_atoms())
        names = {completed.ground_program.atoms.atom(i)[0] for i in unfounded}
        assert names == {"a", "b"}

    def test_no_unfounded_set_with_external_support(self):
        completed = self._completed(self.LOOP_PROGRAM)
        solver = completed.solver
        solver.add_clause([self._var(completed, "trigger")])
        assert solver.solve() is True
        unfounded = find_unfounded_set(completed, completed.true_atoms())
        assert unfounded == set()

    def test_enforcer_adds_loop_nogoods(self):
        completed = self._completed(self.LOOP_PROGRAM + "\n:- trigger.\n")
        solver = completed.solver
        solver.add_clause([self._var(completed, "a")])
        enforcer = StableModelEnforcer(completed)
        assert enforcer.solve() is False  # forcing a without trigger is unstable
        assert enforcer.statistics()["loop_nogoods"] >= 1
        assert enforcer.statistics()["rejected_supported_models"] >= 0

    def test_enforcer_disabled_allows_supported_models(self):
        completed = self._completed(self.LOOP_PROGRAM)
        solver = completed.solver
        solver.add_clause([-self._var(completed, "trigger")])
        solver.add_clause([self._var(completed, "a")])
        enforcer = StableModelEnforcer(completed, enabled=False)
        assert enforcer.solve() is True  # supported-but-unstable model accepted

    def test_enforcer_enabled_rejects_forced_loop(self):
        completed = self._completed(self.LOOP_PROGRAM)
        solver = completed.solver
        solver.add_clause([-self._var(completed, "trigger")])
        solver.add_clause([self._var(completed, "a")])
        enforcer = StableModelEnforcer(completed, enabled=True)
        assert enforcer.solve() is False  # no stable model has a true without trigger


class TestFactsAndCompletion:
    def test_facts_are_always_true(self):
        result = solve("a. b. c :- a, b.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"a", "b", "c"}

    def test_atoms_without_support_are_false(self):
        result = solve("a. b :- c.")
        atoms = {atom[0] for atom in result.model.atoms()}
        assert atoms == {"a"}

    def test_constraint_makes_program_unsat(self):
        result = solve("a. :- a.")
        assert not result.satisfiable

    def test_choice_cardinality_lower_bound(self):
        result = solve("option(x). option(y). option(z). 2 { pick(O) : option(O) }.")
        picks = result.model.atoms("pick")
        assert len(picks) >= 2

    def test_choice_cardinality_upper_bound(self):
        result = solve(
            """
            option(x). option(y). option(z).
            { pick(O) : option(O) } 1.
            picked :- pick(O).
            :- not picked.
            """
        )
        assert len(result.model.atoms("pick")) == 1

    def test_exactly_one_choice(self):
        result = solve("item(a). item(b). 1 { sel(I) : item(I) } 1.")
        assert len(result.model.atoms("sel")) == 1
