"""Tokenizer tests."""

import pytest

from repro.asp.errors import ParseError
from repro.asp.lexer import (
    DIRECTIVE,
    IDENTIFIER,
    NUMBER,
    PUNCT,
    STRING,
    VARIABLE,
    iter_statements,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop END


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestTokenize:
    def test_simple_fact(self):
        assert kinds('node("hdf5").') == [IDENTIFIER, PUNCT, STRING, PUNCT, PUNCT]

    def test_variables_and_identifiers(self):
        assert kinds("node(Package)") == [IDENTIFIER, PUNCT, VARIABLE, PUNCT]
        assert kinds("node(package)") == [IDENTIFIER, PUNCT, IDENTIFIER, PUNCT]

    def test_underscore_is_variable(self):
        tokens = tokenize("p(_)")
        assert tokens[2].kind == VARIABLE
        assert tokens[2].value == "_"

    def test_numbers(self):
        assert kinds("w(3, 15)") == [IDENTIFIER, PUNCT, NUMBER, PUNCT, NUMBER, PUNCT]

    def test_rule_arrow(self):
        assert ":-" in values("a :- b.")

    def test_not_keyword(self):
        tokens = tokenize("a :- not b.")
        assert ("PUNCT", "not") in [(t.kind, t.value) for t in tokens]

    def test_comparison_operators(self):
        assert values("A != B") == ["A", "!=", "B"]
        assert values("A <= B") == ["A", "<=", "B"]
        assert values("A >= B") == ["A", ">=", "B"]
        assert values("A == B") == ["A", "=", "B"]

    def test_directive(self):
        tokens = tokenize("#minimize { 1@2,P : b(P) }.")
        assert tokens[0].kind == DIRECTIVE
        assert tokens[0].value == "#minimize"

    def test_string_with_special_characters(self):
        tokens = tokenize('version("1.2.8:", "a-b_c").')
        assert tokens[2].value == "1.2.8:"
        assert tokens[4].value == "a-b_c"

    def test_string_escapes(self):
        tokens = tokenize(r'p("a\"b").')
        assert tokens[2].value == 'a"b'

    def test_line_comments_are_skipped(self):
        assert values("a. % comment here\nb.") == ["a", ".", "b", "."]

    def test_block_comments_are_skipped(self):
        assert values("a. %* multi\nline *% b.") == ["a", ".", "b", "."]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a.\n  b.")
        assert tokens[0].line == 1
        assert tokens[2].line == 2
        assert tokens[2].column == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize('p("unterminated')

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("a ? b.")

    def test_arithmetic_tokens(self):
        assert values("2+Priority") == ["2", "+", "Priority"]


class TestIterStatements:
    def test_splits_on_period(self):
        statements = list(iter_statements(tokenize("a. b :- a. :- c.")))
        assert len(statements) == 3

    def test_missing_final_period_raises(self):
        with pytest.raises(ParseError):
            list(iter_statements(tokenize("a. b :- a")))

    def test_empty_program(self):
        assert list(iter_statements(tokenize("% only a comment\n"))) == []
