"""Grounder tests: first-order programs -> ground programs."""

import pytest

from repro.asp.errors import GroundingError
from repro.asp.grounder import Grounder, ground_program
from repro.asp.parser import parse_program
from repro.asp.syntax import ground_atom


def ground(text, facts=()):
    return ground_program(parse_program(text), facts)


def atom_strings(ground_prog):
    return {ground_prog.format_atom(i) for i, _ in ground_prog.atoms.atoms()}


class TestFacts:
    def test_facts_are_certain(self):
        result = ground("a. b. c.")
        assert len(result.facts) == 3

    def test_programmatic_facts(self):
        result = ground("node(D) :- edge(S, D).", facts=[("edge", "a", "b")])
        assert ground_atom("node", "b") in [result.atoms.atom(r.head) for r in result.rules] or (
            result.atoms.lookup(ground_atom("node", "b")) in result.facts
        )

    def test_derived_fact_from_certain_body(self):
        result = ground("edge(a, b). node(D) :- edge(S, D).")
        node_b = result.atoms.lookup(("node", "b"))
        assert node_b in result.facts


class TestRuleInstantiation:
    def test_transitive_closure(self):
        result = ground(
            """
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        atoms = atom_strings(result)
        assert 'path("a","d")' in atoms
        assert 'path("a","c")' in atoms
        assert 'path("b","d")' in atoms
        assert 'path("d","a")' not in atoms

    def test_negative_literals_preserved(self):
        result = ground(
            """
            p(a). p(b). q(a).
            r(X) :- p(X), not q(X).
            """
        )
        # r(a) cannot fire (q(a) is certain); r(b) keeps its negative literal
        # only if q(b) could ever be true -- it cannot, so r(b) is a fact.
        assert result.atoms.lookup(("r", "a")) is None or not any(
            rule.head == result.atoms.lookup(("r", "a")) for rule in result.rules
        )

    def test_comparison_filters_instances(self):
        result = ground(
            """
            w(a, 1). w(b, 5).
            heavy(X) :- w(X, N), N > 3.
            """
        )
        atoms = atom_strings(result)
        assert 'heavy("b")' in atoms
        assert 'heavy("a")' not in atoms

    def test_inequality_join(self):
        result = ground(
            """
            c(a, 1). c(b, 2).
            mismatch(X, Y) :- c(X, V1), c(Y, V2), V1 != V2.
            """
        )
        atoms = atom_strings(result)
        assert 'mismatch("a","b")' in atoms
        assert 'mismatch("b","a")' in atoms
        assert 'mismatch("a","a")' not in atoms

    def test_arithmetic_in_head(self):
        result = ground("w(a, 3). shifted(X, N+10) :- w(X, N).")
        assert 'shifted("a",13)' in atom_strings(result)

    def test_unsafe_head_variable_raises(self):
        with pytest.raises(GroundingError):
            ground("head(X, Y) :- body(X).")

    def test_unsafe_negative_literal_raises(self):
        with pytest.raises(GroundingError):
            ground("p(X) :- q(X), not r(Y).")

    def test_rules_depending_on_choice_candidates(self):
        result = ground(
            """
            option(a). option(b).
            1 { pick(X) : option(X) } 1.
            picked_something :- pick(X).
            """
        )
        # picked_something must have rules for both possible picks
        heads = [result.atoms.atom(rule.head) for rule in result.rules]
        assert heads.count(("picked_something",)) == 2


class TestChoices:
    def test_choice_candidates_from_condition(self):
        result = ground(
            """
            node(p). possible(p, v1). possible(p, v2).
            1 { version(P, V) : possible(P, V) } 1 :- node(P).
            """
        )
        assert len(result.choices) == 1
        choice = result.choices[0]
        assert len(choice.atoms) == 2
        assert choice.lower == 1 and choice.upper == 1

    def test_choice_without_candidates(self):
        result = ground(
            """
            node(p).
            1 { version(P, V) : possible(P, V) } 1 :- node(P).
            """
        )
        assert len(result.choices) == 1
        assert result.choices[0].atoms == ()

    def test_choice_bound_none(self):
        result = ground("{ a; b } 1.")
        assert result.choices[0].lower is None
        assert result.choices[0].upper == 1


class TestConditionalLiterals:
    def test_expansion_over_facts(self):
        result = ground(
            """
            condition(1).
            requirement(1, needed_a).
            requirement(1, needed_b).
            holds(ID) :- condition(ID); met(R) : requirement(ID, R).
            """
        )
        rules = [r for r in result.rules if result.atoms.atom(r.head)[0] == "holds"]
        assert len(rules) == 1
        body_atoms = {result.atoms.atom(a) for a in rules[0].pos}
        assert ("met", "needed_a") in body_atoms
        assert ("met", "needed_b") in body_atoms

    def test_empty_expansion_means_trivially_true(self):
        result = ground(
            """
            condition(1).
            holds(ID) :- condition(ID); met(R) : requirement(ID, R).
            """
        )
        holds = result.atoms.lookup(("holds", 1))
        assert holds in result.facts


class TestConstraintsAndMinimize:
    def test_constraint_grounding(self):
        result = ground(
            """
            p(a). p(b). q(b).
            :- p(X), q(X).
            """
        )
        assert len(result.constraints) == 1

    def test_minimize_grounding(self):
        result = ground(
            """
            w(a, 1). w(b, 2).
            chosen(X) :- w(X, N).
            #minimize { N@3,X : chosen(X), w(X, N) }.
            """
        )
        assert len(result.minimize_literals) == 2
        priorities = {m.priority for m in result.minimize_literals}
        assert priorities == {3}

    def test_minimize_arithmetic_priority(self):
        result = ground(
            """
            w(a, 1). prio(a, 200).
            #minimize { N@2+P,X : w(X, N), prio(X, P) }.
            """
        )
        assert result.minimize_literals[0].priority == 202

    def test_statistics(self):
        result = ground("a. b :- a. :- c.")
        stats = result.statistics()
        assert stats["facts"] >= 1
        assert stats["constraints"] == 0  # ":- c" is dropped: c can never hold
