"""Control facade, configs, statistics, and Model accessors."""

import pytest

from repro.asp.configs import SolverConfig
from repro.asp.control import Control, Model, solve_program
from repro.asp.syntax import ground_atom


class TestControl:
    def test_add_facts_programmatically(self):
        control = Control()
        control.load("node(D) :- node(P), depends_on(P, D).")
        control.add_fact("node", "hdf5")
        control.add_fact("depends_on", "hdf5", "zlib")
        control.ground()
        result = control.solve()
        assert result.satisfiable
        assert result.model.holds("node", "zlib")

    def test_add_facts_iterable(self):
        control = Control()
        control.add_facts([("p", 1), ("p", 2)])
        control.load("q(X) :- p(X).")
        result = control.solve()
        assert len(result.model.atoms("q")) == 2

    def test_boolean_fact_arguments_become_integers(self):
        control = Control()
        control.add_fact("flag", "x", True)
        control.load("on(X) :- flag(X, 1).")
        result = control.solve()
        assert result.model.holds("on", "x")

    def test_ground_called_automatically_by_solve(self):
        control = Control()
        control.load("a.")
        result = control.solve()
        assert result.satisfiable

    def test_timings_cover_all_phases(self):
        control = Control()
        control.load("a. b :- a.")
        control.ground()
        result = control.solve()
        for phase in ("load", "ground", "solve", "total"):
            assert phase in result.timings
            assert result.timings[phase] >= 0.0

    def test_statistics_structure(self):
        result = solve_program("a. b :- a.")
        assert "ground" in result.statistics
        assert "solver" in result.statistics
        assert "optimization" in result.statistics
        assert result.statistics["ground"]["atoms"] >= 2

    def test_unsat_result_is_falsy(self):
        result = solve_program("a. :- a.")
        assert not result
        assert result.model is None

    def test_sat_result_is_truthy(self):
        assert solve_program("a.")


class TestModel:
    def test_atoms_by_predicate(self):
        model = Model([("p", "a"), ("p", "b"), ("q", 1)])
        assert len(model.atoms("p")) == 2
        assert model.arguments("q") == [(1,)]
        assert len(model) == 3

    def test_holds(self):
        model = Model([("p", "a")])
        assert model.holds("p", "a")
        assert not model.holds("p", "b")

    def test_contains(self):
        model = Model([("p", "a")])
        assert ground_atom("p", "a") in model

    def test_cost_tuple_ordering(self):
        model = Model([], costs={1: 5, 10: 0, 3: 2})
        assert model.cost_tuple() == (0, 2, 5)


class TestSolverConfig:
    def test_known_presets(self):
        names = set(SolverConfig.presets())
        assert {"tweety", "trendy", "handy", "frumpy", "jumpy", "crafty"} <= names

    def test_preset_lookup(self):
        tweety = SolverConfig.preset("tweety")
        assert tweety.name == "tweety"
        assert tweety.heuristic == "vsids"

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            SolverConfig.preset("nonexistent")

    def test_with_overrides(self):
        config = SolverConfig.preset("tweety").with_overrides(restart_base=7)
        assert config.restart_base == 7
        assert SolverConfig.preset("tweety").restart_base != 7

    def test_presets_differ(self):
        tweety = SolverConfig.preset("tweety")
        handy = SolverConfig.preset("handy")
        assert tweety != handy

    @pytest.mark.parametrize("name", ["tweety", "trendy", "handy", "frumpy", "jumpy", "crafty"])
    def test_every_preset_solves(self, name):
        result = solve_program(
            "a :- not b. b :- not a. :- b.",
            config=SolverConfig.preset(name),
        )
        assert result.satisfiable
        assert result.model.holds("a")
