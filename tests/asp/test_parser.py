"""Parser tests: text -> AST."""

import pytest

from repro.asp.errors import ParseError
from repro.asp.parser import parse_program, parse_statement
from repro.asp.syntax import (
    Atom,
    BinaryOp,
    Choice,
    Comparison,
    ConditionalLiteral,
    Constant,
    Literal,
    Minimize,
    Number,
    Rule,
    String,
    Variable,
)


class TestFactsAndRules:
    def test_fact(self):
        statement = parse_statement('node("hdf5").')
        assert isinstance(statement, Rule)
        assert statement.is_fact
        assert statement.head == Atom("node", (String("hdf5"),))

    def test_fact_with_constant_and_number(self):
        statement = parse_statement("version_weight(zlib, 3).")
        assert statement.head.arguments == (Constant("zlib"), Number(3))

    def test_zero_arity_fact(self):
        statement = parse_statement("optimize_for_reuse.")
        assert statement.head == Atom("optimize_for_reuse")

    def test_simple_rule(self):
        statement = parse_statement("node(D) :- node(P), depends_on(P, D).")
        assert statement.head == Atom("node", (Variable("D"),))
        assert len(statement.body) == 2
        assert all(isinstance(b, Literal) for b in statement.body)

    def test_negated_literal(self):
        statement = parse_statement("build(P) :- node(P), not reused(P).")
        assert statement.body[1].negated

    def test_integrity_constraint(self):
        statement = parse_statement(":- depends_on(P, P).")
        assert statement.is_constraint
        assert statement.head is None

    def test_comparison_in_body(self):
        statement = parse_statement("bad(P) :- weight(P, W), W > 3.")
        assert isinstance(statement.body[1], Comparison)
        assert statement.body[1].op == ">"

    def test_inequality_between_variables(self):
        statement = parse_statement("m(P, D) :- a(P, C1), b(D, C2), C1 != C2.")
        comparison = statement.body[2]
        assert isinstance(comparison, Comparison)
        assert comparison.op == "!="

    def test_body_with_semicolon_separators(self):
        statement = parse_statement("a :- b; c; d.")
        assert len(statement.body) == 3

    def test_missing_period_is_error(self):
        with pytest.raises(ParseError):
            parse_program("a :- b")

    def test_trailing_garbage_is_error(self):
        with pytest.raises(ParseError):
            parse_statement("a :- b c.")


class TestConditionalLiterals:
    def test_conditional_literal_in_body(self):
        statement = parse_statement(
            "holds(ID) :- condition(ID); attr(N, A) : requirement(ID, N, A)."
        )
        assert isinstance(statement.body[0], Literal)
        conditional = statement.body[1]
        assert isinstance(conditional, ConditionalLiteral)
        assert conditional.literal.atom.name == "attr"
        assert conditional.condition[0].atom.name == "requirement"

    def test_multiple_conditional_literals(self):
        statement = parse_statement(
            "holds(ID) :- condition(ID); a(X) : r1(ID, X); b(X, Y) : r2(ID, X, Y)."
        )
        conditionals = [b for b in statement.body if isinstance(b, ConditionalLiteral)]
        assert len(conditionals) == 2

    def test_condition_with_multiple_literals(self):
        statement = parse_statement("ok :- a(X) : b(X), c(X).")
        conditional = statement.body[0]
        assert len(conditional.condition) == 2


class TestChoices:
    def test_choice_with_bounds(self):
        statement = parse_statement(
            "1 { version(P, V) : possible_version(P, V) } 1 :- node(P)."
        )
        assert isinstance(statement.head, Choice)
        assert statement.head.lower == Number(1)
        assert statement.head.upper == Number(1)
        assert statement.head.elements[0].atom.name == "version"

    def test_choice_without_upper_bound(self):
        statement = parse_statement("1 { value(P, V) : possible(P, V) } :- node(P).")
        assert statement.head.lower == Number(1)
        assert statement.head.upper is None

    def test_choice_without_lower_bound(self):
        statement = parse_statement("{ hash(P, H) : installed(P, H) } 1 :- node(P).")
        assert statement.head.lower is None
        assert statement.head.upper == Number(1)

    def test_choice_fact_with_plain_elements(self):
        statement = parse_statement("1 { node(a); node(b) }.")
        assert isinstance(statement.head, Choice)
        assert len(statement.head.elements) == 2
        assert statement.body == ()


class TestMinimize:
    def test_minimize_statement(self):
        statement = parse_statement("#minimize { W@3,P,V : version_weight(P, V, W) }.")
        assert isinstance(statement, Minimize)
        element = statement.elements[0]
        assert element.weight == Variable("W")
        assert element.priority == Number(3)
        assert element.terms == (Variable("P"), Variable("V"))

    def test_minimize_with_arithmetic_priority(self):
        statement = parse_statement(
            "#minimize { W@2+Priority,P : w(P, W), prio(P, Priority) }."
        )
        element = statement.elements[0]
        assert isinstance(element.priority, BinaryOp)

    def test_minimize_with_constant_weight(self):
        statement = parse_statement("#minimize { 1@100,P : build(P) }.")
        element = statement.elements[0]
        assert element.weight == Number(1)
        assert element.priority == Number(100)

    def test_maximize_negates_weights(self):
        statement = parse_statement("#maximize { 1@2,P : good(P) }.")
        element = statement.elements[0]
        assert isinstance(element.weight, BinaryOp)

    def test_multiple_elements(self):
        statement = parse_statement("#minimize { 1@1,P : a(P); 2@1,Q : b(Q) }.")
        assert len(statement.elements) == 2

    def test_unknown_directive_raises(self):
        with pytest.raises(ParseError):
            parse_statement("#external foo.")


class TestWholePrograms:
    def test_paper_figure3_program(self):
        text = """
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
        """
        program = parse_program(text)
        assert len(program.rules) == 6
        assert len(program.minimizes) == 0

    def test_roundtrip_through_str(self):
        text = 'node(D) :- node(P), depends_on(P, D), not excluded(D).'
        statement = parse_statement(text)
        reparsed = parse_statement(str(statement))
        assert str(reparsed) == str(statement)

    def test_logic_program_parses(self):
        from repro.spack.concretize.logic import logic_program

        program = parse_program(logic_program())
        assert len(program.rules) > 50
        assert len(program.minimizes) == 16
