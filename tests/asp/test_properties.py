"""Property-based tests for the ASP core (hypothesis).

The key invariant: for small random programs, the CDCL-based engine agrees
with a brute-force stable-model enumerator on satisfiability, and any model it
returns *is* a stable model.
"""

from itertools import chain, combinations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asp.control import solve_program
from repro.asp.solver import CDCLSolver
from repro.asp.syntax import compare_ground_values

ATOMS = ["a", "b", "c", "d"]


# ---------------------------------------------------------------------------
# Random normal logic programs, checked against brute force
# ---------------------------------------------------------------------------

rule_strategy = st.tuples(
    st.sampled_from(ATOMS),  # head
    st.lists(st.sampled_from(ATOMS), max_size=2, unique=True),  # positive body
    st.lists(st.sampled_from(ATOMS), max_size=2, unique=True),  # negative body
)

program_strategy = st.lists(rule_strategy, min_size=1, max_size=8)


def program_text(rules):
    lines = []
    for head, pos, neg in rules:
        body = [p for p in pos] + [f"not {n}" for n in neg]
        if body:
            lines.append(f"{head} :- {', '.join(body)}.")
        else:
            lines.append(f"{head}.")
    return "\n".join(lines)


def brute_force_stable_models(rules):
    """Enumerate stable models of a ground normal program by definition."""
    atoms = sorted({head for head, _, _ in rules} | {a for _, p, n in rules for a in p + n})

    def least_model(reduct):
        derived = set()
        changed = True
        while changed:
            changed = False
            for head, pos in reduct:
                if head not in derived and all(p in derived for p in pos):
                    derived.add(head)
                    changed = True
        return derived

    models = []
    for size in range(len(atoms) + 1):
        for candidate in combinations(atoms, size):
            candidate_set = set(candidate)
            reduct = [
                (head, pos)
                for head, pos, neg in rules
                if not any(n in candidate_set for n in neg)
            ]
            if least_model(reduct) == candidate_set:
                models.append(candidate_set)
    return models


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_solver_agrees_with_brute_force(rules):
    text = program_text(rules)
    expected = brute_force_stable_models(rules)
    result = solve_program(text)
    assert result.satisfiable == bool(expected)
    if result.satisfiable:
        model_atoms = {atom[0] for atom in result.model.atoms()}
        assert model_atoms in expected


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy, st.sampled_from(ATOMS))
def test_constraints_only_remove_models(rules, banned):
    """Adding an integrity constraint can never invent new stable models."""
    base = solve_program(program_text(rules))
    constrained = solve_program(program_text(rules) + f"\n:- {banned}.")
    if constrained.satisfiable:
        assert base.satisfiable
        model_atoms = {atom[0] for atom in constrained.model.atoms()}
        assert banned not in model_atoms


# ---------------------------------------------------------------------------
# Random CNF instances: CDCL agrees with exhaustive enumeration
# ---------------------------------------------------------------------------

clause_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=4).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
        unique_by=abs,
    ),
    min_size=1,
    max_size=10,
)


def brute_force_sat(num_vars, clauses):
    for bits in range(1 << num_vars):
        assignment = [(bits >> i) & 1 == 1 for i in range(num_vars)]
        if all(any(assignment[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


@settings(max_examples=80, deadline=None)
@given(clause_strategy)
def test_cdcl_agrees_with_truth_table(clauses):
    solver = CDCLSolver()
    for _ in range(4):
        solver.new_var()
    status = True
    for clause in clauses:
        status = solver.add_clause(list(clause)) and status
    result = solver.solve() if status else False
    assert bool(result) == brute_force_sat(4, clauses)
    if result:
        model = solver.model()
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


# ---------------------------------------------------------------------------
# Cardinality constraints against itertools ground truth
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
)
def test_cardinality_window(num_vars, lower, upper):
    solver = CDCLSolver()
    variables = [solver.new_var() for _ in range(num_vars)]
    ok = solver.add_at_least(variables, lower)
    ok = solver.add_at_most(variables, upper) and ok
    satisfiable = bool(ok and solver.solve())
    expected = lower <= num_vars and lower <= upper
    assert satisfiable == expected
    if satisfiable:
        count = sum(solver.model_value(v) for v in variables)
        assert lower <= count <= upper


# ---------------------------------------------------------------------------
# Term ordering sanity
# ---------------------------------------------------------------------------

@given(st.integers(-50, 50), st.integers(-50, 50))
def test_integer_comparisons(a, b):
    assert compare_ground_values("<", a, b) == (a < b)
    assert compare_ground_values(">=", a, b) == (a >= b)
    assert compare_ground_values("!=", a, b) == (a != b)


@given(st.text(min_size=0, max_size=5), st.text(min_size=0, max_size=5))
def test_string_comparisons(a, b):
    assert compare_ground_values("<", a, b) == (a < b)
    assert compare_ground_values("=", a, b) == (a == b)


@given(st.integers(-50, 50), st.text(min_size=0, max_size=5))
def test_integers_sort_before_strings(number, text):
    assert compare_ground_values("<", number, text)
    assert not compare_ground_values("<", text, number)
