"""Multi-level #minimize optimization tests."""

import pytest

from repro.asp.configs import SolverConfig
from repro.asp.control import Control, solve_program


class TestSingleLevel:
    def test_minimize_picks_cheapest(self):
        result = solve_program(
            """
            cost(a, 3). cost(b, 1). cost(c, 2).
            1 { pick(X) : cost(X, W) } 1.
            picked_cost(X, W) :- pick(X), cost(X, W).
            #minimize { W@1,X : picked_cost(X, W) }.
            """
        )
        assert result.optimal
        assert result.model.holds("pick", "b")
        assert result.costs[1] == 1

    def test_minimize_can_reach_zero(self):
        result = solve_program(
            """
            item(a). item(b).
            { pick(X) : item(X) }.
            #minimize { 1@1,X : pick(X) }.
            """
        )
        assert result.costs[1] == 0
        assert len(result.model.atoms("pick")) == 0

    def test_minimize_with_forced_cost(self):
        result = solve_program(
            """
            item(a). item(b). item(c).
            2 { pick(X) : item(X) }.
            #minimize { 1@1,X : pick(X) }.
            """
        )
        assert result.costs[1] == 2

    def test_weighted_minimize(self):
        result = solve_program(
            """
            weight(a, 10). weight(b, 1). weight(c, 1).
            2 { pick(X) : weight(X, W) } 2.
            picked(X, W) :- pick(X), weight(X, W).
            #minimize { W@1,X : picked(X, W) }.
            """
        )
        assert result.costs[1] == 2
        assert not result.model.holds("pick", "a")


class TestLexicographic:
    PROGRAM = """
        option(a). option(b). option(c).
        1 { pick(X) : option(X) } 1.
        % level 2 (more important): a and b cost 0, c costs 1
        high_cost(c, 1).
        % level 1 (less important): a costs 5, b costs 1, c costs 0
        low_cost(a, 5). low_cost(b, 1).
        picked_high(X, W) :- pick(X), high_cost(X, W).
        picked_low(X, W) :- pick(X), low_cost(X, W).
        #minimize { W@2,X : picked_high(X, W) }.
        #minimize { W@1,X : picked_low(X, W) }.
    """

    def test_higher_priority_dominates(self):
        result = solve_program(self.PROGRAM)
        # c is best on level 1 but worst on level 2; b wins lexicographically
        assert result.model.holds("pick", "b")
        assert result.costs[2] == 0
        assert result.costs[1] == 1

    def test_cost_vector_ordering(self):
        result = solve_program(self.PROGRAM)
        assert result.model.cost_tuple() == (0, 1)

    @pytest.mark.parametrize("preset", ["tweety", "trendy", "handy", "jumpy"])
    def test_all_presets_find_the_same_optimum(self, preset):
        result = solve_program(self.PROGRAM, config=SolverConfig.preset(preset))
        assert result.costs[2] == 0
        assert result.costs[1] == 1

    def test_three_levels(self):
        result = solve_program(
            """
            option(a). option(b).
            1 { pick(X) : option(X) } 1.
            c3(a, 1). c2(b, 1). c1(a, 1).
            p3(X, W) :- pick(X), c3(X, W).
            p2(X, W) :- pick(X), c2(X, W).
            p1(X, W) :- pick(X), c1(X, W).
            #minimize { W@30,X : p3(X, W) }.
            #minimize { W@20,X : p2(X, W) }.
            #minimize { W@10,X : p1(X, W) }.
            """
        )
        # b avoids the level-30 cost, so it wins despite its level-20 cost
        assert result.model.holds("pick", "b")
        assert result.costs[30] == 0
        assert result.costs[20] == 1
        assert result.costs[10] == 0


class TestOptimizationDetails:
    def test_unconditional_minimize_element_becomes_base_cost(self):
        result = solve_program(
            """
            a.
            #minimize { 5@1 }.
            """
        )
        assert result.costs[1] == 5

    def test_duplicate_terms_counted_once(self):
        # Two conditions deriving the same (weight, terms) key count once.
        result = solve_program(
            """
            a. b.
            hit(x) :- a.
            hit(x) :- b.
            #minimize { 1@1,X : hit(X) }.
            """
        )
        assert result.costs[1] == 1

    def test_optimization_respects_stability(self):
        # The cheapest *supported* model uses an unfounded loop; the optimal
        # *stable* model must pay the cost instead.
        result = solve_program(
            """
            pay :- not free.
            free :- loop.
            loop :- free.
            cost(pay, 1).
            charged(X, W) :- pay, cost(X, W), X = pay.
            #minimize { W@1,X : charged(X, W) }.
            """
        )
        assert result.satisfiable
        assert result.costs[1] == 1

    def test_unsat_optimization_reports_unsat(self):
        result = solve_program(
            """
            a. :- a.
            #minimize { 1@1,X : p(X) }.
            """
        )
        assert not result.satisfiable

    def test_on_model_callback(self):
        control = Control()
        control.load(
            """
            item(a). item(b).
            { pick(X) : item(X) }.
            #minimize { 1@1,X : pick(X) }.
            """
        )
        control.ground()
        seen = []
        result = control.solve(on_model=lambda m: seen.append(len(m)))
        assert result.satisfiable
        assert len(seen) == 1
