"""Targets, platforms, operating systems, and compiler support."""

import pytest

from repro.spack.architecture import (
    Platform,
    TARGETS,
    default_platform,
    lassen_platform,
)
from repro.spack.compilers import CompilerRegistry, default_compilers
from repro.spack.errors import SpackError
from repro.spack.version import Version


class TestTargets:
    def test_known_families(self):
        assert set(TARGETS.families()) == {"x86_64", "ppc64le", "aarch64"}

    def test_generation_ordering(self):
        assert TARGETS.get("x86_64").generation < TARGETS.get("haswell").generation
        assert TARGETS.get("haswell").generation < TARGETS.get("skylake").generation

    def test_family_membership(self):
        assert TARGETS.get("skylake").family == "x86_64"
        assert TARGETS.get("power9le").family == "ppc64le"

    def test_unknown_target_raises(self):
        with pytest.raises(SpackError):
            TARGETS.get("quantum9000")

    def test_weights_prefer_newest(self):
        weights = TARGETS.weights_for("x86_64", best="skylake")
        assert weights["skylake"] == 0
        assert weights["x86_64"] == max(weights.values())
        assert "cascadelake" not in weights  # newer than the host


class TestPlatform:
    def test_default_platform_is_quartz_like(self):
        platform = default_platform()
        assert platform.family == "x86_64"
        assert platform.default_os == "rhel7"

    def test_lassen_platform_is_power(self):
        platform = lassen_platform()
        assert platform.family == "ppc64le"
        assert platform.default_target == "power9le"

    def test_targets_limited_to_host(self):
        platform = Platform(family="x86_64", default_target="haswell", default_os="rhel7")
        names = {t.name for t in platform.targets()}
        assert "haswell" in names
        assert "skylake" not in names

    def test_os_weights_prefer_default(self):
        weights = default_platform().os_weights()
        assert weights["rhel7"] == 0
        assert all(w > 0 for name, w in weights.items() if name != "rhel7")

    def test_invalid_default_target(self):
        with pytest.raises(SpackError):
            Platform(family="x86_64", default_target="power9le", default_os="rhel7")

    def test_generic_target(self):
        assert default_platform().generic_target().name == "x86_64"


class TestCompilers:
    def test_default_toolbox_contains_gcc(self):
        names = {c.name for c in default_compilers()}
        assert {"gcc", "clang", "intel", "xl"} <= names

    def test_old_gcc_cannot_target_skylake(self):
        registry = CompilerRegistry()
        old = registry.get("gcc", "4.8.3")
        new = registry.get("gcc", "11.2.0")
        skylake = TARGETS.get("skylake")
        haswell = TARGETS.get("haswell")
        assert not old.supports_target(skylake)
        assert old.supports_target(haswell)
        assert new.supports_target(skylake)

    def test_intel_is_x86_only(self):
        registry = CompilerRegistry()
        intel = registry.get("intel")
        assert not intel.supports_target(TARGETS.get("power9le"))

    def test_weights_prefer_newest_preferred_compiler(self):
        registry = CompilerRegistry(preferred="gcc")
        weights = registry.weights()
        best = min(weights, key=weights.get)
        assert best[0] == "gcc"
        assert Version(best[1]) == max(c.version for c in registry.by_name("gcc"))

    def test_default_compiler(self):
        assert CompilerRegistry(preferred="gcc").default().name == "gcc"
        assert CompilerRegistry(preferred="clang").default().name == "clang"

    def test_get_with_version_prefix(self):
        registry = CompilerRegistry()
        assert registry.get("gcc", "10").version == Version("10.3.1")

    def test_unknown_compiler_raises(self):
        with pytest.raises(SpackError):
            CompilerRegistry().get("chicken-c")

    def test_supported_targets_subset_of_family(self):
        registry = CompilerRegistry()
        targets = registry.supported_targets(registry.get("gcc", "4.8.3"), "x86_64")
        assert all(t.family == "x86_64" for t in targets)
        assert {t.name for t in targets} < {t.name for t in TARGETS.family("x86_64")}
