"""Spec data model: constrain, satisfies, traversal, hashing, rendering."""

import pytest

from repro.spack.errors import SpackError
from repro.spack.spec import Spec, target_matches
from repro.spack.spec_parser import parse_spec


class TestConstrain:
    def test_constrain_merges_versions(self):
        spec = parse_spec("hdf5@1.10:")
        spec.constrain(parse_spec("hdf5@:1.12"))
        assert spec.versions.includes(parse_spec("hdf5@1.11").versions.concrete)

    def test_constrain_merges_variants(self):
        spec = parse_spec("hdf5+mpi")
        spec.constrain(parse_spec("hdf5+hl"))
        assert spec.variants == {"mpi": "true", "hl": "true"}

    def test_conflicting_variants_raise(self):
        with pytest.raises(SpackError):
            parse_spec("hdf5+mpi").constrain(parse_spec("hdf5~mpi"))

    def test_conflicting_compilers_raise(self):
        with pytest.raises(SpackError):
            parse_spec("hdf5%gcc").constrain(parse_spec("hdf5%intel"))

    def test_conflicting_names_raise(self):
        with pytest.raises(SpackError):
            parse_spec("hdf5").constrain(parse_spec("zlib"))

    def test_anonymous_constrain_acquires_name(self):
        spec = Spec()
        spec.constrain(parse_spec("zlib@1.2"))
        assert spec.name == "zlib"

    def test_constrain_merges_dependencies(self):
        spec = parse_spec("hdf5 ^zlib@1.2:")
        spec.constrain(parse_spec("hdf5 ^zlib%gcc ^cmake"))
        assert set(spec.dependencies) == {"zlib", "cmake"}
        assert spec.dependencies["zlib"].compiler == "gcc"


class TestSatisfies:
    def test_version_satisfaction(self):
        assert parse_spec("hdf5@1.10.2").satisfies("hdf5@1.10")
        assert parse_spec("hdf5@1.10.2").satisfies("hdf5@1.8:1.12")
        assert not parse_spec("hdf5@1.13.1").satisfies("hdf5@:1.12")

    def test_variant_satisfaction(self):
        assert parse_spec("hdf5+mpi").satisfies("+mpi")
        assert not parse_spec("hdf5~mpi").satisfies("+mpi")
        assert not parse_spec("hdf5").satisfies("+mpi")  # unset is not satisfied

    def test_compiler_satisfaction(self):
        assert parse_spec("hdf5%gcc@10.3.1").satisfies("%gcc")
        assert parse_spec("hdf5%gcc@10.3.1").satisfies("%gcc@10:")
        assert not parse_spec("hdf5%clang@14.0.6").satisfies("%gcc")

    def test_anonymous_constraints(self):
        node = parse_spec("example@1.1.0+bzip")
        assert node.satisfies("@1.1.0:")
        assert node.satisfies("+bzip")
        assert not node.satisfies("@1.2:")

    def test_name_mismatch(self):
        assert not parse_spec("zlib@1.2").satisfies("hdf5")

    def test_target_family_satisfaction(self):
        assert parse_spec("hdf5 target=skylake").satisfies("target=x86_64")
        assert not parse_spec("hdf5 target=skylake").satisfies("target=aarch64:")
        assert parse_spec("hdf5 target=a64fx").satisfies("target=aarch64:")

    def test_dependency_satisfaction(self):
        parent = parse_spec("hdf5")
        parent.dependencies["zlib"] = parse_spec("zlib@1.2.11")
        assert parent.satisfies("hdf5 ^zlib@1.2:")
        assert not parent.satisfies("hdf5 ^zlib@1.3:")
        assert not parent.satisfies("hdf5 ^cmake")

    def test_intersects(self):
        assert parse_spec("hdf5@1.10:").intersects(parse_spec("hdf5@:1.12"))
        assert not parse_spec("hdf5+mpi").intersects(parse_spec("hdf5~mpi"))


class TestTargetMatches:
    def test_exact(self):
        assert target_matches("skylake", "skylake")
        assert not target_matches("haswell", "skylake")

    def test_family(self):
        assert target_matches("skylake", "x86_64")
        assert target_matches("power9le", "ppc64le")
        assert not target_matches("power9le", "x86_64")

    def test_open_range(self):
        assert target_matches("cascadelake", "skylake:")
        assert not target_matches("haswell", "skylake:")


class TestTraversalAndHashing:
    def _diamond(self):
        d = parse_spec("d@1.0")
        b = parse_spec("b@1.0")
        c = parse_spec("c@1.0")
        a = parse_spec("a@1.0")
        b.dependencies["d"] = d
        c.dependencies["d"] = d
        a.dependencies["b"] = b
        a.dependencies["c"] = c
        for node in (a, b, c, d):
            node.mark_concrete()
        return a

    def test_traverse_deduplicates(self):
        a = self._diamond()
        names = [s.name for s in a.traverse()]
        assert sorted(names) == ["a", "b", "c", "d"]

    def test_getitem_finds_transitive_dependency(self):
        a = self._diamond()
        assert a["d"].name == "d"
        assert "d" in a
        with pytest.raises(KeyError):
            a["nonexistent"]

    def test_dag_hash_is_stable(self):
        assert self._diamond().dag_hash() == self._diamond().dag_hash()

    def test_dag_hash_changes_with_content(self):
        a1 = self._diamond()
        a2 = self._diamond()
        a2["d"].variants["pic"] = "true"
        a2["d"]._dag_hash = None
        for node in a2.traverse():
            node._dag_hash = None
        assert a1.dag_hash() != a2.dag_hash()

    def test_to_dict_roundtrip(self):
        a = self._diamond()
        clone = Spec.from_dict(a.to_dict())
        assert clone == a
        assert clone.dag_hash() == a.dag_hash()

    def test_copy_is_deep(self):
        a = self._diamond()
        clone = a.copy()
        clone["d"].variants["pic"] = "false"
        assert "pic" not in a["d"].variants


class TestRendering:
    def test_str_roundtrips_through_parser(self):
        spec = parse_spec("hdf5@1.10.2+mpi~hl api=v18 %gcc@10.3.1 os=rhel7 target=skylake")
        reparsed = parse_spec(str(spec))
        assert reparsed == spec

    def test_tree_contains_all_nodes(self):
        parent = parse_spec("hdf5")
        parent.dependencies["zlib"] = parse_spec("zlib@1.2.11")
        tree = parent.tree()
        assert "hdf5" in tree and "zlib" in tree

    def test_boolean_variants_render_with_sigils(self):
        text = str(parse_spec("hdf5+mpi~hl"))
        assert "+mpi" in text and "~hl" in text
