"""Property-based tests for the Spack layer (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spack.errors import SpecSyntaxError
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.version import Version, VersionRange, parse_version_constraint

# ---------------------------------------------------------------------------
# Versions
# ---------------------------------------------------------------------------

version_strings = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=4
).map(lambda parts: ".".join(str(p) for p in parts))


@given(version_strings, version_strings)
def test_version_ordering_is_total_and_antisymmetric(a, b):
    va, vb = Version(a), Version(b)
    assert (va < vb) + (vb < va) + (va == vb) == 1


@given(st.lists(version_strings, min_size=1, max_size=8))
def test_version_sorting_is_consistent(strings):
    versions = sorted(Version(s) for s in strings)
    for earlier, later in zip(versions, versions[1:]):
        assert earlier <= later
        assert not later < earlier


@given(version_strings)
def test_version_equals_itself_and_roundtrips(text):
    version = Version(text)
    assert Version(str(version)) == version
    assert version.satisfies(version)


@given(version_strings, version_strings)
def test_range_includes_its_endpoints(low, high):
    vlow, vhigh = sorted((Version(low), Version(high)))
    version_range = VersionRange(vlow, vhigh)
    assert version_range.includes(vlow)
    assert version_range.includes(vhigh)


@given(version_strings, version_strings)
def test_open_ranges_partition_versions(pivot, probe):
    at_least = parse_version_constraint(f"{pivot}:")
    at_most = parse_version_constraint(f":{pivot}")
    version = Version(probe)
    # every version satisfies at least one side of the split
    assert at_least.includes(version) or at_most.includes(version)


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

package_names = st.sampled_from(["hdf5", "zlib", "mpich", "petsc", "kokkos"])
variant_names = st.sampled_from(["mpi", "shared", "cuda", "openmp", "hl"])
compiler_names = st.sampled_from(["gcc", "clang", "intel"])


@st.composite
def abstract_specs(draw):
    spec = Spec(name=draw(package_names))
    if draw(st.booleans()):
        spec.versions = parse_version_constraint(draw(version_strings))
    for variant in draw(st.lists(variant_names, max_size=3, unique=True)):
        spec.variants[variant] = "true" if draw(st.booleans()) else "false"
    if draw(st.booleans()):
        spec.compiler = draw(compiler_names)
    if draw(st.booleans()):
        spec.target = draw(st.sampled_from(["skylake", "haswell", "x86_64", "power9le"]))
    if draw(st.booleans()):
        spec.os = draw(st.sampled_from(["rhel7", "rhel8", "ubuntu20.04"]))
    return spec


@settings(max_examples=80, deadline=None)
@given(abstract_specs())
def test_spec_string_roundtrip(spec):
    assert parse_spec(str(spec)) == spec


@settings(max_examples=80, deadline=None)
@given(abstract_specs())
def test_spec_satisfies_is_reflexive_enough(spec):
    # a spec always satisfies its own fully-specified constraints when they
    # are concrete; at minimum it must satisfy the anonymous empty constraint
    assert spec.satisfies(Spec())
    clone = spec.copy()
    assert clone == spec
    assert hash(clone) == hash(spec)


@settings(max_examples=60, deadline=None)
@given(abstract_specs(), abstract_specs())
def test_constrain_result_satisfies_nothing_weaker(a, b):
    """If constrain succeeds, the result intersects both inputs; if satisfies
    held before, it still holds after."""
    merged = a.copy()
    try:
        merged.constrain(b.copy())
    except Exception:
        return  # incompatible constraints are allowed to fail
    if a.name == b.name:
        assert merged.name == a.name
    for variant, value in b.variants.items():
        assert merged.variants[variant] == value


@settings(max_examples=60, deadline=None)
@given(abstract_specs())
def test_dag_hash_is_deterministic(spec):
    concrete = spec.copy()
    if concrete.versions.is_any:
        concrete.versions = parse_version_constraint("1.0")
    concrete.mark_concrete()
    duplicate = concrete.copy().mark_concrete()
    assert concrete.dag_hash() == duplicate.dag_hash()


# ---------------------------------------------------------------------------
# Parser robustness (the service boundary: clean errors, never a crash)
# ---------------------------------------------------------------------------

# the full sigil alphabet plus whitespace and junk — everything a client
# might paste into a concretize request
spec_soup = st.text(
    alphabet="abz019._-@%+~^=:, \t{}$!",
    max_size=40,
)


@settings(max_examples=300, deadline=None)
@given(spec_soup)
def test_parse_spec_returns_a_spec_or_raises_spec_syntax_error(text):
    """The property HTTP 400 mapping rests on: any string either parses into
    a Spec or raises SpecSyntaxError — no other exception type ever escapes
    (a bare VersionError or KeyError would crash a service worker)."""
    try:
        spec = parse_spec(text)
    except SpecSyntaxError:
        return
    assert isinstance(spec, Spec)
    # and whatever parsed renders back to something that re-parses equal
    assert parse_spec(str(spec)) == spec


@settings(max_examples=80, deadline=None)
@given(abstract_specs(), st.data())
def test_duplicate_variant_assignment_always_rejected(spec, data):
    """Appending a second assignment of any existing variant (either sigil
    form) to a spec's rendering is always a syntax error."""
    if not spec.variants:
        spec.variants["mpi"] = "true"
    variant = data.draw(st.sampled_from(sorted(spec.variants)))
    # whitespace-separated so the sigil starts a new token (an unspaced
    # '+x' after 'os=rhel7' would be swallowed by the greedy value lexeme)
    form = data.draw(st.sampled_from([f" +{variant}", f" ~{variant}", f" {variant}=off"]))
    with pytest.raises(SpecSyntaxError):
        parse_spec(str(spec) + form)


@settings(max_examples=80, deadline=None)
@given(abstract_specs())
def test_roundtrip_survives_trailing_and_leading_whitespace(spec):
    assert parse_spec(f"  {spec}  \t") == spec
