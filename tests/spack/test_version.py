"""Version, VersionRange, and VersionList semantics."""

import pytest

from repro.spack.errors import VersionError
from repro.spack.version import (
    Version,
    VersionList,
    VersionRange,
    parse_single_constraint,
    parse_version_constraint,
    ver,
)


class TestVersionOrdering:
    def test_numeric_ordering(self):
        assert Version("1.2.3") < Version("1.2.10")
        assert Version("1.9") < Version("1.10")
        assert Version("2.0") > Version("1.99.99")

    def test_equality(self):
        assert Version("1.2.3") == Version("1.2.3")
        assert Version("1.2.3") != Version("1.2.4")

    def test_shorter_version_is_smaller_when_prefix(self):
        assert Version("1.10") < Version("1.10.2")

    def test_letter_components_sort_before_numbers(self):
        # pre-release style suffixes come before the plain version
        assert Version("1.0a") < Version("1.0.1")

    def test_sorting_a_release_series(self):
        versions = [Version(v) for v in ("1.10.2", "1.8.22", "1.14.1", "1.12.2")]
        assert [str(v) for v in sorted(versions)] == ["1.8.22", "1.10.2", "1.12.2", "1.14.1"]

    def test_hashable(self):
        assert len({Version("1.0"), Version("1.0"), Version("2.0")}) == 2

    def test_invalid_versions_rejected(self):
        with pytest.raises(VersionError):
            Version("")
        with pytest.raises(VersionError):
            Version("1.0 beta")

    def test_up_to(self):
        assert Version("1.2.3").up_to(2) == Version("1.2")


class TestPrefixSemantics:
    def test_is_prefix_of(self):
        assert Version("1.10").is_prefix_of(Version("1.10.2"))
        assert not Version("1.10").is_prefix_of(Version("1.100"))
        assert not Version("1.10.2").is_prefix_of(Version("1.10"))

    def test_version_constraint_matches_prefix_extensions(self):
        assert Version("1.10.2").satisfies(Version("1.10"))
        assert not Version("1.11.0").satisfies(Version("1.10"))


class TestVersionRange:
    def test_open_upper(self):
        constraint = parse_single_constraint("1.0.7:")
        assert isinstance(constraint, VersionRange)
        assert constraint.includes(Version("1.0.7"))
        assert constraint.includes(Version("1.0.8"))
        assert constraint.includes(Version("2.0"))
        assert not constraint.includes(Version("1.0.6"))

    def test_open_lower(self):
        constraint = parse_single_constraint(":1.2")
        assert constraint.includes(Version("1.2"))
        assert constraint.includes(Version("1.0"))
        assert constraint.includes(Version("1.2.5"))  # prefix extension of the bound
        assert not constraint.includes(Version("1.3"))

    def test_bounded_range(self):
        constraint = parse_single_constraint("1.2:1.4")
        assert constraint.includes(Version("1.2"))
        assert constraint.includes(Version("1.3.9"))
        assert constraint.includes(Version("1.4.9"))
        assert not constraint.includes(Version("1.5"))
        assert not constraint.includes(Version("1.1"))

    def test_empty_range_rejected(self):
        with pytest.raises(VersionError):
            VersionRange(Version("2.0"), Version("1.0"))

    def test_intersection(self):
        assert VersionRange(Version("1.0"), None).intersects(VersionRange(None, Version("2.0")))
        assert not VersionRange(Version("3.0"), None).intersects(
            VersionRange(None, Version("2.0"))
        )

    def test_string_roundtrip(self):
        assert str(parse_single_constraint("1.2:1.4")) == "1.2:1.4"
        assert str(parse_single_constraint("1.2:")) == "1.2:"


class TestVersionList:
    def test_empty_list_is_any(self):
        any_versions = VersionList()
        assert any_versions.is_any
        assert any_versions.includes(Version("42.0"))

    def test_union_semantics(self):
        constraint = parse_version_constraint("1.2,2.0:2.4")
        assert constraint.includes(Version("1.2"))
        assert constraint.includes(Version("2.3"))
        assert not constraint.includes(Version("1.3"))
        assert not constraint.includes(Version("2.5"))

    def test_concrete(self):
        assert parse_version_constraint("1.2.11").concrete == Version("1.2.11")
        assert parse_version_constraint("1.2:").concrete is None

    def test_constrain_compatible(self):
        merged = parse_version_constraint("1.0:").constrain(parse_version_constraint(":2.0"))
        assert merged.includes(Version("1.5"))

    def test_constrain_incompatible_raises(self):
        with pytest.raises(VersionError):
            parse_version_constraint("3.0:").constrain(parse_version_constraint(":2.0"))

    def test_satisfies(self):
        assert parse_version_constraint("1.2.11").satisfies(parse_version_constraint("1.2:"))
        assert not parse_version_constraint("1.1").satisfies(parse_version_constraint("1.2:"))
        assert parse_version_constraint("1.2:1.9").satisfies(VersionList())

    def test_ver_helper(self):
        assert isinstance(ver("1.2"), Version)
        assert isinstance(ver("1.2:"), VersionRange)
        assert isinstance(ver("1.2,1.4"), VersionList)
