"""Builtin catalog sanity, the installed-package store, the synthetic generator,
and the E4S workload helpers."""

import pytest

from repro.spack.generator import generate_repository
from repro.spack.repo import builtin_repository
from repro.spack.spec_parser import parse_spec
from repro.spack.store import Database
from repro.spack.workloads import E4S_ROOTS, buildcache_subsets, e4s_graph_statistics


class TestBuiltinCatalog:
    def test_catalog_size(self, builtin_repo):
        assert len(builtin_repo) >= 200

    def test_paper_packages_present(self, builtin_repo):
        for name in ("hdf5", "zlib", "mpich", "openmpi", "cmake", "openssl",
                     "hpctoolkit", "berkeleygw", "openblas", "mpilander"):
            assert builtin_repo.exists(name)

    def test_virtuals(self, builtin_repo):
        assert {"mpi", "blas", "lapack"} <= set(builtin_repo.virtuals())
        assert "mpich" in builtin_repo.providers_for("mpi")
        assert builtin_repo.providers_for("mpi")[0] == "mpich"  # preference

    def test_every_package_has_versions(self, builtin_repo):
        for name in builtin_repo:
            assert builtin_repo.get(name).declared_versions(), f"{name} has no versions"

    def test_every_dependency_resolves(self, builtin_repo):
        missing = set()
        for name in builtin_repo:
            builtin_repo.possible_dependencies(name, missing=missing)
        assert missing == set()

    def test_variant_defaults_are_legal(self, builtin_repo):
        for name in builtin_repo:
            for variant_name, decl in builtin_repo.get(name).variants.items():
                defaults = decl.default if isinstance(decl.default, tuple) else (decl.default,)
                for default in defaults:
                    assert default in decl.values, f"{name} variant {variant_name}"

    def test_two_cluster_possible_dependency_structure(self, builtin_repo):
        """Packages that can reach MPI have far larger possible-dependency sets
        than leaf packages (the clustering discussed in Section VII-B)."""
        counts = {name: builtin_repo.possible_dependency_count(name) for name in builtin_repo}
        assert counts["zlib"] <= 2
        assert counts["hdf5"] > 40
        mpi_reachers = [n for n, c in counts.items() if c > 40]
        leaves = [n for n, c in counts.items() if c < 10]
        assert len(mpi_reachers) > 30
        assert len(leaves) > 30

    def test_hpctoolkit_mpi_is_conditional(self, builtin_repo):
        hpctoolkit = builtin_repo.get("hpctoolkit")
        mpi_deps = [d for d in hpctoolkit.dependencies if d.name == "mpi"]
        assert len(mpi_deps) == 1
        assert mpi_deps[0].when is not None
        assert hpctoolkit.variants["mpi"].default == "false"

    def test_berkeleygw_provider_specialization_directive(self, builtin_repo):
        berkeleygw = builtin_repo.get("berkeleygw")
        specialized = [
            d for d in berkeleygw.dependencies
            if d.name == "openblas" and d.when is not None and "openblas" in d.when.dependencies
        ]
        assert len(specialized) == 1
        assert specialized[0].spec.variants["threads"] == "openmp"

    def test_builtin_repository_is_cached(self):
        assert builtin_repository() is builtin_repository()


class TestDatabase:
    def _concrete(self, text):
        spec = parse_spec(text)
        for node in spec.traverse():
            node.mark_concrete()
        return spec

    def test_install_records_whole_dag(self):
        parent = self._concrete("hdf5@1.12.2%gcc@11.2.0 os=rhel7 target=skylake")
        child = self._concrete("zlib@1.2.13%gcc@11.2.0 os=rhel7 target=skylake")
        parent.dependencies["zlib"] = child
        database = Database()
        database.install(parent)
        assert len(database) == 2
        assert database.lookup(child.dag_hash()) == child

    def test_only_concrete_specs_can_be_added(self):
        database = Database()
        with pytest.raises(Exception):
            database.add(parse_spec("hdf5"))

    def test_query_by_constraint(self):
        database = Database()
        database.add(self._concrete("zlib@1.2.13 target=skylake os=rhel7"))
        database.add(self._concrete("zlib@1.2.11 target=power9le os=rhel7"))
        assert len(database.query("zlib")) == 2
        assert len(database.query("zlib@1.2.13")) == 1
        assert len(database.query("zlib target=power9le")) == 1
        assert database.query("hdf5") == []

    def test_filtered_subsets(self):
        database = Database()
        database.add(self._concrete("zlib@1.2.13 target=skylake os=rhel7"))
        database.add(self._concrete("zlib@1.2.13 target=power9le os=rhel8"))
        subset = database.filtered(lambda s: s.os == "rhel7")
        assert len(subset) == 1

    def test_json_roundtrip(self):
        database = Database()
        database.add(self._concrete("zlib@1.2.13+pic target=skylake os=rhel7"))
        restored = Database.from_json(database.to_json())
        assert len(restored) == 1
        assert restored.all_specs()[0].variants["pic"] == "true"

    def test_remove(self):
        database = Database()
        spec = self._concrete("zlib@1.2.13")
        digest = database.add(spec)
        database.remove(digest)
        assert len(database) == 0


class TestSyntheticGenerator:
    def test_generation_is_deterministic(self):
        first = generate_repository(num_packages=40, seed=7)
        second = generate_repository(num_packages=40, seed=7)
        assert first.all_package_names() == second.all_package_names()
        name = first.all_package_names()[10]
        assert [d.name for d in first.get(name).dependencies] == [
            d.name for d in second.get(name).dependencies
        ]

    def test_size_scales(self):
        repo = generate_repository(num_packages=60, seed=3)
        assert len(repo) == 60 + 2  # packages + MPI providers

    def test_layered_dag_has_no_possible_cycles(self):
        repo = generate_repository(num_packages=50, seed=1)
        for name in repo:
            assert name not in repo.possible_dependencies(name, include_roots=False)

    def test_mpi_cluster_exists(self):
        repo = generate_repository(num_packages=80, seed=5, mpi_fraction=0.5)
        counts = [repo.possible_dependency_count(n) for n in repo]
        assert max(counts) > 5
        assert min(counts) == 0

    def test_generated_packages_concretize(self):
        from repro.spack.concretize import Concretizer

        repo = generate_repository(num_packages=30, seed=11)
        name = sorted(repo.all_package_names())[-1]
        result = Concretizer(repo=repo).concretize(name)
        assert result.spec.concrete


class TestE4SWorkload:
    def test_graph_statistics_shape(self, builtin_repo):
        stats = e4s_graph_statistics(builtin_repo)
        assert stats["num_roots"] >= 40
        assert stats["num_dependencies"] > 100
        assert stats["num_edges"] > 300
        assert stats["num_packages"] == stats["num_roots"] + stats["num_dependencies"]

    def test_all_roots_exist(self, builtin_repo):
        for name in E4S_ROOTS:
            assert builtin_repo.exists(name), name

    def test_buildcache_subsets_are_nested(self):
        from repro.spack.spec import Spec

        def concrete(name, target, os_name):
            spec = Spec(name=name, versions="1.0", os=os_name, target=target)
            spec.mark_concrete()
            return spec

        database = Database()
        database.add(concrete("a", "skylake", "rhel7"))
        database.add(concrete("b", "power9le", "rhel7"))
        database.add(concrete("c", "power9le", "rhel8"))
        subsets = buildcache_subsets(database)
        assert len(subsets["full"]) == 3
        assert len(subsets["ppc64le"]) == 2
        assert len(subsets["rhel7"]) == 2
        assert len(subsets["ppc64le+rhel7"]) == 1
