"""Property-based tests for the synthetic repository generator (hypothesis).

The generator is the substrate of every scaling benchmark and of the unsat
scenario harness, so its structural guarantees are load-bearing:

* **determinism** — one seed, one catalog: two fresh builders with the same
  parameters produce byte-identical repositories (content hash) and the
  same planted ground truth;
* **acyclicity** — dependencies only ever point to strictly lower layers,
  so the dependency graph is a DAG by construction;
* **RNG-free planting** — turning unsat injection on (or omitting a planted
  member) never perturbs the regular catalog;
* **sharded == monolithic** — partitioning a generated catalog into shards
  concretizes element-wise identically to the flat repository.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.spack.concretize import ConcretizationSession, Concretizer
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.generator import SyntheticRepoBuilder, generate_repository
from repro.spack.repo import RepositoryShard, ShardedRepository

# small catalogs keep each example fast; structure does not depend on size
builder_params = st.fixed_dictionaries(
    {
        "num_packages": st.integers(min_value=4, max_value=60),
        "max_dependencies": st.integers(min_value=0, max_value=5),
        "layers": st.integers(min_value=2, max_value=6),
        "mpi_fraction": st.floats(min_value=0.0, max_value=1.0),
        "conditional_fraction": st.floats(min_value=0.0, max_value=1.0),
        "num_providers": st.integers(min_value=1, max_value=3),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def package_signature(cls):
    """Everything the encoder reads from one package class."""
    return (
        cls.name,
        tuple(sorted(str(v) for v in cls.versions)),
        tuple(sorted(cls.variants)),
        tuple(sorted((d.name, str(d.spec), str(d.when)) for d in cls.dependencies)),
        tuple(sorted(str(c.spec) for c in cls.conflict_decls)),
        tuple(sorted(p.name for p in cls.provided)),
    )


def repo_signature(repo):
    return tuple(package_signature(repo.get(name)) for name in repo.all_package_names())


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(builder_params)
def test_same_seed_same_catalog(params):
    """Two *fresh* builders (the RNG is consumed by build) agree exactly."""
    first = SyntheticRepoBuilder(**params)
    second = SyntheticRepoBuilder(**params)
    assert first.build().content_hash() == second.build().content_hash()


@settings(max_examples=25, deadline=None)
@given(builder_params, st.integers(min_value=1, max_value=3))
def test_planting_is_rng_free(params, unsat_packages):
    """Unsat injection must not consume RNG draws: the regular catalog is
    identical with the knob on or off, and planted ground truth is itself
    deterministic per seed."""
    plain = SyntheticRepoBuilder(**params).build()
    poisoned_builder = SyntheticRepoBuilder(
        **params, unsat_packages=unsat_packages, unsat_conflicts=3
    )
    poisoned = poisoned_builder.build()

    assert len(poisoned_builder.planted) == unsat_packages
    regular = [n for n in poisoned.all_package_names() if not n.startswith("synth-unsat-")]
    assert regular == list(plain.all_package_names())
    for name in regular:
        assert package_signature(poisoned.get(name)) == package_signature(plain.get(name))

    replay = SyntheticRepoBuilder(**params, unsat_packages=unsat_packages, unsat_conflicts=3)
    assert replay.build().content_hash() == poisoned.content_hash()
    assert replay.planted == poisoned_builder.planted


@settings(max_examples=15, deadline=None)
@given(builder_params)
def test_omission_touches_only_the_targeted_directive(params):
    full_builder = SyntheticRepoBuilder(**params, unsat_packages=1, unsat_conflicts=3)
    full = full_builder.build()
    planted = full_builder.planted["synth-unsat-0000"]
    omitted_spec = planted.conflict_specs[1]
    relaxed_builder = SyntheticRepoBuilder(
        **params,
        unsat_packages=1,
        unsat_conflicts=3,
        omit_planted=[("synth-unsat-0000", omitted_spec)],
    )
    relaxed = relaxed_builder.build()

    for name in full.all_package_names():
        if name == "synth-unsat-0000":
            continue
        assert package_signature(relaxed.get(name)) == package_signature(full.get(name))
    remaining = {str(c.spec) for c in relaxed.get("synth-unsat-0000").conflict_decls}
    assert remaining == set(planted.conflict_specs) - {omitted_spec}
    assert relaxed_builder.planted["synth-unsat-0000"].conflict_specs == tuple(
        s for s in planted.conflict_specs if s != omitted_spec
    )


# ---------------------------------------------------------------------------
# DAG structure
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(builder_params)
def test_dependencies_point_to_strictly_lower_layers(params):
    """Layered generation is what makes the catalog a DAG; verify the
    invariant directly and, as a corollary, acyclicity via topological
    ordering by layer."""
    builder = SyntheticRepoBuilder(**params)
    repo = builder.build()

    def layer_of(name: str) -> int:
        index = int(name.rsplit("-", 1)[1])
        return index * builder.layers // max(1, builder.num_packages)

    for name in repo.all_package_names():
        if not name.startswith("synth-0") and not name.startswith("synth-1"):
            if name.startswith("synth-mpi-") or name.startswith("synth-unsat-"):
                continue
        layer = layer_of(name)
        for dependency in repo.get(name).dependencies:
            if dependency.name == "mpi":
                # virtual edges resolve to the layer-0 providers
                assert layer >= builder.layers // 2
                continue
            assert layer_of(dependency.name) < layer, (name, dependency.name)


@settings(max_examples=25, deadline=None)
@given(builder_params)
def test_layer_zero_has_no_concrete_dependencies(params):
    builder = SyntheticRepoBuilder(**params)
    repo = builder.build()
    first_layer = [
        name
        for name in repo.all_package_names()
        if name.startswith("synth-")
        and not name.startswith(("synth-mpi-", "synth-unsat-"))
        and int(name.rsplit("-", 1)[1]) * builder.layers // max(1, builder.num_packages) == 0
    ]
    for name in first_layer:
        assert [d for d in repo.get(name).dependencies if d.name != "mpi"] == []


# ---------------------------------------------------------------------------
# Sharded == monolithic oracle
# ---------------------------------------------------------------------------


def result_signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        sorted(result.built),
    )


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=4))
def test_sharded_partition_matches_monolithic(seed, shard_count):
    """Any contiguous partition of a generated catalog into shards solves
    element-wise identically to the flat repository."""
    flat = generate_repository(num_packages=24, max_dependencies=3, layers=4, seed=seed)
    names = list(flat.all_package_names())
    by_name = {name: flat.get(name) for name in names}
    chunk = max(1, len(names) // shard_count)
    shards = [
        RepositoryShard(f"part{i}", [by_name[n] for n in names[start : start + chunk]])
        for i, start in enumerate(range(0, len(names), chunk))
    ]
    sharded = ShardedRepository(name="synthetic", shards=shards)
    provider_names = [n for n in names if n.startswith("synth-mpi-")]
    sharded.set_provider_preference("mpi", provider_names)

    # the top-layer packages exercise the deepest dependency closures
    probes = [n for n in names if n.startswith("synth-0")][-3:]
    clear_shared_bases()
    session = ConcretizationSession(repo=sharded, share_ground_cache=False)
    for spec, result in zip(probes, session.solve(probes)):
        sequential = Concretizer(repo=flat).solve([spec])
        assert result_signature(result) == result_signature(sequential), spec
