"""Package DSL: directives, metaclass collection, repositories."""

import pytest

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.errors import PackageError, UnknownPackageError
from repro.spack.package import (
    AutotoolsPackage,
    CMakePackage,
    Package,
    PythonPackage,
    class_name_to_package_name,
)
from repro.spack.repo import Repository
from repro.spack.version import Version


class ExampleDsl(Package):
    """Example depends on zlib, mpi, and optionally bzip2 (paper Figure 2)."""

    version("1.1.0")
    version("1.0.0")
    variant("bzip", default=True, description="enable bzip")
    depends_on("bzip2@1.0.7:", when="+bzip")
    depends_on("zlib")
    depends_on("zlib@1.2.8:", when="@1.1.0:")
    depends_on("mpi")
    conflicts("%intel")
    conflicts("target=aarch64:")


class TestClassNames:
    @pytest.mark.parametrize(
        "class_name,package_name",
        [
            ("Hdf5", "hdf5"),
            ("Hpctoolkit", "hpctoolkit"),
            ("PyNumpy", "py-numpy"),
            ("NetlibScalapack", "netlib-scalapack"),
            ("CBlosc", "c-blosc"),
            ("UtilLinuxUuid", "util-linux-uuid"),
            ("Bzip2", "bzip2"),
        ],
    )
    def test_camel_to_kebab(self, class_name, package_name):
        assert class_name_to_package_name(class_name) == package_name

    def test_explicit_name_wins(self):
        class Weird(Package):
            name = "totally-different"
            version("1.0")

        assert Weird.name == "totally-different"


class TestDirectiveCollection:
    def test_versions_collected(self):
        assert set(ExampleDsl.versions) == {Version("1.1.0"), Version("1.0.0")}

    def test_variant_collected(self):
        assert "bzip" in ExampleDsl.variants
        assert ExampleDsl.variants["bzip"].default == "true"
        assert ExampleDsl.variants["bzip"].is_boolean

    def test_dependencies_collected_with_conditions(self):
        by_name = {}
        for dep in ExampleDsl.dependencies:
            by_name.setdefault(dep.name, []).append(dep)
        assert set(by_name) == {"bzip2", "zlib", "mpi"}
        assert len(by_name["zlib"]) == 2
        bzip_dep = by_name["bzip2"][0]
        assert bzip_dep.when is not None and bzip_dep.when.variants["bzip"] == "true"

    def test_conflicts_collected(self):
        assert len(ExampleDsl.conflict_decls) == 2
        assert any(c.spec.compiler == "intel" for c in ExampleDsl.conflict_decls)

    def test_directives_do_not_leak_between_classes(self):
        class First(Package):
            version("1.0")
            depends_on("zlib")

        class Second(Package):
            version("2.0")

        assert len(Second.dependencies) == 0
        assert len(First.dependencies) == 1

    def test_version_weights_prefer_newest(self):
        weights = ExampleDsl.version_weights()
        assert weights[Version("1.1.0")] == 0
        assert weights[Version("1.0.0")] == 1

    def test_deprecated_versions_sort_last(self):
        class HasDeprecated(Package):
            version("2.0", deprecated=True)
            version("1.0")

        weights = HasDeprecated.version_weights()
        assert weights[Version("1.0")] < weights[Version("2.0")]
        assert HasDeprecated.preferred_version() == Version("1.0")

    def test_preferred_version_flag(self):
        class HasPreferred(Package):
            version("2.0")
            version("1.5", preferred=True)

        assert HasPreferred.preferred_version() == Version("1.5")

    def test_build_system_base_classes_add_dependencies(self):
        class UsesCMake(CMakePackage):
            version("1.0")

        class UsesPython(PythonPackage):
            version("1.0")

        assert "cmake" in UsesCMake.dependency_names()
        assert "python" in UsesPython.dependency_names()

    def test_provides_collected(self):
        class FakeMpi(AutotoolsPackage):
            version("1.0")
            provides("mpi")
            provides("mpi@3:", when="@1.0:")

        assert FakeMpi.provided_virtuals() == ["mpi"]


class TestDirectiveValidation:
    def test_non_boolean_variant_needs_values(self):
        with pytest.raises(PackageError):
            class Bad(Package):  # noqa: F841
                variant("mode", default="fast")

    def test_default_must_be_in_values(self):
        with pytest.raises(PackageError):
            class Bad(Package):  # noqa: F841
                variant("mode", default="turbo", values=("fast", "slow"))

    def test_depends_on_needs_named_spec(self):
        with pytest.raises(PackageError):
            class Bad(Package):  # noqa: F841
                depends_on("+mpi")


class TestRepository:
    def _repo(self):
        class Zlib(Package):
            version("1.2.11")

        class Mpich(Package):
            version("3.1")
            provides("mpi")

        class Openmpi(Package):
            version("4.1.0")
            provides("mpi")

        class App(Package):
            version("1.0")
            depends_on("zlib")
            depends_on("mpi")

        return Repository(name="test", packages=[Zlib, Mpich, Openmpi, App])

    def test_lookup(self):
        repo = self._repo()
        assert repo.get("zlib").name == "zlib"
        assert "app" in repo
        assert len(repo) == 4

    def test_unknown_package(self):
        with pytest.raises(UnknownPackageError):
            self._repo().get("nonexistent")

    def test_virtual_detection(self):
        repo = self._repo()
        assert repo.is_virtual("mpi")
        assert not repo.is_virtual("zlib")
        assert repo.virtuals() == ["mpi"]

    def test_providers_and_preferences(self):
        repo = self._repo()
        assert set(repo.providers_for("mpi")) == {"mpich", "openmpi"}
        repo.set_provider_preference("mpi", ["openmpi", "mpich"])
        assert repo.providers_for("mpi")[0] == "openmpi"
        assert repo.provider_weights("mpi")["openmpi"] == 0

    def test_possible_dependencies_expand_virtuals(self):
        repo = self._repo()
        possible = repo.possible_dependencies("app")
        assert possible == {"app", "zlib", "mpich", "openmpi"}

    def test_possible_dependencies_without_virtual_expansion(self):
        repo = self._repo()
        possible = repo.possible_dependencies("app", expand_virtuals=False)
        assert "mpi" in possible or possible == {"app", "zlib", "mpi"}

    def test_possible_dependency_count_excludes_self(self):
        assert self._repo().possible_dependency_count("zlib") == 0

    def test_missing_packages_recorded(self):
        class Lonely(Package):
            version("1.0")
            depends_on("does-not-exist")

        repo = Repository(name="missing", packages=[Lonely])
        missing = set()
        repo.possible_dependencies("lonely", missing=missing)
        assert missing == {"does-not-exist"}

    def test_duplicate_registration_raises(self):
        repo = self._repo()

        class Zlib(Package):  # same package name, different class
            version("9.9")

        with pytest.raises(PackageError):
            repo.add(Zlib)

    def test_dependency_edges(self):
        repo = self._repo()
        edges = repo.dependency_edges()
        assert ("app", "zlib") in edges
        assert ("app", "mpich") in edges
