"""Spec sigil syntax (Table I of the paper)."""

import pytest

from repro.spack.errors import SpecSyntaxError
from repro.spack.spec_parser import parse_spec, parse_specs
from repro.spack.version import Version


class TestTable1Sigils:
    """One test per row of Table I."""

    def test_compiler_sigil(self):
        spec = parse_spec("hdf5%gcc")
        assert spec.name == "hdf5"
        assert spec.compiler == "gcc"

    def test_version_sigil(self):
        spec = parse_spec("hdf5@1.10.2")
        assert spec.versions.concrete == Version("1.10.2")

    def test_compiler_version_sigil(self):
        spec = parse_spec("hdf5%gcc@10.3.1")
        assert spec.compiler == "gcc"
        assert spec.compiler_versions.concrete == Version("10.3.1")

    def test_enable_variant(self):
        assert parse_spec("hdf5+mpi").variants["mpi"] == "true"

    def test_disable_variant(self):
        assert parse_spec("hdf5~mpi").variants["mpi"] == "false"

    def test_keyvalue_variant(self):
        assert parse_spec("hdf5 mpi=true").variants["mpi"] == "true"
        assert parse_spec("hdf5 api=default").variants["api"] == "default"

    def test_target_keyvalue(self):
        assert parse_spec("hdf5 target=skylake").target == "skylake"

    def test_os_keyvalue(self):
        assert parse_spec("hdf5 os=rhel7").os == "rhel7"


class TestDependencies:
    def test_paper_example_spec(self):
        spec = parse_spec("hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64")
        assert spec.name == "hdf5"
        assert spec.versions.concrete == Version("1.10.2")
        assert set(spec.dependencies) == {"zlib", "cmake"}
        assert spec.dependencies["zlib"].compiler == "gcc"
        assert spec.dependencies["cmake"].target == "aarch64"

    def test_dependency_constraints_merge(self):
        spec = parse_spec("hdf5 ^zlib@1.2: ^zlib+pic")
        assert spec.dependencies["zlib"].variants["pic"] == "true"
        assert not spec.dependencies["zlib"].versions.is_any

    def test_dangling_caret_is_error(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("^zlib")

    def test_sigils_after_dependency_bind_to_it(self):
        spec = parse_spec("example@1.0.0 ^zlib@1.2.11")
        assert spec.versions.concrete == Version("1.0.0")
        assert spec.dependencies["zlib"].versions.concrete == Version("1.2.11")


class TestAnonymousSpecs:
    def test_variant_only(self):
        spec = parse_spec("+mpi")
        assert spec.name is None
        assert spec.variants["mpi"] == "true"

    def test_version_only(self):
        spec = parse_spec("@1.1.0:")
        assert spec.name is None
        assert not spec.versions.is_any

    def test_compiler_only(self):
        assert parse_spec("%intel").compiler == "intel"

    def test_target_range(self):
        assert parse_spec("target=aarch64:").target == "aarch64:"

    def test_combined_condition(self):
        spec = parse_spec("+openmp ^openblas")
        assert spec.variants["openmp"] == "true"
        assert "openblas" in spec.dependencies


class TestMultipleSpecs:
    def test_parse_specs_splits_on_names(self):
        specs = parse_specs("hdf5+mpi zlib@1.2.11")
        assert [s.name for s in specs] == ["hdf5", "zlib"]

    def test_dependencies_attach_to_current_root(self):
        specs = parse_specs("hdf5 ^zlib  cmake ^openssl")
        assert "zlib" in specs[0].dependencies
        assert "openssl" in specs[1].dependencies
        assert "openssl" not in specs[0].dependencies

    def test_whitespace_between_sigils_is_allowed(self):
        spec = parse_spec("hdf5 @1.10.2 +mpi %gcc")
        assert spec.versions.concrete == Version("1.10.2")
        assert spec.variants["mpi"] == "true"
        assert spec.compiler == "gcc"


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("hdf5 !bang")

    def test_two_compilers(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("hdf5%gcc%intel")

    def test_missing_version_after_at(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("hdf5@ +mpi")

    def test_arch_triple(self):
        spec = parse_spec("hdf5 arch=linux-rhel7-skylake")
        assert spec.os == "rhel7"
        assert spec.target == "skylake"

    def test_bad_arch_triple(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("hdf5 arch=linux-rhel7")


class TestServiceBoundaryEdgeCases:
    """Inputs a concretization service receives from untrusted clients: all
    must raise a clean SpecSyntaxError (mapped to HTTP 400), never crash."""

    def test_empty_spec_is_a_clean_error(self):
        with pytest.raises(SpecSyntaxError, match="empty spec"):
            parse_spec("")

    def test_whitespace_only_spec_is_a_clean_error(self):
        with pytest.raises(SpecSyntaxError, match="empty spec"):
            parse_spec("   \t ")

    def test_trailing_whitespace_is_fine(self):
        spec = parse_spec("hdf5+mpi   ")
        assert spec.name == "hdf5"
        assert spec.variants["mpi"] == "true"

    def test_leading_whitespace_is_fine(self):
        assert parse_spec("  hdf5@1.10.2").name == "hdf5"

    def test_duplicate_boolean_variant_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="assigned twice"):
            parse_spec("hdf5+mpi+mpi")

    def test_contradictory_boolean_variant_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="assigned twice"):
            parse_spec("hdf5+mpi~mpi")

    def test_duplicate_keyvalue_variant_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="assigned twice"):
            parse_spec("miniblas threads=none threads=openmp")

    def test_boolean_then_keyvalue_duplicate_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="assigned twice"):
            parse_spec("hdf5+shared shared=false")

    def test_duplicate_target_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="'target' assigned twice"):
            parse_spec("hdf5 target=skylake target=haswell")

    def test_duplicate_os_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="'os' assigned twice"):
            parse_spec("hdf5 os=rhel7 os=rhel8")

    def test_arch_conflicting_with_os_is_rejected(self):
        with pytest.raises(SpecSyntaxError, match="conflicts with an earlier"):
            parse_spec("hdf5 os=rhel7 arch=linux-rhel8-skylake")

    def test_duplicates_on_distinct_nodes_are_fine(self):
        spec = parse_spec("hdf5+mpi ^zlib+mpi")
        assert spec.variants["mpi"] == "true"
        assert spec.dependencies["zlib"].variants["mpi"] == "true"

    def test_malformed_version_is_a_parse_error_not_a_version_error(self):
        # ':' alone parses as the any-range; a double-colon range is nonsense
        # and must surface as SpecSyntaxError (the 400 class), not the
        # internal VersionError
        with pytest.raises(SpecSyntaxError, match="bad version constraint"):
            parse_spec("hdf5@1.0::2.0")

    def test_malformed_compiler_version_is_a_parse_error(self):
        with pytest.raises(SpecSyntaxError, match="bad version constraint"):
            parse_spec("hdf5%gcc@1.0::2.0")

    def test_empty_parse_specs_returns_no_roots(self):
        assert parse_specs("") == []
        assert parse_specs("  \t ") == []
