"""Sharded repositories: hash composition, layered grounding, invalidation.

The contract under test (ISSUE 3 tentpole):

* a :class:`ShardedRepository` behaves exactly like a flat
  :class:`Repository` through the whole concretization stack — results are
  element-wise identical to the monolithic encoder path, including reuse
  mode, virtual providers spanning shards, and dependency edges pointing at
  *later* shards (which exercise the grounder's choice re-expansion);
* each shard has a stable content hash; mutating one shard changes only
  that shard's hash and the Merkle-composed repository/session hash;
* the spec-independent grounding is a stack of per-shard layers cached per
  chain prefix: after a warm run, editing one shard re-grounds exactly one
  layer per spec family and replays every other layer from the persistent
  ground cache.
"""

from __future__ import annotations

import pytest

from repro.asp.control import PreparedProgram
from repro.spack.concretize import ConcretizationSession, Concretizer
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.directives import depends_on, version
from repro.spack.errors import PackageError
from repro.spack.package import Package
from repro.spack.repo import Repository, RepositoryShard, ShardedRepository
from repro.spack.store import Database

from tests.conftest import MICRO_PACKAGES

#: one spec family (the ``example`` closure: core + mpi + apps shards)
FAMILY_BATCH = ["example", "example+bzip", "example@1.0.0"]
#: several families, spanning every micro shard and both virtuals
MIXED_BATCH = ["example", "minitool", "minitool+mpi", "miniapp", "oldcode"]

_BY_NAME = {cls.name: cls for cls in MICRO_PACKAGES}
_SHARD_LAYOUT = (
    ("core", ("zlib", "bzip2", "hwloc")),
    ("mpi", ("mpich", "openmpi")),
    ("math", ("miniblas", "reflapack")),
    ("apps", ("example", "minitool", "miniapp", "oldcode")),
)


def _preferences(repo):
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


def micro_sharded() -> ShardedRepository:
    """The micro catalog split into four shards (apps last)."""
    shards = [
        RepositoryShard(name, [_BY_NAME[n] for n in names])
        for name, names in _SHARD_LAYOUT
    ]
    return _preferences(ShardedRepository(name="micro", shards=shards))


def micro_flat() -> Repository:
    return _preferences(Repository(name="micro", packages=MICRO_PACKAGES))


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
        sorted(result.built),
        sorted(result.reused),
    )


def fresh_session(repo, **kwargs):
    clear_shared_bases()
    return ConcretizationSession(repo=repo, share_ground_cache=False, **kwargs)


class _Newapp(Package):
    version("1.0")
    depends_on("zlib")


# ---------------------------------------------------------------------------
# Equivalence with the monolithic path
# ---------------------------------------------------------------------------


def test_sharded_is_elementwise_identical_to_monolithic():
    flat = micro_flat()
    session = fresh_session(micro_sharded())
    for spec, result in zip(MIXED_BATCH, session.solve(MIXED_BATCH)):
        sequential = Concretizer(repo=flat).solve([spec])
        assert signature(result) == signature(sequential), spec


def test_sharded_reuse_mode_matches_monolithic():
    flat = micro_flat()
    store = Database()
    store.install(Concretizer(repo=flat).concretize("example~bzip").spec)
    session = fresh_session(micro_sharded(), store=store, reuse=True)
    for spec in ("example~bzip", "minitool", "miniapp"):
        result = session.concretize(spec)
        sequential = Concretizer(repo=flat, store=store, reuse=True).solve([spec])
        assert signature(result) == signature(sequential), spec
    assert session.concretize("example~bzip").number_reused > 0


def test_dependency_on_a_later_shard_is_complete():
    """A shard-1 package depending on a shard-2 package: the version choice
    for the target instantiates before its declarations arrive and must be
    re-expanded by the grounder (stale, empty choices would be unsat)."""

    class Ftool(Package):
        version("1.0")
        depends_on("zlate@2.0:")

    class Zlate(Package):
        version("2.5")
        version("2.0")
        version("1.0")

    sharded = ShardedRepository(
        name="fw",
        shards=[RepositoryShard("first", [Ftool]), RepositoryShard("second", [Zlate])],
    )
    flat = Repository(name="fw", packages=(Ftool, Zlate))
    result = fresh_session(sharded).concretize("ftool")
    assert signature(result) == signature(Concretizer(repo=flat).concretize("ftool"))
    assert str(result.specs["zlate"].versions) == "2.5"


def test_sharded_parallel_solve_matches_sequential():
    specs = FAMILY_BATCH + ["minitool"]
    sequential = fresh_session(micro_sharded()).solve(specs)
    parallel = fresh_session(micro_sharded(), workers=2).solve(specs)
    for spec, a, b in zip(specs, parallel, sequential):
        assert signature(a) == signature(b), spec


@pytest.mark.slow
def test_builtin_sharded_matches_monolithic(builtin_repo, hdf5_result):
    """The builtin catalog (8 shards, virtuals and conditional dependencies
    spanning all of them) concretizes identically through both flavors."""
    assert isinstance(builtin_repo, ShardedRepository)
    session = fresh_session(builtin_repo)
    assert signature(session.concretize("hdf5")) == signature(hdf5_result)


# ---------------------------------------------------------------------------
# Hash composition
# ---------------------------------------------------------------------------


def test_shard_hashes_are_stable_across_constructions():
    assert micro_sharded().shard_hashes() == micro_sharded().shard_hashes()
    assert micro_sharded().content_hash() == micro_sharded().content_hash()


def test_mutating_one_shard_changes_only_that_hash():
    reference = dict(micro_sharded().shard_hashes())
    edited = micro_sharded()
    composed_before = edited.content_hash()
    edited.add(_Newapp, shard="apps")
    after = dict(edited.shard_hashes())
    assert after["apps"] != reference["apps"]
    for name in ("core", "mpi", "math"):
        assert after[name] == reference[name]
    assert edited.content_hash() != composed_before


def test_preferences_change_composed_hash_but_no_shard_hash():
    repo = micro_sharded()
    shard_hashes = repo.shard_hashes()
    composed = repo.content_hash()
    repo.set_provider_preference("mpi", ["openmpi", "mpich"])
    assert repo.shard_hashes() == shard_hashes
    assert repo.content_hash() != composed


def test_session_content_hash_follows_shard_edits():
    one = fresh_session(micro_sharded())
    two = fresh_session(micro_sharded())
    assert one.content_hash() == two.content_hash()
    edited = micro_sharded()
    edited.add(_Newapp, shard="apps")
    assert fresh_session(edited).content_hash() != one.content_hash()


# ---------------------------------------------------------------------------
# Registration semantics
# ---------------------------------------------------------------------------


def test_add_does_not_mutate_the_package_class():
    class Standalone(Package):
        version("1.0")

    Repository(name="one", packages=(Standalone,))
    RepositoryShard("shard", packages=(Standalone,))
    assert "repository" not in vars(Standalone)


def test_same_class_may_join_many_repositories():
    class Shared(Package):
        version("1.0")

    one = Repository(name="one", packages=(Shared,))
    two = Repository(name="two", packages=(Shared,))
    shard = RepositoryShard("extra", packages=(Shared,))
    assert one.get("shared") is two.get("shared") is shard.get("shared")


def test_duplicate_package_across_shards_is_rejected():
    class Dup(Package):
        version("1.0")

    class Dup2(Package):
        name = "dup"
        version("1.0")

    with pytest.raises(PackageError):
        ShardedRepository(
            shards=[RepositoryShard("a", [Dup]), RepositoryShard("b", [Dup2])]
        )


def test_shard_routing_and_lookup():
    repo = micro_sharded()
    assert repo.shard_of("example").name == "apps"
    assert repo.shard_of("zlib").name == "core"
    assert [shard.name for shard in repo.shards] == ["core", "mpi", "math", "apps"]
    repo.add(_Newapp, shard="math")
    assert repo.shard_of("newapp").name == "math"
    assert repo.get("newapp") is _Newapp  # composed lookup sees shard adds
    with pytest.raises(PackageError):
        repo.shard("nope")


# ---------------------------------------------------------------------------
# Layered grounding + per-shard invalidation
# ---------------------------------------------------------------------------

#: the example family touches context + core + mpi + apps (math unused)
FAMILY_LAYERS = 4


def test_cold_session_grounds_one_layer_per_included_shard():
    session = fresh_session(micro_sharded())
    session.solve(FAMILY_BATCH)
    assert session.stats.base_groundings == 1
    assert session.stats.shard_layers_grounded == FAMILY_LAYERS
    assert session.stats.shard_layers_disk == 0
    layers = session.statistics()["base"]["layers"]
    assert layers["total"] == FAMILY_LAYERS
    assert layers["grounded"] == FAMILY_LAYERS


def test_warm_session_replays_every_layer_from_disk(tmp_path):
    cold = fresh_session(micro_sharded(), cache_dir=str(tmp_path))
    expected = [signature(r) for r in cold.solve(FAMILY_BATCH)]
    assert cold.stats.shard_layers_grounded == FAMILY_LAYERS

    warm = fresh_session(micro_sharded(), cache_dir=str(tmp_path))
    # bypass the solve cache so the grounded base itself is exercised
    warm.solve_cache.clear()
    warm.solve_cache.persist = False
    results = [signature(r) for r in warm.solve(FAMILY_BATCH)]
    assert results == expected
    assert warm.stats.shard_layers_grounded == 0
    assert warm.stats.shard_layers_disk == FAMILY_LAYERS
    assert warm.stats.base_groundings == 0


def test_editing_one_shard_regrounds_exactly_one_layer(tmp_path):
    cold = fresh_session(micro_sharded(), cache_dir=str(tmp_path))
    cold.solve(FAMILY_BATCH)

    edited = micro_sharded()
    edited.add(_Newapp, shard="apps")
    session = fresh_session(edited, cache_dir=str(tmp_path))
    results = session.solve(FAMILY_BATCH)

    # the composed hash moved, so solves are cold -- but of the base layers
    # only the apps layer re-grounds; every other shard's persistent ground
    # entry is still warm
    assert session.stats.solve_cache_misses == len(FAMILY_BATCH)
    assert session.stats.shard_layers_grounded == 1
    assert session.stats.shard_layers_disk == FAMILY_LAYERS - 1
    for spec, result in zip(FAMILY_BATCH, results):
        assert signature(result) == signature(
            Concretizer(repo=edited).solve([spec])
        ), spec


def test_editing_an_unreached_shard_keeps_every_layer_warm(tmp_path):
    """The math shard is outside the example family's possible set: editing
    it must not invalidate a single ground layer (only the solve keys)."""
    cold = fresh_session(micro_sharded(), cache_dir=str(tmp_path))
    cold.solve(FAMILY_BATCH)

    edited = micro_sharded()
    edited.add(_Newapp, shard="math")
    session = fresh_session(edited, cache_dir=str(tmp_path))
    session.solve(FAMILY_BATCH)
    assert session.stats.shard_layers_grounded == 0
    assert session.stats.shard_layers_disk == FAMILY_LAYERS


def test_in_memory_prefixes_are_shared_between_sessions():
    clear_shared_bases()
    try:
        repo = micro_sharded()
        one = ConcretizationSession(repo=repo)
        one.solve(["example"])
        assert one.stats.shard_layers_grounded == FAMILY_LAYERS

        edited = micro_sharded()
        edited.add(_Newapp, shard="apps")
        two = ConcretizationSession(repo=edited)
        two.solve(["example"])
        assert two.stats.shard_layers_grounded == 1
        assert two.stats.shard_layers_replayed == FAMILY_LAYERS - 1
    finally:
        clear_shared_bases()


# ---------------------------------------------------------------------------
# The grounder primitive underneath: choice re-expansion across layers
# ---------------------------------------------------------------------------

CHOICE_PROGRAM = r"""
1 { pick(P, V) : cand(P, V) } 1 :- want(P).
"""


def test_ground_delta_reexpands_choices_in_place():
    prepared = PreparedProgram(CHOICE_PROGRAM, [("want", "a")])
    layered = prepared.extend([("cand", "a", "v1"), ("cand", "a", "v2")])
    result = layered.fork().solve()
    assert result.satisfiable
    assert len(result.model.atoms("pick")) == 1

    # the base program is untouched: its (empty) choice is still unsatisfiable
    assert not prepared.fork().solve().satisfiable

    # a second extension keeps upgrading the same choice instance
    wider = layered.extend([("cand", "a", "v3")])
    assert wider.fork().solve().satisfiable
    assert len(wider._base.ground_program.choices) == len(
        layered._base.ground_program.choices
    )
