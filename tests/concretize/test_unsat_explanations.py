"""Unsat explanations: minimal conflict cores, path parity, scenario sweeps.

The contract under test (ISSUE 7 tentpole):

* an unsatisfiable concretization raises
  :class:`~repro.spack.errors.UnsatisfiableSpecError` carrying a structured
  ``explanation`` — an ordered list of
  :class:`~repro.spack.errors.ConstraintProvenance` naming the package,
  directive, and ``when=`` condition of every member of a **minimal**
  conflict core (removing any single member makes the problem satisfiable);
* the explanation is *identical* — element-wise, and in the rendered
  message — across every entry point: one-shot :class:`Concretizer`,
  sequential :class:`ConcretizationSession`, the worker-pool parallel path
  (surviving process-pool pickling), the async session, and warm replays
  from both the in-memory and the persistent solve cache;
* against seeded synthetic catalogs with planted conflicts
  (:class:`~repro.spack.generator.SyntheticRepoBuilder`), the extracted
  core equals the planted ground truth exactly, and relaxing any single
  planted member flips the scenario to SAT (the minimality oracle).
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.spack.concretize import ConcretizationSession, Concretizer
from repro.spack.concretize.async_session import AsyncConcretizationSession
from repro.spack.errors import ConstraintProvenance, UnsatisfiableSpecError
from repro.spack.generator import SyntheticRepoBuilder
from repro.spack.spec_parser import parse_spec

# ---------------------------------------------------------------------------
# Structured explanations (micro catalog)
# ---------------------------------------------------------------------------


def unsat_error(callable_):
    with pytest.raises(UnsatisfiableSpecError) as info:
        callable_()
    return info.value


def test_conflict_core_names_the_guilty_directives(micro_repo):
    """``example %intel`` trips ``conflicts("%intel")``: the core is exactly
    the conflict directive plus the request that activated it."""
    error = unsat_error(lambda: Concretizer(repo=micro_repo).concretize("example %intel"))
    assert error.core() == [
        'example: conflicts("%intel")',
        'example: requested spec "example %intel"',
    ]
    kinds = [entry.kind for entry in error.explanation]
    assert kinds == ["conflict", "requested"]
    for entry in error.explanation:
        assert isinstance(entry, ConstraintProvenance)
        assert entry.package == "example"


def test_message_renders_the_numbered_core(micro_repo):
    error = unsat_error(lambda: Concretizer(repo=micro_repo).concretize("example %intel"))
    message = str(error)
    assert "no valid concretization exists for: example %intel" in message
    assert "minimal conflict core:" in message
    assert '1. example: conflicts("%intel")' in message
    assert '2. example: requested spec "example %intel"' in message
    assert error.specs == ["example %intel"]


def test_impossible_version_request_core_is_the_request(micro_repo):
    error = unsat_error(lambda: Concretizer(repo=micro_repo).concretize("zlib@99.99"))
    assert error.core() == ['zlib: requested spec "zlib @99.99"']
    assert error.explanation[0].kind == "requested"


def test_provenance_roundtrips_through_dict_and_pickle(micro_repo):
    error = unsat_error(lambda: Concretizer(repo=micro_repo).concretize("example %intel"))
    for entry in error.explanation:
        assert ConstraintProvenance.from_dict(entry.to_dict()) == entry
    # the worker-pool parity below rests on this: the error crosses a
    # process boundary with its explanation intact
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, UnsatisfiableSpecError)
    assert clone.explanation == error.explanation
    assert str(clone) == str(error)
    assert clone.specs == error.specs


# ---------------------------------------------------------------------------
# Path parity (sequential / parallel / async / warm caches)
# ---------------------------------------------------------------------------

#: one satisfiable spec on each side of the unsat one, so the parity checks
#: also prove a failed spec does not poison its batch neighbours
MIXED_BATCH = ["zlib", "example %intel", "minitool"]


def test_parallel_and_async_sessions_match_sequential(micro_repo):
    sequential = unsat_error(
        lambda: ConcretizationSession(repo=micro_repo).solve(MIXED_BATCH)
    )
    parallel = unsat_error(
        lambda: ConcretizationSession(repo=micro_repo, workers=2).solve(MIXED_BATCH)
    )

    async def solve_async():
        async with AsyncConcretizationSession(repo=micro_repo, workers=2) as session:
            await session.concretize_batch(MIXED_BATCH)

    asynchronous = unsat_error(lambda: asyncio.run(solve_async()))

    one_shot = unsat_error(
        lambda: Concretizer(repo=micro_repo).concretize("example %intel")
    )
    for error in (parallel, asynchronous):
        assert error.explanation == sequential.explanation
        assert str(error) == str(sequential)
        assert error.specs == sequential.specs
    # the one-shot concretizer encodes in a different fact order; the
    # explanation is the same constraints regardless
    assert one_shot.explanation == sequential.explanation


def test_earliest_input_index_failure_wins(micro_repo):
    """Two unsat specs in one batch: every path raises the error belonging
    to the *earlier* input, exactly like the sequential session."""
    batch = ["zlib", "zlib@99.99", "example %intel"]
    sequential = unsat_error(lambda: ConcretizationSession(repo=micro_repo).solve(batch))
    assert sequential.specs == ["zlib @99.99"]
    parallel = unsat_error(
        lambda: ConcretizationSession(repo=micro_repo, workers=2).solve(batch)
    )

    async def solve_async():
        async with AsyncConcretizationSession(repo=micro_repo, workers=2) as session:
            await session.concretize_batch(batch)

    asynchronous = unsat_error(lambda: asyncio.run(solve_async()))
    for error in (parallel, asynchronous):
        assert error.specs == sequential.specs
        assert error.explanation == sequential.explanation


def test_warm_in_memory_cache_replays_the_same_explanation(micro_repo):
    session = ConcretizationSession(repo=micro_repo)
    cold = unsat_error(lambda: session.concretize("example %intel"))
    hits_before = session.stats.solve_cache_hits
    warm = unsat_error(lambda: session.concretize("example %intel"))
    assert session.stats.solve_cache_hits > hits_before
    assert warm.explanation == cold.explanation
    assert str(warm) == str(cold)
    assert warm is not cold  # a fresh error object per raise, never reused


def test_persistent_cache_replays_across_sessions(micro_repo, tmp_path):
    cache_dir = str(tmp_path / "solve-cache")
    first = ConcretizationSession(repo=micro_repo, cache_dir=cache_dir)
    cold = unsat_error(lambda: first.concretize("example %intel"))
    second = ConcretizationSession(repo=micro_repo, cache_dir=cache_dir)
    warm = unsat_error(lambda: second.concretize("example %intel"))
    assert second.stats.delta_groundings == 0  # no solve, no MUS extraction
    assert warm.explanation == cold.explanation
    assert str(warm) == str(cold)


def test_unsat_does_not_poison_satisfiable_neighbours(micro_repo):
    session = ConcretizationSession(repo=micro_repo, workers=2)
    unsat_error(lambda: session.solve(MIXED_BATCH))
    results = session.solve(["zlib", "minitool"])
    assert [r.spec.name for r in results] == ["zlib", "minitool"]


# ---------------------------------------------------------------------------
# Scenario harness (synthetic catalogs with planted conflicts)
# ---------------------------------------------------------------------------


def scenario_builder(seed, num_packages, unsat_conflicts=3, omit=()):
    return SyntheticRepoBuilder(
        num_packages=num_packages,
        max_dependencies=3,
        layers=5,
        seed=seed,
        unsat_packages=1,
        unsat_conflicts=unsat_conflicts,
        omit_planted=omit,
    )


def assert_scenario(seed, num_packages, unsat_conflicts=3, check_minimality=True):
    """One seeded scenario: extract the core, compare against the planted
    ground truth, and (optionally) prove minimality by relaxing each member
    in turn and solving the relaxed catalog to SAT."""
    builder = scenario_builder(seed, num_packages, unsat_conflicts)
    repo = builder.build()
    planted = builder.planted["synth-unsat-0000"]

    error = unsat_error(lambda: Concretizer(repo=repo).concretize(planted.package))
    expected = sorted(f"{planted.package}: {d}" for d in planted.directives)
    assert error.core() == expected, (seed, num_packages)

    if check_minimality:
        for conflict_spec in planted.conflict_specs:
            relaxed = scenario_builder(
                seed, num_packages, unsat_conflicts, omit=[(planted.package, conflict_spec)]
            ).build()
            result = Concretizer(repo=relaxed).concretize(planted.package)
            assert result.spec.name == planted.package
    return error


def test_scenario_fast_subset():
    """Eight seeds through the scenario oracle (the tier-1 slice of the
    sweep below); minimality is proven for the first two."""
    for seed in range(8):
        assert_scenario(
            seed,
            num_packages=30 + seed * 10,
            unsat_conflicts=2 + seed % 2,
            check_minimality=seed < 2,
        )


def test_scenario_explanations_agree_across_paths():
    """One synthetic scenario through every entry point."""
    builder = scenario_builder(3, 40)
    repo = builder.build()
    planted = builder.planted["synth-unsat-0000"]
    spec = planted.package

    one_shot = unsat_error(lambda: Concretizer(repo=repo).concretize(spec))
    sequential = unsat_error(lambda: ConcretizationSession(repo=repo).concretize(spec))
    parallel = unsat_error(
        lambda: ConcretizationSession(repo=repo, workers=2).solve(["synth-0000", spec])
    )

    async def solve_async():
        async with AsyncConcretizationSession(repo=repo, workers=2) as session:
            await session.concretize_batch(["synth-0000", spec])

    asynchronous = unsat_error(lambda: asyncio.run(solve_async()))

    expected = sorted(f"{planted.package}: {d}" for d in planted.directives)
    assert one_shot.core() == expected
    for error in (sequential, parallel, asynchronous):
        assert error.explanation == one_shot.explanation


@pytest.mark.slow
def test_scenario_diversity_sweep():
    """The full acceptance sweep: 50+ seeded scenarios over catalogs up to
    1000+ packages, each verified against its planted ground truth *and*
    minimal by the relaxation oracle."""
    sizes = (50, 100, 150, 250, 400, 600, 1000, 1200)
    scenarios = 0
    for seed in range(52):
        num_packages = sizes[seed % len(sizes)]
        assert_scenario(
            seed,
            num_packages=num_packages,
            unsat_conflicts=2 + seed % 3,
            check_minimality=True,
        )
        scenarios += 1
    assert scenarios >= 50


@pytest.mark.slow
def test_scenario_sweep_warm_cache_parity():
    """Scenario explanations survive a warm persistent-cache replay
    identically (a second session does zero grounding)."""
    import tempfile

    for seed in (0, 5, 9):
        builder = scenario_builder(seed, 120)
        repo = builder.build()
        spec = builder.planted["synth-unsat-0000"].package
        with tempfile.TemporaryDirectory() as cache_dir:
            cold = unsat_error(
                lambda: ConcretizationSession(repo=repo, cache_dir=cache_dir).concretize(spec)
            )
            warm_session = ConcretizationSession(repo=repo, cache_dir=cache_dir)
            warm = unsat_error(lambda: warm_session.concretize(spec))
            assert warm_session.stats.delta_groundings == 0
            assert warm.explanation == cold.explanation
            assert str(warm) == str(cold)


def test_requested_spec_participates_in_synthetic_cores():
    """Pinning a poisoned package to one version shrinks the core to that
    version's conflict plus the pinning request itself."""
    builder = scenario_builder(11, 40, unsat_conflicts=3)
    repo = builder.build()
    planted = builder.planted["synth-unsat-0000"]
    top = parse_spec(f"{planted.package}@3.0.0")
    error = unsat_error(lambda: Concretizer(repo=repo).concretize(top))
    core = error.core()
    assert f'{planted.package}: conflicts("@3.0.0")' in core
    assert any("requested spec" in line for line in core)
    # the other planted conflicts are *not* necessary once the version is
    # pinned — minimality prunes them
    assert f'{planted.package}: conflicts("@2.0.0")' not in core
    assert f'{planted.package}: conflicts("@1.0.0")' not in core
