"""Persistent on-disk caches: warm starts, corruption, invalidation.

The contract under test (ISSUE 2 tentpole, act 2): with ``cache_dir`` set,
solved results and grounded bases persist across sessions *and processes*,
warm starts replay with zero groundings and zero solver calls, and every
failure mode — corrupted files, version skew, stale store state, concurrent
writers — degrades to a cold solve: never a crash, never a stale result.
"""

from __future__ import annotations

import glob
import json
import os
import pathlib
import pickle
import subprocess
import sys
import threading

import pytest

from repro.spack.concretize import ConcretizationSession
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.store import (
    CACHE_FORMAT_VERSION,
    Database,
    PersistentGroundCache,
    PersistentSolveCache,
    SolveCache,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

BATCH = ["example", "example+bzip", "example@1.0.0", "example"]


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        tuple(sorted((level, cost) for level, cost in result.costs.items() if cost)),
        sorted(result.built),
        sorted(result.reused),
    )


def fresh_session(micro_repo, cache_dir, **kwargs):
    """A session with cold in-memory caches over a (possibly warm) disk dir."""
    clear_shared_bases()
    return ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, cache_dir=str(cache_dir), **kwargs
    )


def solve_files(cache_dir):
    return sorted(glob.glob(os.path.join(str(cache_dir), "solve", "*.json")))


def ground_files(cache_dir):
    return sorted(glob.glob(os.path.join(str(cache_dir), "ground", "*.pkl")))


def snapshot_files(cache_dir):
    return sorted(glob.glob(os.path.join(str(cache_dir), "snapshot", "*.snap")))


# ---------------------------------------------------------------------------
# Warm starts
# ---------------------------------------------------------------------------


def test_second_session_replays_from_disk(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    first = [signature(r) for r in one.solve(BATCH)]
    assert len(solve_files(tmp_path)) == 3  # distinct specs only
    assert len(ground_files(tmp_path)) == 1  # one family base

    two = fresh_session(micro_repo, tmp_path)
    second = [signature(r) for r in two.solve(BATCH)]
    assert second == first
    assert two.stats.solve_cache_misses == 0
    assert two.stats.delta_groundings == 0
    assert two.stats.base_groundings == 0
    assert two.solve_cache.statistics()["disk_hits"] == 3


def test_second_process_replays_with_zero_solver_calls(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    first = [str(r.spec) for r in one.solve(BATCH)]

    child_code = (
        "import json, sys\n"
        "sys.path.insert(0, sys.argv[3])\n"
        "from tests.conftest import MICRO_PACKAGES\n"
        "from repro.spack.repo import Repository\n"
        "from repro.spack.concretize import ConcretizationSession\n"
        "repo = Repository(name='micro', packages=MICRO_PACKAGES)\n"
        "repo.set_provider_preference('mpi', ['mpich', 'openmpi'])\n"
        "repo.set_provider_preference('blas', ['miniblas', 'reflapack'])\n"
        "repo.set_provider_preference('lapack', ['miniblas', 'reflapack'])\n"
        "session = ConcretizationSession(repo=repo, share_ground_cache=False,\n"
        "                                cache_dir=sys.argv[1])\n"
        "results = session.solve(json.loads(sys.argv[2]))\n"
        "print(json.dumps({'stats': session.stats.as_dict(),\n"
        "                  'roots': [str(r.spec) for r in results]}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    child = subprocess.run(
        [sys.executable, "-c", child_code, str(tmp_path), json.dumps(BATCH),
         str(REPO_ROOT)],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
    )
    assert child.returncode == 0, child.stderr
    payload = json.loads(child.stdout)
    assert payload["roots"] == first
    assert payload["stats"]["solve_cache_misses"] == 0  # zero solver calls
    assert payload["stats"]["delta_groundings"] == 0
    assert payload["stats"]["base_groundings"] == 0


def test_ground_cache_warms_base_for_new_specs(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    one.solve(["example"])

    # cold solve cache (override), warm ground cache: the base comes from
    # disk and only the delta is ground + solved
    two = fresh_session(micro_repo, tmp_path, solve_cache=SolveCache())
    result = two.solve(["example~bzip"])[0]
    assert result.spec.concrete
    assert two.stats.base_groundings == 0
    assert two.stats.base_disk_hits == 1
    assert two.stats.delta_groundings == 1


def test_memo_hit_bases_are_still_written_to_disk(micro_repo, tmp_path):
    """A base grounded by a cache-less session and then *reused* (via the
    process-wide memo) by a persisting session must still land on disk —
    warm starts have to find every base the persisting session used."""
    clear_shared_bases()
    warmup = ConcretizationSession(repo=micro_repo)  # no cache_dir, shared memo
    warmup.solve(["example"])

    session = ConcretizationSession(repo=micro_repo, cache_dir=str(tmp_path))
    session.solve(["example~bzip"])
    assert session.stats.base_groundings == 0  # reused the memoized base
    assert len(ground_files(tmp_path)) == 1  # ...but persisted it anyway
    assert session.ground_cache.writes == 1
    # and a repeat solve does not re-probe or re-write
    session.solve(["example@1.0.0"])
    assert session.ground_cache.writes == 1


def test_disk_replayed_results_are_fully_usable(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    original = one.solve(["example+bzip"])[0]

    two = fresh_session(micro_repo, tmp_path)
    replayed = two.solve(["example+bzip"])[0]
    assert signature(replayed) == signature(original)
    assert replayed.spec.concrete
    assert replayed.model is None  # the raw solver model does not persist
    assert replayed.statistics["session"]["solve_cache"] == "hit"
    # replays are independent copies: mutating one cannot poison the cache
    # (variant values are canonically "true"/"false" strings, see
    # normalize_variant_value)
    replayed.spec.variants["bzip"] = "false"
    again = two.solve(["example+bzip"])[0]
    assert again.spec.variants["bzip"] == "true"


# ---------------------------------------------------------------------------
# Corruption and version skew: degrade to a cold solve, never crash
# ---------------------------------------------------------------------------


def test_corrupted_solve_entry_degrades_to_cold_solve(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    expected = signature(one.solve(["example"])[0])
    (path,) = solve_files(tmp_path)
    with open(path, "wb") as handle:
        handle.write(b"\x00garbage, not json\xff")

    two = fresh_session(micro_repo, tmp_path)
    result = two.solve(["example"])[0]
    assert signature(result) == expected  # cold re-solve, correct result
    assert two.stats.solve_cache_misses == 1
    assert two.solve_cache.load_errors == 1
    # the cold solve overwrote the damaged entry: a third session hits again
    three = fresh_session(micro_repo, tmp_path)
    three.solve(["example"])
    assert three.stats.solve_cache_misses == 0


def test_truncated_solve_entry_degrades_to_cold_solve(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    one.solve(["example"])
    (path,) = solve_files(tmp_path)
    payload = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(payload[: len(payload) // 2])

    two = fresh_session(micro_repo, tmp_path)
    assert two.solve(["example"])[0].spec.concrete
    assert two.solve_cache.load_errors == 1


def test_version_mismatch_is_a_miss_not_an_error(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    one.solve(["example"])
    (path,) = solve_files(tmp_path)
    payload = json.load(open(path))
    payload["version"] = CACHE_FORMAT_VERSION + 1
    json.dump(payload, open(path, "w"))

    two = fresh_session(micro_repo, tmp_path)
    assert two.solve(["example"])[0].spec.concrete
    assert two.stats.solve_cache_misses == 1
    assert two.solve_cache.load_errors == 0  # skew is not corruption


def test_corrupted_ground_entry_degrades_to_fresh_grounding(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    expected = signature(one.solve(["example"])[0])
    # damage both on-disk forms of the grounded base: the flat snapshot
    # (preferred on load) and the pickled fallback
    for path in ground_files(tmp_path) + snapshot_files(tmp_path):
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")

    two = fresh_session(micro_repo, tmp_path, solve_cache=SolveCache())
    assert signature(two.solve(["example"])[0]) == expected
    assert two.stats.base_groundings == 1  # cold grounding
    assert two.stats.base_disk_hits == 0
    assert two.ground_cache.load_errors == 1
    assert two.ground_cache.writes == 1  # the damaged entry was overwritten
    assert two.snapshot_store.load_errors == 1
    assert two.snapshot_store.writes == 1
    # the cache self-healed: the next cold session loads the base from disk
    three = fresh_session(micro_repo, tmp_path, solve_cache=SolveCache())
    three.solve(["example"])
    assert three.stats.base_disk_hits == 1
    assert three.stats.base_groundings == 0


def test_ground_cache_version_mismatch_is_a_miss(tmp_path):
    cache = PersistentGroundCache(str(tmp_path))
    cache.put("key", {"some": "payload"})
    (path,) = ground_files(tmp_path)
    payload = pickle.load(open(path, "rb"))
    payload["version"] = CACHE_FORMAT_VERSION + 1
    pickle.dump(payload, open(path, "wb"))
    assert cache.get("key") is None
    assert cache.load_errors == 0


def test_unwritable_cache_dir_never_fails_the_solve(micro_repo, tmp_path):
    target = tmp_path / "cache"
    target.mkdir()
    # plant regular files where the cache subdirectories must go, so every
    # write fails (works even when the suite runs as root, where permission
    # bits would not)
    (target / "solve").write_text("in the way")
    (target / "ground").write_text("in the way")
    session = fresh_session(micro_repo, target)
    result = session.solve(["example"])[0]
    assert result.spec.concrete
    assert session.solve_cache.write_errors >= 1
    assert session.ground_cache.write_errors >= 1


# ---------------------------------------------------------------------------
# Invalidation: stale inputs can never produce stale answers
# ---------------------------------------------------------------------------


def test_stale_store_generation_bypasses_disk_entries(micro_repo, tmp_path):
    store = Database()
    one = fresh_session(micro_repo, tmp_path, store=store, reuse=True)
    seeded = one.solve(["example"])[0]
    store.install(seeded.spec)  # the store grew: old entries are stale

    two = fresh_session(micro_repo, tmp_path, store=store, reuse=True)
    result = two.solve(["example"])[0]
    assert two.stats.solve_cache_misses == 1  # re-solved, not replayed
    assert result.reused  # and the fresh solve sees the new store content

    # the pre-install key still answers a session over the *empty* store
    empty = fresh_session(micro_repo, tmp_path, store=Database(), reuse=True)
    assert signature(empty.solve(["example"])[0]) == signature(seeded)
    assert empty.stats.solve_cache_misses == 0


def test_warm_replay_preserves_installed_hashes(micro_repo, tmp_path):
    """Reuse solves carry install provenance (Spec.installed_hash); a warm
    disk replay must return it intact, not silently stripped."""
    store = Database()
    seeder = fresh_session(micro_repo, tmp_path / "seed", store=store, reuse=True)
    store.install(seeder.solve(["example"])[0].spec)

    one = fresh_session(micro_repo, tmp_path, store=store, reuse=True)
    cold = one.solve(["example"])[0]
    cold_hashes = {
        node.name: node.installed_hash for node in cold.spec.traverse()
    }
    assert any(cold_hashes.values())  # the solve did reuse installed specs

    two = fresh_session(micro_repo, tmp_path, store=store, reuse=True)
    warm = two.solve(["example"])[0]
    assert two.stats.solve_cache_misses == 0  # replayed from disk
    warm_hashes = {
        node.name: node.installed_hash for node in warm.spec.traverse()
    }
    assert warm_hashes == cold_hashes


def test_preset_change_bypasses_disk_entries(micro_repo, tmp_path):
    from repro.asp.configs import SolverConfig

    one = fresh_session(micro_repo, tmp_path)
    one.solve(["example"])

    two = fresh_session(micro_repo, tmp_path, config=SolverConfig.preset("frumpy"))
    two.solve(["example"])
    assert two.stats.solve_cache_misses == 1  # no cross-preset replay


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------


def test_two_sessions_share_one_cache_dir(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    two = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, cache_dir=str(tmp_path)
    )
    a = one.solve(["example"])[0]
    # session two sees session one's write immediately (through disk)
    b = two.solve(["example"])[0]
    assert signature(a) == signature(b)
    assert two.stats.solve_cache_misses == 0
    # and writes by two are visible back to a *new* session
    two.solve(["example~bzip"])
    three = fresh_session(micro_repo, tmp_path)
    three.solve(["example", "example~bzip"])
    assert three.stats.solve_cache_misses == 0


def test_concurrent_writers_to_one_key_never_corrupt(micro_repo, tmp_path):
    one = fresh_session(micro_repo, tmp_path)
    result = one.solve(["example"])[0]
    key = one._solve_key(one._as_specs(["example"])[0])
    pristine = one._copy_result(result)

    caches = [PersistentSolveCache(str(tmp_path)) for _ in range(4)]
    errors = []

    def hammer(cache):
        try:
            for _ in range(10):
                cache.put(key, pristine)
                assert cache.get(key) is not None
        except Exception as exc:  # pragma: no cover - the test is that none happen
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(c,)) for c in caches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert all(cache.write_errors == 0 for cache in caches)
    # the surviving file is complete and loadable
    reader = fresh_session(micro_repo, tmp_path)
    assert reader.solve(["example"])[0].spec.concrete
    assert reader.stats.solve_cache_misses == 0
    # no stray temp files left behind
    leftovers = [f for f in os.listdir(tmp_path / "solve") if f.endswith(".tmp")]
    assert leftovers == []


def test_persistence_can_be_disabled(micro_repo, tmp_path):
    session = fresh_session(micro_repo, tmp_path, persist_ground=False)
    session.solve(["example"])
    assert ground_files(tmp_path) == []  # no base pickles
    assert len(solve_files(tmp_path)) == 1  # results still persist

    cache = PersistentSolveCache(str(tmp_path / "off"), persist=False)
    cache.put(("k",), object())
    assert not (tmp_path / "off").exists()


# ---------------------------------------------------------------------------
# Disk eviction / GC (max_entries / max_bytes, LRU pruning on write)
# ---------------------------------------------------------------------------


def _entry_path(cache, key):
    from repro.spack.store import cache_key_token

    return cache._disk.path_for(cache_key_token(key))


def test_ground_cache_prunes_oldest_beyond_max_entries(tmp_path):
    cache = PersistentGroundCache(str(tmp_path), max_entries=3)
    for index in range(3):
        cache.put(("k", index), {"i": index})
    for index, stamp in enumerate((1000, 2000, 3000)):
        os.utime(_entry_path(cache, ("k", index)), (stamp, stamp))

    cache.put(("k", 3), {"i": 3})  # one over budget: the oldest entry goes
    assert cache.evictions == 1
    assert cache.statistics()["evictions"] == 1
    assert cache.get(("k", 0)) is None
    assert all(cache.get(("k", index)) == {"i": index} for index in (1, 2, 3))


def test_prune_never_evicts_the_entry_just_written(tmp_path):
    cache = PersistentGroundCache(str(tmp_path), max_entries=1, max_bytes=1)
    cache.put(("first",), {"payload": "x" * 256})
    cache.put(("second",), {"payload": "y" * 256})
    # the fresh entry survives even though it alone exceeds max_bytes
    assert cache.get(("second",)) == {"payload": "y" * 256}
    assert cache.get(("first",)) is None
    assert len(ground_files(tmp_path)) == 1


def test_ground_cache_prunes_to_byte_budget(tmp_path):
    cache = PersistentGroundCache(str(tmp_path), max_bytes=2500)
    for index in range(4):
        cache.put(("k", index), {"payload": "x" * 1000})
        os.utime(_entry_path(cache, ("k", index)), (1000 + index, 1000 + index))
    files = ground_files(tmp_path)
    assert len(files) < 4
    assert sum(os.path.getsize(f) for f in files) <= 2500
    assert cache.get(("k", 3)) is not None  # newest always survives


def test_reads_refresh_lru_recency(tmp_path):
    cache = PersistentGroundCache(str(tmp_path), max_entries=2)
    cache.put(("hot",), {"v": 1})
    cache.put(("cold",), {"v": 2})
    os.utime(_entry_path(cache, ("hot",)), (1000, 1000))
    os.utime(_entry_path(cache, ("cold",)), (2000, 2000))

    assert cache.get(("hot",)) == {"v": 1}  # bumps its mtime to now
    cache.put(("new",), {"v": 3})  # evicts 'cold', the true LRU
    assert cache.get(("hot",)) is not None
    assert cache.get(("cold",)) is None
    assert cache.get(("new",)) is not None


def test_session_cache_budgets_bound_both_stores(micro_repo, tmp_path):
    session = fresh_session(micro_repo, tmp_path, cache_max_entries=1)
    first = [signature(r) for r in session.solve(BATCH)]
    assert len(solve_files(tmp_path)) == 1  # 3 distinct results written, 2 pruned
    assert len(ground_files(tmp_path)) == 1
    assert session.solve_cache.statistics()["evictions"] == 2

    # the surviving entry is the most recently written result ("example@1.0.0",
    # the last distinct spec) and still replays without a solver call
    replay = fresh_session(micro_repo, tmp_path, cache_max_entries=1)
    assert [signature(r) for r in replay.solve(["example@1.0.0"])] == [first[2]]
    assert replay.stats.solve_cache_misses == 0
    assert replay.solve_cache.statistics()["disk_hits"] == 1


def test_prune_reaps_stale_tmp_files_but_not_live_ones(tmp_path):
    cache = PersistentGroundCache(str(tmp_path), max_entries=8)
    cache.put(("a",), {"v": 1})
    orphan = tmp_path / "ground" / "orphan.tmp"  # interrupted writer, long dead
    orphan.write_bytes(b"partial")
    os.utime(orphan, (1000, 1000))
    live = tmp_path / "ground" / "live.tmp"  # a writer that may still be going
    live.write_bytes(b"in flight")

    cache.put(("b",), {"v": 2})  # any budgeted write prunes
    assert not orphan.exists()
    assert live.exists()
    assert cache.get(("a",)) is not None and cache.get(("b",)) is not None


# ---------------------------------------------------------------------------
# Concurrent-pruner races (a file vanishing mid-load is a miss, not an error)
# ---------------------------------------------------------------------------


def _loaded_layer(tmp_path):
    """A bare _DiskCacheLayer with one valid entry; returns (layer, token)."""
    from repro.spack.store import _DiskCacheLayer, _JsonCodec

    layer = _DiskCacheLayer(str(tmp_path), "solve", ".json", _JsonCodec)
    ok, _ = layer.store("token", {"answer": 42})
    assert ok
    assert layer.load("token") == ("hit", {"answer": 42})
    return layer, "token"


def test_vanished_before_open_is_a_miss(tmp_path):
    layer, token = _loaded_layer(tmp_path)
    os.unlink(layer.path_for(token))  # the concurrent pruner got there first
    assert layer.load(token) == ("miss", None)


def test_stale_handle_mid_read_is_a_miss(tmp_path, monkeypatch):
    """NFS flavor of the same race: the pruner unlinks after ``open``
    succeeded, so the *read* fails with ESTALE — still a miss, never an
    'error' (which would count as corruption in the cache statistics)."""
    import builtins
    import errno

    layer, token = _loaded_layer(tmp_path)
    target = layer.path_for(token)
    real_open = builtins.open

    def stale_open(file, *args, **kwargs):
        if file == target:
            raise OSError(errno.ESTALE, "Stale file handle", file)
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", stale_open)
    assert layer.load(token) == ("miss", None)


def test_genuinely_unreadable_entry_is_still_an_error(tmp_path, monkeypatch):
    """The miss classification is scoped to vanish flavors: a real I/O error
    (EIO and friends) still classifies as corruption."""
    import builtins
    import errno

    layer, token = _loaded_layer(tmp_path)
    target = layer.path_for(token)
    real_open = builtins.open

    def broken_open(file, *args, **kwargs):
        if file == target:
            raise OSError(errno.EIO, "Input/output error", file)
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", broken_open)
    assert layer.load(token) == ("error", None)


def test_utime_race_after_read_keeps_the_hit(tmp_path, monkeypatch):
    """The LRU refresh races the pruner *after* the payload was read: the
    entry vanishing under ``os.utime`` must not demote the hit (the bytes
    are already in hand)."""
    layer, token = _loaded_layer(tmp_path)
    target = layer.path_for(token)
    real_utime = os.utime

    def pruned_utime(path, *args, **kwargs):
        if path == target:
            os.unlink(target)  # the pruner wins the race ...
            return real_utime(path, *args, **kwargs)  # ... and utime explodes
        return real_utime(path, *args, **kwargs)

    monkeypatch.setattr(os, "utime", pruned_utime)
    assert layer.load(token) == ("hit", {"answer": 42})
    assert not os.path.exists(target)  # the pruner really did win


def test_solve_cache_counts_vanished_entry_as_miss_not_error(
    micro_repo, tmp_path, monkeypatch
):
    """End to end through PersistentSolveCache: a concurrently pruned file
    surfaces as an ordinary disk miss in the statistics, not a load error."""
    import builtins
    import errno

    warm = fresh_session(micro_repo, tmp_path)
    warm.solve(["example"])
    [entry] = solve_files(tmp_path)

    real_open = builtins.open

    def stale_open(file, *args, **kwargs):
        if file == entry:
            raise OSError(errno.ESTALE, "Stale file handle", file)
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", stale_open)
    cold = PersistentSolveCache(str(tmp_path))
    assert cold.get(warm._solve_key(warm._as_specs(["example"])[0])) is None
    stats = cold.statistics()
    assert stats["load_errors"] == 0
    assert stats["disk_misses"] == 1
