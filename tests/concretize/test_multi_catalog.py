"""Multi-catalog composition and dirty-shard reordering.

The contract under test (ISSUE 4 tentpole, repository half):

* ``ShardedRepository.compose(user, builtin)`` stacks both catalogs' shards
  behind one repository — argument order is precedence (user wins name
  clashes), layering order is the reverse (builtin grounds first, user shards
  sink to the end of the chain);
* sessions over a composed repository are element-wise identical to sessions
  over an equivalent flat merge, and editing a *user* package re-grounds
  exactly one base layer while every builtin layer replays from cache;
* post-attach edits mark shards dirty, and dirty shards ground last
  (``layering_shards``), so repeated edits to a *middle* shard converge to
  one-layer re-grounds.
"""

from __future__ import annotations

import pytest

from repro.spack.concretize import ConcretizationSession, Concretizer
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.directives import depends_on, version
from repro.spack.errors import PackageError
from repro.spack.package import Package
from repro.spack.repo import Repository, RepositoryShard, ShardedRepository
from tests.conftest import MICRO_PACKAGES

# ---------------------------------------------------------------------------
# Catalog fixtures
# ---------------------------------------------------------------------------

#: the micro catalog split into shards, builtin-style (apps last)
SHARD_LAYOUT = (
    ("core", ("zlib", "bzip2", "hwloc")),
    ("mpi", ("mpich", "openmpi")),
    ("math", ("miniblas", "reflapack")),
    ("apps", ("example", "minitool", "miniapp", "oldcode")),
)


def micro_builtin() -> ShardedRepository:
    by_name = {cls.name: cls for cls in MICRO_PACKAGES}
    repo = ShardedRepository(
        name="micro",
        shards=[
            RepositoryShard(name, [by_name[n] for n in names])
            for name, names in SHARD_LAYOUT
        ],
    )
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


class Usertool(Package):
    """A user package consuming builtin packages and virtuals."""

    version("1.0")
    depends_on("zlib")
    depends_on("mpi")


class Userlib(Package):
    version("0.5")
    depends_on("zlib@1.2.8:")


def user_catalog(*extra) -> Repository:
    return Repository(name="user", packages=(Usertool, Userlib) + tuple(extra))


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
        sorted(result.built),
        sorted(result.reused),
    )


def fresh_session(repo, **kwargs):
    clear_shared_bases()
    return ConcretizationSession(repo=repo, share_ground_cache=False, **kwargs)


# ---------------------------------------------------------------------------
# Composition structure
# ---------------------------------------------------------------------------


def test_compose_stacks_user_shards_after_builtin():
    composed = ShardedRepository.compose(user_catalog(), micro_builtin())
    names = [shard.name for shard in composed.shards]
    assert names == [
        "micro/core",
        "micro/mpi",
        "micro/math",
        "micro/apps",
        "user/packages",
    ]
    assert composed.layering_shards() == composed.shards  # nothing dirty yet
    assert len(composed) == len(MICRO_PACKAGES) + 2
    assert composed.shard_of("usertool").name == "user/packages"
    assert composed.shard_of("zlib").name == "micro/core"


def test_compose_leaves_sources_untouched():
    user, builtin = user_catalog(), micro_builtin()
    composed = ShardedRepository.compose(user, builtin)
    composed.add(
        type("Extra", (Package,), {"name": "extra-pkg"}), shard="user/packages"
    )
    assert "extra-pkg" in composed
    assert "extra-pkg" not in user
    assert "extra-pkg" not in builtin
    assert builtin.shard("apps").generation == micro_builtin().shard("apps").generation


def test_compose_flat_repository_becomes_one_shard():
    composed = ShardedRepository.compose(user_catalog(), micro_builtin())
    # the flat user catalog contributes a single "<name>/packages" shard
    assert composed.shard("user/packages").package_names() == ["userlib", "usertool"]


def test_compose_precedence_shadows_base_packages():
    class UserZlib(Package):
        name = "zlib"
        version("99.0")

    composed = ShardedRepository.compose(
        Repository(name="user", packages=[UserZlib]), micro_builtin()
    )
    assert composed.get("zlib") is UserZlib
    assert ("zlib", "user", "micro") in composed.shadowed
    assert composed.shard_of("zlib").name == "user/packages"
    # the shadowing package concretizes (it is the only zlib now)
    result = Concretizer(repo=composed).concretize("zlib")
    assert str(result.spec.versions) == "99.0"


def test_compose_merges_provider_preferences_with_precedence():
    user = user_catalog()
    user.set_provider_preference("mpi", ["openmpi", "mpich"])  # flip the default
    composed = ShardedRepository.compose(user, micro_builtin())
    assert composed.providers_for("mpi") == ["openmpi", "mpich"]
    # untouched virtuals keep the base preference
    assert composed.providers_for("blas") == ["miniblas", "reflapack"]


def test_compose_requires_at_least_one_catalog():
    with pytest.raises(PackageError):
        ShardedRepository.compose()


def test_compose_disambiguates_same_named_catalogs():
    composed = ShardedRepository.compose(
        Repository(name="user", packages=[Usertool]),
        Repository(name="user", packages=[Userlib]),
    )
    assert len(composed.shards) == 2
    assert len(composed) == 2


def test_composed_content_hash_tracks_every_source():
    baseline = ShardedRepository.compose(user_catalog(), micro_builtin())

    class Extra(Package):
        name = "extra-pkg"
        version("1.0")

    edited_user = ShardedRepository.compose(user_catalog(Extra), micro_builtin())
    assert edited_user.content_hash() != baseline.content_hash()
    rebuilt = ShardedRepository.compose(user_catalog(), micro_builtin())
    assert rebuilt.content_hash() == baseline.content_hash()


# ---------------------------------------------------------------------------
# Solving through a composed catalog
# ---------------------------------------------------------------------------

WORKLOAD = ("usertool", "userlib", "example", "usertool ^openmpi")


def merged_flat() -> Repository:
    repo = Repository(
        name="merged", packages=tuple(MICRO_PACKAGES) + (Usertool, Userlib)
    )
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


def test_composed_solves_match_flat_merge():
    composed = ShardedRepository.compose(user_catalog(), micro_builtin())
    session = fresh_session(composed)
    results = session.solve(list(WORKLOAD))
    flat = merged_flat()
    for spec, result in zip(WORKLOAD, results):
        assert signature(result) == signature(
            Concretizer(repo=flat).solve([spec])
        ), spec


def test_user_packages_resolve_builtin_dependencies():
    composed = ShardedRepository.compose(user_catalog(), micro_builtin())
    result = fresh_session(composed).concretize("usertool")
    assert result.spec["zlib"].name == "zlib"
    assert result.spec["mpich"].name == "mpich"  # the preferred mpi provider


def test_editing_the_user_layer_regrounds_exactly_one_layer(tmp_path):
    cold = fresh_session(
        ShardedRepository.compose(user_catalog(), micro_builtin()),
        cache_dir=str(tmp_path),
    )
    cold.solve(["usertool"])
    total = cold.stats.shard_layers_grounded
    assert total >= 3  # context + several builtin shards + the user shard

    class Extra(Package):
        name = "extra-pkg"
        version("1.0")

    edited = ShardedRepository.compose(user_catalog(), micro_builtin())
    edited.add(Extra, shard="user/packages")
    session = fresh_session(edited, cache_dir=str(tmp_path))
    session.solve(["usertool"])
    assert session.stats.shard_layers_grounded == 1
    assert session.stats.shard_layers_disk == total - 1


# ---------------------------------------------------------------------------
# Dirty-shard reordering
# ---------------------------------------------------------------------------


class _EditOne(Package):
    name = "edit-one"
    version("1.0")


class _EditTwo(Package):
    name = "edit-two"
    version("1.0")


def test_post_attach_edits_sink_the_shard_to_the_end():
    repo = micro_builtin()
    repo.add(_EditOne, shard="core")
    assert [s.name for s in repo.shards] == ["core", "mpi", "math", "apps"]
    assert [s.name for s in repo.layering_shards()] == [
        "mpi",
        "math",
        "apps",
        "core",
    ]
    assert repo.dirty_shards() == ["core"]


def test_dirty_order_follows_most_recent_edit():
    repo = micro_builtin()
    repo.add(_EditOne, shard="core")
    repo.add(_EditTwo, shard="mpi")
    assert [s.name for s in repo.layering_shards()] == [
        "math",
        "apps",
        "core",
        "mpi",
    ]
    # editing core again moves it behind mpi
    repo.add(type("EditThree", (Package,), {"name": "edit-three"}), shard="core")
    assert [s.name for s in repo.layering_shards()] == [
        "math",
        "apps",
        "mpi",
        "core",
    ]


def test_attach_time_packages_are_not_edits():
    repo = micro_builtin()
    assert repo.dirty_shards() == []
    assert repo.layering_shards() == repo.shards


def test_repeated_middle_shard_edits_converge_to_one_layer(tmp_path):
    """The ROADMAP scenario: the first edit to a middle shard re-grounds the
    reordered suffix once; every subsequent edit re-grounds exactly one
    layer because the edited shard now lives at the end of the chain."""
    cold = fresh_session(micro_builtin(), cache_dir=str(tmp_path))
    cold.solve(["example"])
    total = cold.stats.shard_layers_grounded

    first = micro_builtin()
    first.add(_EditOne, shard="core")
    session = fresh_session(first, cache_dir=str(tmp_path))
    results = session.solve(["example"])
    assert session.stats.shard_layers_grounded < total  # prefix stayed warm
    assert signature(results[0]) == signature(
        Concretizer(repo=first).solve(["example"])
    )

    second = micro_builtin()
    second.add(_EditOne, shard="core")
    second.add(_EditTwo, shard="core")
    session = fresh_session(second, cache_dir=str(tmp_path))
    results = session.solve(["example"])
    assert session.stats.shard_layers_grounded == 1
    assert signature(results[0]) == signature(
        Concretizer(repo=second).solve(["example"])
    )


def test_reordered_grounding_is_elementwise_identical():
    repo = micro_builtin()
    repo.add(_EditOne, shard="mpi")
    batch = ["example", "example+bzip", "minitool+mpi"]
    results = fresh_session(repo).solve(batch)
    for spec, result in zip(batch, results):
        assert signature(result) == signature(
            Concretizer(repo=repo).solve([spec])
        ), spec
