"""Indexed joins vs the naive grounder: an exact-equivalence oracle.

The indexed grounder (ISSUE 8 tentpole) reimplements grounding on interned
symbols, per-predicate argument indexes, and compiled join plans.  Its only
license to exist is being *faster while byte-identical*: for any program the
naive tuple-at-a-time grounder accepts, both engines must derive the same
certain facts, the same possible-atom universe, the same rule/choice/
constraint counts — and therefore the same concretization results.

Three layers of oracle:

* raw ASP programs chosen to stress join-planner corner cases (negation,
  comparisons binding late, arithmetic, conditionals, recursion through
  choices);
* full concretization sessions (monolithic and sharded catalogs), compared
  element-wise cold and warm;
* persistent-cache round-trips, where the two strategies must never share a
  cached base (a naive session replaying an indexed pickle or vice versa
  would be a silent lie).
"""

from __future__ import annotations

import pytest

from repro.asp.control import PreparedProgram, grounder_class
from repro.spack.concretize import ConcretizationSession
from repro.spack.concretize.session import clear_shared_bases

from tests.concretize.test_sharded_repo import micro_flat, micro_sharded

BATCH = [
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "minitool",
    "miniapp",
]

#: programs picked to hit join-planner corner cases, not to look pretty
TRICKY_PROGRAMS = (
    # multi-way join with a shared variable and a constant
    """
    p(1). p(2). p(3). q(2). q(3). r(3).
    a(X) :- p(X), q(X), r(X).
    b(X,Y) :- p(X), q(Y), X != Y.
    """,
    # negation as failure over a derived predicate
    """
    node(1). node(2). node(3). edge(1,2). edge(2,3).
    reach(X) :- node(X), edge(1,X).
    reach(Y) :- reach(X), edge(X,Y).
    isolated(X) :- node(X), not reach(X), X != 1.
    """,
    # comparison that only becomes ground after the second literal binds
    """
    v("1.0"). v("2.0"). w("2.0"). w("3.0").
    both(X) :- v(X), w(X).
    pair(X,Y) :- v(X), w(Y), X < Y.
    """,
    # choice rule feeding a constraint and a minimize statement
    """
    item(1). item(2). item(3).
    { pick(X) : item(X) }.
    :- pick(1), pick(2).
    cost(X,X) :- pick(X).
    #minimize { C@1,X : cost(X,C) }.
    """,
    # conditional literals in a rule body
    """
    p(1). p(2). ok(1). ok(2).
    all_ok :- ok(X) : p(X).
    q :- all_ok.
    """,
    # arithmetic inside comparisons over joined bindings
    """
    n(1). n(2). n(3). n(4).
    pair(X,Y) :- n(X), n(Y), X * 2 > Y, X < Y.
    near(X) :- n(X), n(Y), Y > X + 1.
    """,
)


def ground_signature(text: str, strategy: str):
    """Everything observable about a grounding, as strategy-independent
    strings."""
    prepared = PreparedProgram(text, join_strategy=strategy)
    program = prepared._base.ground()
    return {
        "certain": sorted(program.format_atom(atom) for atom in program.facts),
        "possible": sorted(
            program.format_atom(atom) for atom in range(1, program.num_atoms + 1)
        ),
        "rules": program.num_rules,
        "choices": len(program.choices),
        "constraints": len(program.constraints),
        "minimize": len(program.minimize_literals),
    }


def solve_signature(text: str, strategy: str):
    result = PreparedProgram(text, join_strategy=strategy).fork().solve()
    if result.model is None:
        return None
    return sorted(map(str, result.model.atoms()))


def session_signatures(repo, batch, **kwargs):
    clear_shared_bases()
    session = ConcretizationSession(repo=repo, share_ground_cache=False, **kwargs)
    results = session.solve(batch)
    return [
        (
            str(r.spec),
            sorted(str(s) for s in r.specs.values()),
            {level: cost for level, cost in r.costs.items() if cost},
        )
        for r in results
    ]


# ---------------------------------------------------------------------------
# Raw-program oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("index", range(len(TRICKY_PROGRAMS)))
def test_grounding_identical_on_tricky_programs(index):
    text = TRICKY_PROGRAMS[index]
    assert ground_signature(text, "indexed") == ground_signature(text, "naive")


@pytest.mark.parametrize("index", range(len(TRICKY_PROGRAMS)))
def test_solving_identical_on_tricky_programs(index):
    text = TRICKY_PROGRAMS[index]
    assert solve_signature(text, "indexed") == solve_signature(text, "naive")


def test_delta_grounding_identical():
    base = "p(1). p(2). r(X) :- p(X), extra(X)."
    signatures = {}
    for strategy in ("indexed", "naive"):
        prepared = PreparedProgram(base, join_strategy=strategy)
        control = prepared.fork(extra_facts=[("extra", 2)])
        result = control.solve()
        signatures[strategy] = sorted(map(str, result.model.atoms()))
    assert signatures["indexed"] == signatures["naive"]
    assert "('r', 2)" in signatures["indexed"]


def test_unknown_strategy_rejected_eagerly():
    with pytest.raises(ValueError, match="join strategy"):
        grounder_class("columnar")
    with pytest.raises(ValueError, match="join strategy"):
        ConcretizationSession(repo=micro_flat(), join_strategy="columnar")


# ---------------------------------------------------------------------------
# Session-level oracle: monolithic and sharded, cold and warm
# ---------------------------------------------------------------------------


def test_sessions_identical_monolithic():
    repo = micro_flat()
    indexed = session_signatures(repo, BATCH, join_strategy="indexed")
    naive = session_signatures(micro_flat(), BATCH, join_strategy="naive")
    assert indexed == naive


def test_sessions_identical_sharded():
    indexed = session_signatures(micro_sharded(), BATCH, join_strategy="indexed")
    naive = session_signatures(micro_sharded(), BATCH, join_strategy="naive")
    assert indexed == naive
    # and sharded == monolithic under the indexed grounder
    assert indexed == session_signatures(micro_flat(), BATCH, join_strategy="indexed")


def test_warm_replay_identical_across_strategies(tmp_path):
    """Cold solve, then a fresh session over the warm disk cache, for both
    strategies: all four runs element-wise identical."""
    runs = {}
    for strategy in ("indexed", "naive"):
        cache_dir = tmp_path / strategy
        cold = session_signatures(
            micro_flat(), BATCH, join_strategy=strategy, cache_dir=str(cache_dir)
        )
        warm = session_signatures(
            micro_flat(), BATCH, join_strategy=strategy, cache_dir=str(cache_dir)
        )
        runs[strategy] = (cold, warm)
        assert cold == warm
    assert runs["indexed"][0] == runs["naive"][0]


def test_strategies_never_share_a_cached_base(tmp_path):
    """A naive session over a ground cache warmed by an indexed session must
    not replay the indexed grounder's pickled base (the cache key embeds the
    strategy), while a second indexed session does replay it from disk.
    Specs differ per run so the strategy-independent *solve* cache (shared
    by design — results are identical) cannot short-circuit grounding."""
    cache_dir = str(tmp_path / "shared")

    def run(strategy, specs):
        clear_shared_bases()
        session = ConcretizationSession(
            repo=micro_flat(),
            share_ground_cache=False,
            cache_dir=cache_dir,
            join_strategy=strategy,
        )
        session.solve(specs)
        return session.statistics()

    cold = run("indexed", BATCH[:1])
    assert (cold["base_groundings"], cold["base_disk_hits"]) == (1, 0)

    replay = run("indexed", BATCH[1:2])
    assert (replay["base_groundings"], replay["base_disk_hits"]) == (0, 1)

    crossed = run("naive", BATCH[2:3])
    assert crossed["join_strategy"] == "naive"
    assert (crossed["base_groundings"], crossed["base_disk_hits"]) == (1, 0)
