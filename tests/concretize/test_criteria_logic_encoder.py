"""Unit tests for the criteria table, the logic program, and the fact encoder."""

import pytest

from repro.asp.parser import parse_program
from repro.spack.concretize.criteria import (
    BUILD_PRIORITY_OFFSET,
    CRITERIA,
    NUMBER_OF_BUILDS_LEVEL,
    cost_summary,
    criterion_by_level,
    describe_costs,
)
from repro.spack.concretize.encoder import ProblemEncoder
from repro.spack.concretize.logic import logic_program, logic_program_size
from repro.spack.spec_parser import parse_spec


class TestCriteria:
    def test_fifteen_criteria(self):
        assert len(CRITERIA) == 15
        assert [c.number for c in CRITERIA] == list(range(1, 16))

    def test_table2_names_and_scopes(self):
        assert CRITERIA[0].name == "Deprecated versions used"
        assert CRITERIA[1].scope == "roots"
        assert CRITERIA[10].name == "Version oldness"
        assert CRITERIA[10].scope == "non-roots"
        assert CRITERIA[14].name == "Non-preferred targets"

    def test_levels_are_lexicographically_ordered(self):
        levels = [c.level for c in CRITERIA]
        assert levels == sorted(levels, reverse=True)
        assert all(c.build_level == c.level + BUILD_PRIORITY_OFFSET for c in CRITERIA)

    def test_build_bucket_dominates_number_of_builds_dominates_reuse(self):
        assert min(c.build_level for c in CRITERIA) > NUMBER_OF_BUILDS_LEVEL
        assert max(c.level for c in CRITERIA) < NUMBER_OF_BUILDS_LEVEL

    def test_criterion_by_level(self):
        assert criterion_by_level(CRITERIA[0].level) is CRITERIA[0]
        assert criterion_by_level(CRITERIA[0].build_level) is CRITERIA[0]
        assert criterion_by_level(999) is None

    def test_describe_costs(self):
        lines = describe_costs({NUMBER_OF_BUILDS_LEVEL: 3, CRITERIA[0].build_level: 1})
        assert any("number of builds: 3" in line for line in lines)
        assert any("Deprecated versions" in line for line in lines)

    def test_cost_summary_merges_buckets(self):
        summary = cost_summary({CRITERIA[7].build_level: 2, CRITERIA[7].level: 1})
        assert summary["08_compiler_mismatches"] == 3


class TestLogicProgram:
    def test_parses_cleanly(self):
        program = parse_program(logic_program())
        assert program.rules

    def test_has_one_minimize_per_criterion_plus_builds(self):
        program = parse_program(logic_program())
        assert len(program.minimizes) == len(CRITERIA) + 1

    def test_size_is_comparable_to_the_paper(self):
        # the paper quotes ~800 lines for full Spack; our reduced model is
        # smaller but still a substantial declarative program
        assert 100 <= logic_program_size() <= 800

    def test_key_predicates_present(self):
        text = logic_program()
        for predicate in (
            "condition_holds",
            "imposed_constraint",
            "depends_on",
            "provider(",
            "installed_hash",
            "build_priority",
            "compiler_supports_target",
            "version_possible",
        ):
            assert predicate in text, predicate

    def test_acyclicity_constraint_present(self):
        assert ":- path(A, B), path(B, A)." in logic_program()


class TestEncoder:
    def _encode(self, micro_repo, text, **kwargs):
        encoder = ProblemEncoder(micro_repo, **kwargs)
        facts = encoder.encode([parse_spec(text)])
        return encoder, facts

    def _by_predicate(self, facts):
        grouped = {}
        for fact in facts:
            grouped.setdefault(fact[0], []).append(fact)
        return grouped

    def test_root_and_node_facts(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        grouped = self._by_predicate(facts)
        assert ("root", "example") in grouped["root"]
        assert any(f[1:] == (1, "node", "example") for f in grouped["imposed_constraint"])

    def test_version_declared_weights_prefer_newest(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        weights = {
            (f[1], f[2]): f[3] for f in facts if f[0] == "version_declared" and f[1] == "zlib"
        }
        assert weights[("zlib", "1.3")] == 0
        assert weights[("zlib", "1.2.11")] == 1

    def test_deprecated_versions_flagged(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        assert ("version_deprecated", "example", "0.9.0") in facts

    def test_dependency_conditions_emitted(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        targets = {f[3] for f in facts if f[0] == "dependency_condition" and f[2] == "example"}
        assert targets == {"bzip2", "zlib", "mpi"}

    def test_when_clause_becomes_requirement(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        # depends_on("bzip2@1.0.7:", when="+bzip") requires the variant value
        requirement_conditions = {
            f[1]
            for f in facts
            if f[0] == "condition_requirement"
            and f[2:] == ("variant_value", "example", "bzip", "true")
        }
        assert requirement_conditions
        # ... and imposes the version constraint on bzip2
        imposed = [
            f
            for f in facts
            if f[0] == "imposed_constraint"
            and f[1] in requirement_conditions
            and f[2] == "version_satisfies"
            and f[3] == "bzip2"
        ]
        assert imposed and imposed[0][4] == "1.0.7:"

    def test_version_possible_facts_only_for_satisfying_versions(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        versions = {f[3] for f in facts if f[0] == "version_possible" and f[1:3] == ("bzip2", "1.0.7:")}
        assert versions == {"1.0.7", "1.0.8"}

    def test_virtual_and_provider_facts(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        grouped = self._by_predicate(facts)
        assert ("virtual", "mpi") in grouped["virtual"]
        providers = {f[2]: f[3] for f in grouped["possible_provider"] if f[1] == "mpi"}
        assert providers["mpich"] == 0  # preferred
        assert providers["openmpi"] == 1

    def test_conflict_facts(self, micro_repo):
        _, facts = self._encode(micro_repo, "example")
        conflict_ids = {f[1] for f in facts if f[0] == "conflict" and f[2] == "example"}
        assert len(conflict_ids) == 2

    def test_platform_and_compiler_facts(self, micro_repo):
        _, facts = self._encode(micro_repo, "zlib")
        grouped = self._by_predicate(facts)
        targets = {f[1] for f in grouped["target"]}
        assert "skylake" in targets and "x86_64" in targets
        assert all(f[1] != "power9le" for f in grouped["target"])
        assert ("os", "rhel7") in grouped["os"]
        assert any(f[1] == "gcc" for f in grouped["compiler"])
        supported = {(f[1], f[2], f[3]) for f in grouped["compiler_supports_target"]}
        assert ("gcc", "4.8.3", "skylake") not in supported
        assert ("gcc", "11.2.0", "skylake") in supported

    def test_possible_dependency_statistics(self, micro_repo):
        encoder, _ = self._encode(micro_repo, "example")
        stats = encoder.stats.as_dict()
        assert stats["possible_dependencies"] >= 4
        assert stats["facts"] > 100
        assert stats["conditions"] > 5

    def test_installed_packages_encoded_when_reuse_enabled(self, micro_repo):
        from repro.spack.concretize import Concretizer
        from repro.spack.store import Database

        database = Database()
        database.install(Concretizer(repo=micro_repo).concretize("zlib").spec)
        encoder = ProblemEncoder(micro_repo, store=database, reuse=True)
        facts = encoder.encode([parse_spec("example")])
        grouped = self._by_predicate(facts)
        assert "installed_hash" in grouped
        digest = grouped["installed_hash"][0][2]
        imposed = {f[2:] for f in grouped["imposed_constraint"] if f[1] == digest}
        assert ("node", "zlib") in imposed
        assert any(entry[0] == "version" for entry in imposed)

    def test_reuse_disabled_emits_no_hashes(self, micro_repo):
        from repro.spack.concretize import Concretizer
        from repro.spack.store import Database

        database = Database()
        database.install(Concretizer(repo=micro_repo).concretize("zlib").spec)
        encoder = ProblemEncoder(micro_repo, store=database, reuse=False)
        facts = encoder.encode([parse_spec("example")])
        assert not [f for f in facts if f[0] == "installed_hash"]
