"""Async concretization sessions: identity, streaming, cancellation, crashes.

The contract under test (ISSUE 4 tentpole, async half):

* ``await AsyncConcretizationSession(...).concretize_batch(specs)`` is
  element-wise identical to the sequential session, in input order, on both
  worker backends;
* ``as_completed()`` streams every ``(input index, result)`` pair exactly
  once, cache hits first, and the union matches the sequential results;
* concurrency is bounded by the session-wide semaphore
  (``max_concurrency``);
* cancelling a consumer mid-stream returns the leased workers and leaves the
  session (and the event loop) fully usable — no hung tasks;
* a worker process that dies mid-solve degrades that call to sequential
  solving with identical results; solver errors still propagate.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
from contextlib import aclosing

import pytest

from repro.spack.concretize import (
    AsyncConcretizationSession,
    ConcretizationSession,
)
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.errors import UnsatisfiableSpecError

#: overlapping single-family batch: six distinct solves, two exact repeats
BATCH = [
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "example@1.1.0",
    "example ^zlib~pic",
    "example",
    "example+bzip",
]

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
        sorted(result.built),
        sorted(result.reused),
    )


def run(coro, timeout=120.0):
    """Drive one coroutine to completion with a hang guard."""

    async def guarded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(guarded())


@pytest.fixture()
def sequential_results(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(repo=micro_repo, share_ground_cache=False)
    return [signature(r) for r in session.solve(BATCH)]


def make_async(micro_repo, **kwargs):
    clear_shared_bases()
    kwargs.setdefault("worker_backend", "thread")
    kwargs.setdefault("max_concurrency", 4)
    return AsyncConcretizationSession(
        repo=micro_repo, share_ground_cache=False, **kwargs
    )


# ---------------------------------------------------------------------------
# Element-wise identity with the sequential session
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "backend",
    ["thread"] + (["process"] if HAS_FORK else []),
)
def test_batch_identical_to_sequential(micro_repo, sequential_results, backend):
    async def go():
        async with make_async(micro_repo, worker_backend=backend) as session:
            return await session.concretize_batch(BATCH)

    results = run(go())
    assert [signature(r) for r in results] == sequential_results


def test_single_concretize_roundtrip(micro_repo):
    async def go():
        async with make_async(micro_repo) as session:
            first = await session.concretize("example@1.0.0")
            again = await session.concretize("example@1.0.0")
            return first, again, session.stats.as_dict()

    first, again, stats = run(go())
    assert str(first.spec.versions) == "1.0.0"
    assert signature(first) == signature(again)
    assert stats["solve_cache_hits"] == 1  # the repeat never solved again
    assert stats["delta_groundings"] == 1


def test_as_completed_streams_every_index_once(micro_repo, sequential_results):
    async def go():
        async with make_async(micro_repo) as session:
            pairs = []
            async for index, result in session.as_completed(BATCH):
                pairs.append((index, signature(result)))
            return pairs

    pairs = run(go())
    assert sorted(index for index, _ in pairs) == list(range(len(BATCH)))
    by_index = dict(pairs)
    assert [by_index[i] for i in range(len(BATCH))] == sequential_results


def test_as_completed_yields_cache_hits_first(micro_repo):
    async def go():
        async with make_async(micro_repo) as session:
            await session.concretize("example")  # warm exactly one spec
            order = []
            async for index, _ in session.as_completed(
                ["example+bzip", "example", "example~bzip"]
            ):
                order.append(index)
            return order

    order = run(go())
    # the warm spec (index 1) streams out before any worker-solved result
    assert order[0] == 1


def test_in_batch_duplicates_never_lease_a_worker(micro_repo):
    async def go():
        async with make_async(micro_repo) as session:
            await session.concretize_batch(BATCH)
            return session.stats.as_dict()

    stats = run(go())
    assert stats["delta_groundings"] == 6  # distinct specs only
    assert stats["solve_cache_hits"] == 2  # the two in-batch repeats
    assert stats["solve_cache_misses"] == 6
    assert stats["specs_solved"] == len(BATCH)
    assert stats["base_groundings"] == 1  # grounded once, before fan-out


def test_semaphore_bounds_inflight_solves(micro_repo, sequential_results):
    async def go():
        async with make_async(micro_repo, max_concurrency=1) as session:
            results = await session.concretize_batch(BATCH)
            return [signature(r) for r in results]

    assert run(go()) == sequential_results


def test_concurrent_batches_share_one_session(micro_repo):
    """Two overlapping concretize_batch calls on one session must both see
    correct results (the semaphore and base demands are session-wide)."""

    async def go():
        async with make_async(micro_repo, max_concurrency=2) as session:
            lo = session.concretize_batch(["example@1.0.0", "example@1.0.0+bzip"])
            hi = session.concretize_batch(["example@1.1.0", "example@1.1.0+bzip"])
            results_lo, results_hi = await asyncio.gather(lo, hi)
            return (
                [str(r.spec.versions) for r in results_lo],
                [str(r.spec.versions) for r in results_hi],
            )

    versions_lo, versions_hi = run(go())
    assert versions_lo == ["1.0.0", "1.0.0"]
    assert versions_hi == ["1.1.0", "1.1.0"]


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


def test_cancel_mid_stream_returns_workers_and_stays_usable(micro_repo):
    async def go():
        async with make_async(micro_repo, max_concurrency=2) as session:
            got = []

            async def consume():
                async for index, result in session.as_completed(BATCH):
                    got.append(index)

            task = asyncio.ensure_future(consume())
            # let some work start, then cancel the consumer outright
            while not got:
                await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # leased workers were returned: a fresh solve completes promptly
            result = await session.concretize("example@1.0.0")
            return got, str(result.spec.versions)

    got, version = run(go(), timeout=60)
    assert got  # at least one result streamed before the cancel
    assert version == "1.0.0"


def test_closing_the_generator_early_cleans_up(micro_repo):
    async def go():
        async with make_async(micro_repo, max_concurrency=2) as session:
            agen = session.as_completed(BATCH)
            index, result = await agen.__anext__()
            await agen.aclose()
            # the loop is live and the session still answers
            follow_up = await session.concretize("example")
            return index, signature(result), follow_up

    index, _sig, follow_up = run(go(), timeout=60)
    assert 0 <= index < len(BATCH)
    assert follow_up.spec.name == "example"


def test_deadline_cancelled_batch_restores_full_concurrency(micro_repo, monkeypatch):
    """The service deadline path: ``asyncio.wait_for`` cancels a
    ``concretize_batch`` mid-flight.  The batch must close its stream on the
    way out — every leased semaphore permit back *immediately* (not at GC
    time), so the next batch on the same session gets full concurrency."""
    original = ConcretizationSession._solve_uncached
    slow = [True]

    def maybe_slow(self, spec, worker=False):
        if slow[0]:
            time.sleep(0.5)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", maybe_slow)

    async def go():
        async with make_async(micro_repo, max_concurrency=2) as session:
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(session.concretize_batch(BATCH), timeout=0.15)
            # deterministic cleanup: all permits are already back
            assert session._semaphore._value == session.max_concurrency
            slow[0] = False
            results = await session.concretize_batch(["example@1.0.0"])
            return [str(r.spec.versions) for r in results]

    assert run(go(), timeout=60) == ["1.0.0"]


def test_abandoned_stream_with_aclosing_restores_full_concurrency(micro_repo):
    """Breaking out of an ``async for`` abandons the generator mid-batch;
    the ``aclosing`` discipline (what the service uses) must cancel the
    in-flight tasks and return every leased permit before continuing."""

    async def go():
        async with make_async(micro_repo, max_concurrency=2) as session:
            seen = []
            async with aclosing(session.as_completed(BATCH)) as stream:
                async for index, _result in stream:
                    seen.append(index)
                    break  # abandon with most of the batch still in flight
            assert session._semaphore._value == session.max_concurrency
            # a follow-up batch runs at full concurrency and full correctness
            results = await session.concretize_batch(["example@1.0.0", "example@1.1.0"])
            return seen, [str(r.spec.versions) for r in results]

    seen, versions = run(go(), timeout=60)
    assert len(seen) == 1
    assert versions == ["1.0.0", "1.1.0"]


# ---------------------------------------------------------------------------
# Failure behavior
# ---------------------------------------------------------------------------


def test_solver_errors_propagate(micro_repo):
    async def go():
        async with make_async(micro_repo) as session:
            await session.concretize_batch(["example", "example %intel"])

    with pytest.raises(UnsatisfiableSpecError):
        run(go())


@pytest.mark.skipif(not HAS_FORK, reason="process backend needs fork")
def test_crashing_worker_degrades_to_sequential(micro_repo, sequential_results, monkeypatch):
    """A worker process dying mid-solve (OOM killer, fork guard, ...) must
    degrade the affected solves to the fallback thread — identical results,
    no hung event loop — exactly like the sync session's degradation."""
    original = ConcretizationSession._solve_uncached
    parent_pid = os.getpid()

    def dying(self, spec, worker=False):
        if os.getpid() != parent_pid:
            os._exit(1)  # simulate the process dying, not a Python exception
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", dying)

    async def go():
        async with make_async(
            micro_repo, worker_backend="process", max_concurrency=4
        ) as session:
            return await session.concretize_batch(BATCH)

    results = run(go(), timeout=120)
    assert [signature(r) for r in results] == sequential_results


def test_as_completed_completes_under_a_crashing_worker(micro_repo, monkeypatch):
    """Streaming keeps working through a pool collapse: every index still
    arrives exactly once (ordering may change — that is the point)."""
    if not HAS_FORK:
        pytest.skip("process backend needs fork")
    original = ConcretizationSession._solve_uncached
    parent_pid = os.getpid()

    def dying(self, spec, worker=False):
        if os.getpid() != parent_pid:
            os._exit(1)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", dying)

    async def go():
        async with make_async(
            micro_repo, worker_backend="process", max_concurrency=4
        ) as session:
            indices = []
            async for index, _result in session.as_completed(BATCH):
                indices.append(index)
            return indices

    indices = run(go(), timeout=120)
    assert sorted(indices) == list(range(len(BATCH)))


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def test_invalid_construction_is_rejected(micro_repo):
    with pytest.raises(ValueError):
        AsyncConcretizationSession(
            session=ConcretizationSession(repo=micro_repo), workers=2
        )
    with pytest.raises(ValueError):
        AsyncConcretizationSession(repo=micro_repo, max_concurrency=0)


def test_wraps_an_existing_session(micro_repo):
    clear_shared_bases()
    sync_session = ConcretizationSession(repo=micro_repo, share_ground_cache=False)
    sync_results = [signature(r) for r in sync_session.solve(["example"])]

    async def go():
        async with AsyncConcretizationSession(session=sync_session) as session:
            result = await session.concretize("example")
            return signature(result), session.stats.as_dict()

    sig, stats = run(go())
    assert [sig] == sync_results
    # the wrapped session's cache answered: no second grounding or solve
    assert stats["solve_cache_hits"] == 1
    assert stats["delta_groundings"] == 1
