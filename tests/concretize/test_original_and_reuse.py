"""The greedy baseline concretizer and the reuse machinery (micro repo)."""

import pytest

from repro.spack.concretize import Concretizer, OriginalConcretizer
from repro.spack.concretize.criteria import NUMBER_OF_BUILDS_LEVEL
from repro.spack.errors import ConflictError, UnsatisfiableSpecError
from repro.spack.store import Database
from repro.spack.version import Version


class TestOriginalConcretizer:
    def test_produces_valid_concrete_specs(self, micro_repo):
        result = OriginalConcretizer(repo=micro_repo).concretize("example")
        for node in result.specs.values():
            assert node.concrete
            assert node.versions.concrete is not None
            assert node.compiler and node.os and node.target

    def test_defaults_match_new_concretizer(self, micro_repo, example_result):
        greedy = OriginalConcretizer(repo=micro_repo).concretize("example")
        asp = example_result
        assert greedy.specs["example"].version == asp.specs["example"].version
        assert set(greedy.specs) == set(asp.specs)
        for name in greedy.specs:
            assert greedy.specs[name].version == asp.specs[name].version

    def test_user_version_respected(self, micro_repo):
        result = OriginalConcretizer(repo=micro_repo).concretize("example@1.0.0")
        assert result.specs["example"].version == Version("1.0.0")

    def test_incomplete_on_conditional_dependency(self, micro_repo):
        """The paper's Section VI-B.1 failure: the greedy algorithm sets the
        variant default before descending, so the ^mpich constraint dangles."""
        with pytest.raises(UnsatisfiableSpecError, match="does not depend on"):
            OriginalConcretizer(repo=micro_repo).concretize("minitool ^mpich")

    def test_complete_solver_handles_the_same_request(self, micro_repo):
        result = Concretizer(repo=micro_repo).concretize("minitool ^mpich")
        assert "mpich" in result.specs

    def test_explicit_variant_workaround_succeeds(self, micro_repo):
        """The workaround users had to know: overconstrain with +mpi."""
        result = OriginalConcretizer(repo=micro_repo).concretize("minitool+mpi ^mpich")
        assert "mpich" in result.specs

    def test_greedy_fails_where_backtracking_succeeds(self, micro_repo):
        """oldcode@2.0 (greedy's first pick) caps zlib at 1.2.8; asking for a
        newer zlib needs backtracking over the version choice."""
        request = "oldcode ^zlib@1.2.11:"
        with pytest.raises(UnsatisfiableSpecError):
            OriginalConcretizer(repo=micro_repo).concretize(request)
        asp = Concretizer(repo=micro_repo).concretize(request)
        assert asp.specs["oldcode"].version == Version("1.0")

    def test_conflicts_are_post_hoc_errors(self, micro_repo):
        with pytest.raises((ConflictError, UnsatisfiableSpecError)):
            OriginalConcretizer(repo=micro_repo).concretize("example%intel")

    def test_virtual_provider_defaults_to_preference(self, micro_repo):
        result = OriginalConcretizer(repo=micro_repo).concretize("example")
        assert "mpich" in result.specs

    def test_user_selected_provider(self, micro_repo):
        result = OriginalConcretizer(repo=micro_repo).concretize("example ^openmpi")
        assert "openmpi" in result.specs
        assert "mpich" not in result.specs

    def test_elapsed_time_recorded(self, micro_repo):
        result = OriginalConcretizer(repo=micro_repo).concretize("example")
        assert result.elapsed >= 0.0

    def test_hash_based_reuse_requires_exact_match(self, micro_repo):
        store = Database()
        first = OriginalConcretizer(repo=micro_repo).concretize("example")
        store.install(first.root)
        # identical request: every hash matches
        again = OriginalConcretizer(repo=micro_repo, store=store).concretize("example")
        assert again.number_reused == len(again.specs)
        # different variant on the root: the root and its parents' hashes miss
        changed = OriginalConcretizer(repo=micro_repo, store=store).concretize("example~bzip")
        assert "example" not in changed.reused


class TestSolverReuse:
    """Section VI: reuse as an optimization objective (Figure 6b)."""

    @pytest.fixture(scope="class")
    def store(self, micro_repo):
        database = Database()
        result = Concretizer(repo=micro_repo).concretize("example")
        database.install(result.spec)
        return database

    def test_full_reuse_when_nothing_changes(self, micro_repo, store):
        result = Concretizer(repo=micro_repo, store=store, reuse=True).concretize("example")
        assert result.number_of_builds == 0
        assert result.number_reused == len(result.specs)

    def test_partial_reuse_on_variant_change(self, micro_repo, store):
        result = Concretizer(repo=micro_repo, store=store, reuse=True).concretize("example target=haswell")
        # the root must be rebuilt (different target) but dependencies with
        # matching constraints are reused rather than rebuilt
        assert "example" in result.built
        assert result.number_reused >= 1

    def test_reuse_prefers_installed_over_newer_version(self, micro_repo):
        """The paper's cmake example: an installed 3.21.1 is reused even though
        a new build would pick 3.21.4 (reuse outranks version oldness)."""
        database = Database()
        old = Concretizer(repo=micro_repo).concretize("example ^zlib@1.2.11")
        database.install(old.spec)
        result = Concretizer(repo=micro_repo, store=database, reuse=True).concretize("example")
        assert result.specs["zlib"].version == Version("1.2.11")
        assert "zlib" in result.reused

    def test_new_builds_still_get_defaults(self, micro_repo, store):
        """Minimizing builds must not strip defaults from what *is* built
        (the 'cmake without openssl' pathology)."""
        result = Concretizer(repo=micro_repo, store=store, reuse=True).concretize("minitool")
        assert "minitool" in result.built
        assert result.specs["minitool"].version == Version("2023.1")
        # its zlib dependency can be reused from the example installation
        assert "zlib" in result.reused

    def test_reuse_respects_constraints(self, micro_repo):
        """An installed package that violates the request is not reused."""
        database = Database()
        old = Concretizer(repo=micro_repo).concretize("example ^zlib@1.2.8")
        database.install(old.spec)
        result = Concretizer(repo=micro_repo, store=database, reuse=True).concretize(
            "example ^zlib@1.2.11:"
        )
        assert result.specs["zlib"].version >= Version("1.2.11")
        assert "zlib" in result.built

    def test_without_reuse_flag_nothing_is_reused(self, micro_repo, store):
        result = Concretizer(repo=micro_repo, store=store, reuse=False).concretize("example")
        assert result.number_reused == 0
        assert result.number_of_builds == len(result.specs)

    def test_builds_counted_in_cost_vector(self, micro_repo, store):
        result = Concretizer(repo=micro_repo, store=store, reuse=True).concretize("example")
        assert result.costs[NUMBER_OF_BUILDS_LEVEL] == result.number_of_builds
