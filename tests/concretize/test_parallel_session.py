"""Parallel concretization sessions: identity, ordering, degradation.

The contract under test (ISSUE 2 tentpole, act 1):

* ``ConcretizationSession(workers=N).solve(specs)`` is element-wise identical
  to the sequential session (and therefore to per-spec :class:`Concretizer`
  runs), in input order, on both worker backends;
* the shared base is grounded exactly once, in the parent, before workers
  fork;
* cache hits and in-batch duplicates never reach a worker;
* pool failures degrade to sequential solving instead of failing the batch.
"""

from __future__ import annotations

import threading

import pytest

from repro.spack.concretize import (
    ConcretizationSession,
    ParallelConcretizationSession,
)
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.errors import UnsatisfiableSpecError

#: overlapping single-family batch: six distinct solves, two exact repeats
BATCH = [
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "example@1.1.0",
    "example ^zlib~pic",
    "example",
    "example+bzip",
]


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
        sorted(result.built),
        sorted(result.reused),
    )


@pytest.fixture()
def sequential_results(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(repo=micro_repo, share_ground_cache=False)
    return [signature(r) for r in session.solve(BATCH)]


# ---------------------------------------------------------------------------
# Element-wise identity with the sequential session
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_parallel_identical_to_sequential(micro_repo, sequential_results, backend):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=4, worker_backend=backend
    )
    results = session.solve(BATCH)
    assert [signature(r) for r in results] == sequential_results


def test_parallel_results_keep_input_order(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=2
    )
    results = session.solve(["example@1.0.0", "example@1.1.0", "example@1.0.0"])
    assert [str(r.spec.versions) for r in results] == ["1.0.0", "1.1.0", "1.0.0"]


def test_parallel_session_convenience_class(micro_repo, sequential_results):
    clear_shared_bases()
    session = ParallelConcretizationSession(
        repo=micro_repo, share_ground_cache=False
    )
    assert session.workers >= 1
    results = session.solve(BATCH)
    assert [signature(r) for r in results] == sequential_results


# ---------------------------------------------------------------------------
# Work sharing: one base grounding, cache hits stay in the parent
# ---------------------------------------------------------------------------


def test_parallel_grounds_base_once_in_parent(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=4
    )
    session.solve(BATCH)
    stats = session.stats
    assert stats.base_groundings == 1
    assert stats.delta_groundings == 6  # distinct specs only
    assert stats.solve_cache_hits == 2  # the two in-batch repeats
    assert stats.solve_cache_misses == 6
    assert stats.parallel_solves == 6
    assert stats.specs_solved == len(BATCH)


def test_parallel_second_pass_is_all_cache_hits(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=4
    )
    first = [signature(r) for r in session.solve(BATCH)]
    solves_after_first = session.stats.parallel_solves
    second = [signature(r) for r in session.solve(BATCH)]
    assert second == first
    assert session.stats.parallel_solves == solves_after_first  # no new workers
    assert session.stats.solve_cache_misses == 6


def test_parallel_marks_results_with_backend(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=2, worker_backend="thread"
    )
    results = session.solve(["example", "example+bzip"])
    for result in results:
        assert result.statistics["session"]["parallel_backend"] == "thread"
    # replays of cached results don't carry a backend marker
    replay = session.solve(["example"])[0]
    assert replay.statistics["session"]["solve_cache"] == "hit"


# ---------------------------------------------------------------------------
# Failure behavior
# ---------------------------------------------------------------------------


def test_unsatisfiable_spec_raises_in_parallel_batches(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=2
    )
    with pytest.raises(UnsatisfiableSpecError):
        session.solve(["example", "example %intel"])


def test_workers_one_is_plain_sequential(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(repo=micro_repo, share_ground_cache=False)
    session.solve(BATCH)
    assert session.stats.parallel_solves == 0


def test_invalid_worker_settings_are_rejected():
    with pytest.raises(ValueError):
        ConcretizationSession(workers=0)
    with pytest.raises(ValueError):
        ConcretizationSession(worker_backend="carrier-pigeon")


def test_single_cache_miss_skips_the_pool(micro_repo):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, workers=4
    )
    session.solve(["example", "example", "example"])  # one distinct spec
    assert session.stats.parallel_solves == 0  # solved inline, no pool
    assert session.stats.delta_groundings == 1
    assert session.stats.solve_cache_hits == 2


def test_concurrent_parallel_sessions_do_not_cross_wires(micro_repo):
    """Two sessions fanning out at the same time must each answer their own
    batch (the worker-state registry is keyed per batch, not a global)."""
    clear_shared_bases()
    batches = [
        ["example@1.0.0", "example@1.0.0+bzip", "example@1.0.0~bzip"],
        ["example@1.1.0", "example@1.1.0+bzip", "example@1.1.0~bzip"],
    ]
    outcomes = [None, None]

    def run(slot):
        session = ConcretizationSession(
            repo=micro_repo, share_ground_cache=False,
            workers=2, worker_backend="thread",
        )
        outcomes[slot] = session.solve(batches[slot])

    threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for slot, batch in enumerate(batches):
        versions = [str(r.spec.versions) for r in outcomes[slot]]
        expected = "1.0.0" if slot == 0 else "1.1.0"
        assert versions == [expected] * len(batch)
