"""ASP concretizer semantics on the micro repository (fast solves).

These tests check the validity and optimality conditions of Section III-C and
V against the paper's running example package (Figure 2).
"""

import pytest

from repro.spack.concretize import Concretizer
from repro.spack.errors import UnsatisfiableSpecError
from repro.spack.version import Version


class TestValidity:
    """A solution is valid iff virtuals are replaced, dependencies resolved,
    all parameters assigned, and all constraints satisfied (Section III-C1)."""

    def test_all_nodes_fully_specified(self, example_result):
        for name, node in example_result.specs.items():
            assert node.concrete
            assert node.versions.concrete is not None, name
            assert node.compiler is not None, name
            assert node.os is not None, name
            assert node.target is not None, name

    def test_all_virtuals_replaced(self, example_result, micro_repo):
        for name in example_result.specs:
            assert not micro_repo.is_virtual(name)

    def test_all_dependencies_resolved(self, example_result):
        example = example_result.specs["example"]
        assert "zlib" in example.dependencies
        assert "bzip2" in example.dependencies  # +bzip is the default
        providers = {"mpich", "openmpi"}
        assert providers & set(example.dependencies)

    def test_every_non_root_has_a_parent(self, example_result):
        children = set()
        for node in example_result.specs.values():
            children.update(node.dependencies)
        for name in example_result.specs:
            assert name == "example" or name in children

    def test_dag_is_acyclic(self, example_result):
        seen = set()

        def visit(node, stack):
            assert node.name not in stack
            if node.name in seen:
                return
            seen.add(node.name)
            for child in node.dependencies.values():
                visit(child, stack | {node.name})

        visit(example_result.spec, set())

    def test_declared_constraints_hold(self, example_result):
        example = example_result.specs["example"]
        bzip2 = example_result.specs["bzip2"]
        zlib = example_result.specs["zlib"]
        # depends_on("bzip2@1.0.7:", when="+bzip")
        assert bzip2.version >= Version("1.0.7")
        # depends_on("zlib@1.2.8:", when="@1.1.0:") and example is at 1.1.0
        assert example.version == Version("1.1.0")
        assert zlib.version >= Version("1.2.8")

    def test_all_variants_have_values(self, example_result, micro_repo):
        for name, node in example_result.specs.items():
            for variant_name in micro_repo.get(name).variants:
                assert variant_name in node.variants, (name, variant_name)


class TestOptimality:
    """Defaults from Table II: newest versions, default variants, preferred
    providers/compilers/targets."""

    def test_newest_versions_chosen(self, example_result, micro_repo):
        for name, node in example_result.specs.items():
            newest = micro_repo.get(name).preferred_version()
            assert node.version == newest, name

    def test_default_variant_values(self, example_result):
        assert example_result.specs["example"].variants["bzip"] == "true"
        assert example_result.specs["zlib"].variants["pic"] == "true"

    def test_preferred_provider_chosen(self, example_result):
        assert "mpich" in example_result.specs
        assert "openmpi" not in example_result.specs

    def test_preferred_compiler_and_target(self, example_result):
        for node in example_result.specs.values():
            assert node.compiler == "gcc"
            assert str(node.compiler_versions) == "11.2.0"
            assert node.target == "skylake"
            assert node.os == "rhel7"

    def test_deprecated_version_avoided(self, example_result):
        assert example_result.specs["example"].version != Version("0.9.0")

    def test_no_mismatches_in_cost_vector(self, example_result):
        # compiler (8), OS (9) and target (14) mismatch criteria must be 0
        from repro.spack.concretize.criteria import CRITERIA

        by_number = {c.number: c for c in CRITERIA}
        for number in (8, 9, 14):
            criterion = by_number[number]
            assert example_result.costs.get(criterion.build_level, 0) == 0
            assert example_result.costs.get(criterion.level, 0) == 0

    def test_cost_vector_reports_builds(self, example_result):
        from repro.spack.concretize.criteria import NUMBER_OF_BUILDS_LEVEL

        assert example_result.costs[NUMBER_OF_BUILDS_LEVEL] == len(example_result.specs)


class TestUserConstraints:
    def test_version_constraint_respected(self, micro_concretizer):
        result = micro_concretizer.concretize("example@1.0.0 ^zlib@1.2.11")
        assert result.specs["example"].version == Version("1.0.0")
        assert result.specs["zlib"].version == Version("1.2.11")
        # example@1.0.0 has no conditional zlib@1.2.8: constraint, so 1.2.11 is fine

    def test_variant_override(self, micro_concretizer):
        result = micro_concretizer.concretize("example~bzip")
        assert result.specs["example"].variants["bzip"] == "false"
        assert "bzip2" not in result.specs

    def test_compiler_override(self, micro_concretizer):
        result = micro_concretizer.concretize("example%clang@14.0.6")
        assert result.specs["example"].compiler == "clang"

    def test_target_override(self, micro_concretizer):
        result = micro_concretizer.concretize("example target=haswell")
        assert result.specs["example"].target == "haswell"

    def test_requesting_non_preferred_provider(self, micro_concretizer):
        result = micro_concretizer.concretize("example ^openmpi")
        assert "openmpi" in result.specs
        assert "mpich" not in result.specs
        assert "hwloc" in result.specs  # openmpi's own dependency came along

    def test_constraint_on_dependency_version(self, micro_concretizer):
        result = micro_concretizer.concretize("example ^bzip2@1.0.7")
        assert result.specs["bzip2"].version == Version("1.0.7")

    def test_unsatisfiable_version_raises(self, micro_concretizer):
        with pytest.raises(UnsatisfiableSpecError):
            micro_concretizer.concretize("example@3.0")

    def test_unsatisfiable_dependency_constraint(self, micro_concretizer):
        # example@1.1.0: requires zlib@1.2.8:, so zlib@1.2.3 is impossible
        with pytest.raises(UnsatisfiableSpecError):
            micro_concretizer.concretize("example@1.1.0 ^zlib@1.2.3")


class TestCompleteness:
    """The solver must backtrack where the greedy algorithm cannot
    (Section III-C2: the bzip2/mpich thought experiment)."""

    def test_backtracking_over_version_choice(self, micro_repo):
        # oldcode@2.0 (the newest) requires zlib@:1.2.8, so asking for a newer
        # zlib forces the solver to fall back to oldcode@1.0.
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("oldcode ^zlib@1.2.11:")
        assert result.specs["oldcode"].version == Version("1.0")

    def test_conditional_dependency_via_user_request(self, micro_repo):
        # minitool's mpi variant defaults to false; requesting ^mpich flips it
        # (or otherwise connects mpich) - the paper's hpctoolkit case.
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("minitool ^mpich")
        assert "mpich" in result.specs
        assert result.specs["minitool"].variants["mpi"] == "true"

    def test_conflict_avoided_by_different_choice(self, micro_repo):
        # oldcode@2.0 conflicts with %clang: requesting %clang must pick 1.0
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("oldcode%clang")
        assert result.specs["oldcode"].version == Version("1.0")


class TestProviderSpecialization:
    """Section VI-B.3: berkeleygw-style conditional constraints on providers."""

    def test_openblas_gets_openmp_threads(self, micro_repo):
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("miniapp+openmp ^miniblas")
        assert result.specs["miniblas"].variants["threads"] == "openmp"

    def test_no_specialization_without_openmp(self, micro_repo):
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("miniapp~openmp ^miniblas")
        assert result.specs["miniblas"].variants["threads"] == "none"

    def test_other_provider_not_constrained(self, micro_repo):
        concretizer = Concretizer(repo=micro_repo)
        result = concretizer.concretize("miniapp+openmp ^reflapack")
        assert "reflapack" in result.specs
        assert "threads" not in result.specs["reflapack"].variants


class TestConflicts:
    def test_conflicting_compiler_is_unsat(self, micro_concretizer):
        with pytest.raises(UnsatisfiableSpecError):
            micro_concretizer.concretize("example%intel")

    def test_conflicting_target_family_is_unsat(self, micro_concretizer):
        with pytest.raises(UnsatisfiableSpecError):
            micro_concretizer.concretize("example target=a64fx")

    def test_non_conflicting_request_succeeds(self, micro_concretizer):
        result = micro_concretizer.concretize("example target=haswell")
        assert result.spec.target == "haswell"


class TestMultipleRoots:
    def test_unified_concretization_shares_dependencies(self, micro_concretizer):
        result = micro_concretizer.solve(["example", "minitool"])
        assert len(result.roots) == 2
        assert len([n for n in result.specs if n == "zlib"]) == 1
        zlib_users = [
            name for name, node in result.specs.items() if "zlib" in node.dependencies
        ]
        assert set(zlib_users) >= {"example", "minitool"}
