"""mmap-able ground snapshots: warm starts with zero grounder work.

The contract under test (ISSUE 9 tentpole):

* a second session pointed at the same ``cache_dir`` reaches warm state by
  *attaching* the flat binary snapshot — no pickle object-graph walk, no
  ``Grounder`` work at all (asserted by making grounding raise) — and its
  results are element-wise identical to the cold path, monolithic and
  sharded alike;
* unsat answers survive the snapshot path too: the minimal conflict core a
  warm session reports is identical to the cold one's;
* damage degrades, never breaks: a truncated or corrupted snapshot falls
  back to the pickle cache (or a cold ground when that is damaged too), is
  counted as a load error, and is healed by a fresh write.
"""

from __future__ import annotations

import pytest

from repro.asp.grounder import Grounder
from repro.spack.concretize import SessionConfig
from repro.spack.concretize.session import ConcretizationSession, clear_shared_bases
from repro.spack.errors import UnsatisfiableSpecError

from tests.concretize.test_sharded_repo import micro_sharded, signature

BATCH = ["example", "example+bzip", "example@1.0.0"]


def fresh_session(repo, cache_dir, **overrides) -> ConcretizationSession:
    clear_shared_bases()
    config = SessionConfig(
        cache_dir=str(cache_dir), share_ground_cache=False, **overrides
    )
    return ConcretizationSession(repo=repo, session_config=config)


def snapshot_files(cache_dir):
    return sorted((cache_dir / "snapshot").glob("*.snap"))


def pickle_files(cache_dir):
    return sorted((cache_dir / "ground").glob("*.pkl"))


def clear_solve_cache(cache_dir):
    """Force warm runs to actually *solve* (and hence need the base) instead
    of answering everything from the persistent solve cache."""
    for path in (cache_dir / "solve").glob("*.json"):
        path.unlink()


def forbid_base_grounding(monkeypatch):
    """Any full base grounding after this is a test failure (per-spec
    *delta* grounding on top of an attached base is legitimate work)."""

    def boom(self, *args, **kwargs):
        raise AssertionError("full base grounding ran on the warm snapshot path")

    monkeypatch.setattr(Grounder, "ground", boom)


# ---------------------------------------------------------------------------
# Warm start: attach, don't ground
# ---------------------------------------------------------------------------


def test_monolithic_warm_start_attaches_with_zero_grounder_work(
    micro_repo, tmp_path, monkeypatch
):
    cold = fresh_session(micro_repo, tmp_path)
    cold_results = [signature(r) for r in cold.solve(BATCH)]
    assert cold.stats.snapshot_writes >= 1
    assert snapshot_files(tmp_path)

    clear_solve_cache(tmp_path)  # make the warm run need the base for real
    forbid_base_grounding(monkeypatch)
    warm = fresh_session(micro_repo, tmp_path)
    warm_results = [signature(r) for r in warm.solve(BATCH)]

    assert warm_results == cold_results
    assert warm.stats.base_groundings == 0
    assert warm.stats.snapshot_attaches == 1
    assert warm.statistics()["base"]["snapshot_attached"] is True
    assert warm.statistics()["snapshot_store"]["attaches"] == 1


def test_sharded_warm_start_attaches_the_deepest_prefix(tmp_path, monkeypatch):
    cold = fresh_session(micro_sharded(), tmp_path)
    cold_results = [signature(r) for r in cold.solve(BATCH)]
    assert cold.stats.shard_layers_grounded > 0
    assert cold.stats.snapshot_writes >= 1

    clear_solve_cache(tmp_path)
    forbid_base_grounding(monkeypatch)
    warm = fresh_session(micro_sharded(), tmp_path)
    warm_results = [signature(r) for r in warm.solve(BATCH)]

    assert warm_results == cold_results
    assert warm.stats.shard_layers_grounded == 0
    assert warm.stats.base_groundings == 0
    # deepest-prefix-wins: one attach restores the whole layered chain
    assert warm.stats.snapshot_attaches == 1


def test_warm_base_still_solves_new_specs(micro_repo, tmp_path):
    """A snapshot-attached base is a *live* base: delta grounding for a
    spec the cold run never saw (same family, so same base key) works on
    top of it."""
    cold = fresh_session(micro_repo, tmp_path)
    cold.solve(BATCH)

    warm = fresh_session(micro_repo, tmp_path)
    fresh_result = signature(warm.solve(["example~bzip"])[0])
    assert warm.stats.base_groundings == 0
    assert warm.stats.snapshot_attaches == 1
    assert warm.stats.delta_groundings == 1

    reference = fresh_session(micro_repo, tmp_path / "other")
    assert fresh_result == signature(reference.solve(["example~bzip"])[0])


def test_unsat_cores_identical_across_snapshot_warm_start(micro_repo, tmp_path):
    def core(session):
        with pytest.raises(UnsatisfiableSpecError) as excinfo:
            session.solve(["example %intel"])
        return [entry.describe() for entry in excinfo.value.explanation]

    cold = fresh_session(micro_repo, tmp_path)
    cold.solve(BATCH)  # publish the snapshot
    cold_core = core(cold)
    assert cold_core  # non-empty: the conflict is explained

    clear_solve_cache(tmp_path)
    warm = fresh_session(micro_repo, tmp_path)
    assert core(warm) == cold_core
    assert warm.stats.base_groundings == 0
    assert warm.stats.snapshot_attaches == 1


# ---------------------------------------------------------------------------
# Damage degrades, never breaks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("damage", ["truncate", "corrupt"])
def test_damaged_snapshot_falls_back_to_pickle(micro_repo, tmp_path, damage):
    cold = fresh_session(micro_repo, tmp_path)
    cold_results = [signature(r) for r in cold.solve(BATCH)]

    for path in snapshot_files(tmp_path):
        data = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:
            middle = len(data) // 2
            path.write_bytes(data[:middle] + b"\xff" + data[middle + 1 :])

    clear_solve_cache(tmp_path)
    warm = fresh_session(micro_repo, tmp_path)
    assert [signature(r) for r in warm.solve(BATCH)] == cold_results
    # no grounding: the intact pickle cache carried the warm start
    assert warm.stats.base_groundings == 0
    assert warm.stats.snapshot_attaches == 0
    assert warm.stats.base_disk_hits == 1
    store_stats = warm.statistics()["snapshot_store"]
    assert store_stats["load_errors"] == 1
    # self-healed: the damaged snapshot was rewritten
    assert store_stats["writes"] == 1


def test_damaged_snapshot_and_pickle_degrade_to_cold_ground(micro_repo, tmp_path):
    cold = fresh_session(micro_repo, tmp_path)
    cold_results = [signature(r) for r in cold.solve(BATCH)]

    for path in snapshot_files(tmp_path) + pickle_files(tmp_path):
        path.write_bytes(b"\x00garbage\x00")

    clear_solve_cache(tmp_path)
    warm = fresh_session(micro_repo, tmp_path)
    assert [signature(r) for r in warm.solve(BATCH)] == cold_results
    assert warm.stats.base_groundings == 1  # genuinely cold
    assert warm.stats.snapshot_attaches == 0
    assert warm.statistics()["snapshot_store"]["load_errors"] == 1

    # and the heal is real: a third session attaches the rewritten snapshot
    clear_solve_cache(tmp_path)
    third = fresh_session(micro_repo, tmp_path)
    assert [signature(r) for r in third.solve(BATCH)] == cold_results
    assert third.stats.base_groundings == 0
    assert third.stats.snapshot_attaches == 1


def test_snapshots_can_be_disabled(micro_repo, tmp_path):
    session = fresh_session(micro_repo, tmp_path, snapshots=False)
    session.solve(BATCH)
    assert session.snapshot_store is None
    assert not snapshot_files(tmp_path)
    assert "snapshot_store" not in session.statistics()
