"""The racing solver portfolio: identical answers, only sooner.

First-answer-wins is only sound if the answer cannot depend on who wins.
These tests pin that determinism contract (ISSUE 8 tentpole, part 4):

* a portfolio session is element-wise identical to a plain sequential
  session — concrete specs, per-criterion costs, and unsat minimal cores;
* every degradation path (single preset, racing unavailable, child spawn
  failure) still returns the sequential answer;
* preset plumbing: ``resolve_presets`` coercions, the shared
  :class:`SolverPreset` validation, and per-request presets that bypass
  the race while reusing the shared solve cache.
"""

from __future__ import annotations

import pytest

from repro.asp.configs import PORTFOLIO_PRESETS, SolverConfig, SolverPreset
from repro.asp.control import PreparedProgram
from repro.asp.portfolio import PortfolioSolver, resolve_presets
from repro.asp.stats import ASPStats
from repro.spack.concretize import ConcretizationSession
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.errors import UnsatisfiableSpecError

BATCH = ["example", "example+bzip", "example@1.0.0", "minitool"]


def signature(result):
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
    )


def fresh_session(micro_repo, **kwargs):
    clear_shared_bases()
    return ConcretizationSession(
        repo=micro_repo, share_ground_cache=False, **kwargs
    )


# ---------------------------------------------------------------------------
# Preset plumbing
# ---------------------------------------------------------------------------


def test_resolve_presets_coercions():
    assert resolve_presets(False) == ()
    assert resolve_presets(None) == ()
    assert resolve_presets(()) == ()
    assert resolve_presets(True) == PORTFOLIO_PRESETS
    assert resolve_presets(2) == PORTFOLIO_PRESETS[:2]
    assert resolve_presets(99) == PORTFOLIO_PRESETS
    named = resolve_presets(["vsids-luby", "fixed-geometric"])
    assert [p.name for p in named] == ["vsids-luby", "fixed-geometric"]


def test_from_value_accepts_portfolio_and_config_names():
    assert SolverPreset.from_value("fixed-luby").heuristic == "fixed"
    tweety = SolverPreset.from_value("tweety")
    assert tweety == SolverPreset.from_config(SolverConfig.preset("tweety"))
    knobs = SolverPreset.from_value({"heuristic": "fixed", "restart_base": 7})
    assert (knobs.heuristic, knobs.restart_base) == ("fixed", 7)


@pytest.mark.parametrize(
    "bad",
    [
        "no-such-preset",
        {"heuristic": "astrology"},
        {"unknown_knob": 1},
        {"restart_base": 0},
        {"var_decay": 2.0},
        42.5,
    ],
)
def test_from_value_rejects_invalid(bad):
    with pytest.raises(ValueError):
        SolverPreset.from_value(bad)


# ---------------------------------------------------------------------------
# The race itself, on a bare prepared program
# ---------------------------------------------------------------------------

RACE_PROGRAM = """
item(1). item(2). item(3). item(4).
{ pick(X) : item(X) }.
:- pick(1), pick(2).
cost(X,X) :- pick(X).
picked(X) :- pick(X).
#minimize { C@1,X : cost(X,C) }.
"""


def model_atoms(result):
    return sorted(map(str, result.model.atoms()))


def test_race_matches_sequential_solve():
    prepared = PreparedProgram(RACE_PROGRAM)
    sequential = prepared.fork().solve()
    stats = ASPStats()
    raced = PortfolioSolver(stats=stats).solve(prepared.fork())
    assert model_atoms(raced) == model_atoms(sequential)
    if stats.counters.get("portfolio.races"):
        assert sum(
            count
            for name, count in stats.counters.items()
            if name.startswith("portfolio.wins.")
        ) == stats.counters["portfolio.races"]


def test_single_preset_never_races():
    solver = PortfolioSolver([PORTFOLIO_PRESETS[0]])
    assert not solver.available()
    result = solver.solve(PreparedProgram(RACE_PROGRAM).fork())
    assert model_atoms(result) == model_atoms(
        PreparedProgram(RACE_PROGRAM).fork().solve()
    )


def test_unavailable_race_falls_back_sequentially(monkeypatch):
    stats = ASPStats()
    solver = PortfolioSolver(stats=stats)
    monkeypatch.setattr(solver, "available", lambda: False)
    result = solver.solve(PreparedProgram(RACE_PROGRAM).fork())
    assert model_atoms(result) == model_atoms(
        PreparedProgram(RACE_PROGRAM).fork().solve()
    )
    assert stats.counters["portfolio.sequential_fallbacks"] == 1


def test_spawn_failure_falls_back_sequentially(monkeypatch):
    import multiprocessing

    class ExplodingContext:
        Queue = staticmethod(multiprocessing.get_context("fork").Queue)

        @staticmethod
        def Process(*args, **kwargs):
            raise OSError("no more processes")

    stats = ASPStats()
    solver = PortfolioSolver(stats=stats)
    monkeypatch.setattr(
        "repro.asp.portfolio.multiprocessing.get_context",
        lambda method: ExplodingContext,
    )
    result = solver.solve(PreparedProgram(RACE_PROGRAM).fork())
    assert model_atoms(result) == model_atoms(
        PreparedProgram(RACE_PROGRAM).fork().solve()
    )
    assert stats.counters["portfolio.sequential_fallbacks"] == 1


# ---------------------------------------------------------------------------
# Session-level determinism oracle
# ---------------------------------------------------------------------------


def test_portfolio_session_identical_to_sequential(micro_repo):
    plain = [signature(r) for r in fresh_session(micro_repo).solve(BATCH)]
    raced = [
        signature(r)
        for r in fresh_session(micro_repo, portfolio=True).solve(BATCH)
    ]
    assert raced == plain


def test_portfolio_unsat_core_identical(micro_repo):
    def core(session):
        with pytest.raises(UnsatisfiableSpecError) as excinfo:
            session.concretize("example%intel")
        return excinfo.value.core()

    plain = core(fresh_session(micro_repo))
    raced = core(fresh_session(micro_repo, portfolio=True))
    assert raced == plain
    assert raced  # the conflict is explained, not just reported


def test_portfolio_statistics_exposed(micro_repo):
    session = fresh_session(micro_repo, portfolio=2)
    session.solve(BATCH[:2])
    stats = session.statistics()
    lineup = stats["portfolio"]
    assert [entry["name"] for entry in lineup] == [
        p.name for p in PORTFOLIO_PRESETS[:2]
    ]


def test_per_request_preset_bypasses_the_race(micro_repo):
    session = fresh_session(micro_repo, portfolio=True)
    baseline = [signature(r) for r in session.solve(BATCH)]
    for preset in ("fixed-geometric", "tweety"):
        pinned = [signature(r) for r in session.solve(BATCH, preset=preset)]
        assert pinned == baseline


def test_per_request_preset_without_portfolio(micro_repo):
    session = fresh_session(micro_repo)
    baseline = [signature(r) for r in session.solve(BATCH[:2])]
    pinned = [
        signature(r) for r in session.solve(BATCH[:2], preset="vsids-geometric")
    ]
    assert pinned == baseline


def test_invalid_request_preset_rejected(micro_repo):
    session = fresh_session(micro_repo)
    with pytest.raises(ValueError):
        session.solve(BATCH[:1], preset="astrology")
    with pytest.raises(ValueError):
        session.concretize(BATCH[0], preset={"heuristic": "astrology"})


def test_invalid_portfolio_config_rejected(micro_repo):
    with pytest.raises(ValueError):
        fresh_session(micro_repo, portfolio=["vsids-luby", "astrology"])
