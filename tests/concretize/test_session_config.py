"""SessionConfig: one frozen config object instead of constructor sprawl.

The contract under test (ISSUE 9 satellite):

* every tuning knob the sessions accept lives in one frozen, validated
  :class:`~repro.spack.concretize.config.SessionConfig`;
* the legacy loose kwargs (``workers=``, ``cache_dir=``, ...) keep working
  through a documented mapping — each emits a :class:`DeprecationWarning`
  and overrides the corresponding config field;
* unknown kwargs still fail fast with a normal ``TypeError`` shape;
* :class:`ParallelConcretizationSession` keeps ``workers`` as a
  first-class (non-deprecated) parameter, applied via ``replace()``;
* the async session and the HTTP service accept the same object.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.spack.concretize import SessionConfig
from repro.spack.concretize.async_session import AsyncConcretizationSession
from repro.spack.concretize.config import LEGACY_SESSION_KWARGS
from repro.spack.concretize.session import (
    ConcretizationSession,
    ParallelConcretizationSession,
    clear_shared_bases,
)


def make_session(repo, **kwargs):
    clear_shared_bases()
    return ConcretizationSession(repo=repo, **kwargs)


# ---------------------------------------------------------------------------
# The config object itself
# ---------------------------------------------------------------------------


def test_config_is_frozen_and_validated():
    config = SessionConfig(workers=2, cache_dir="/tmp/x")
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.workers = 4
    with pytest.raises(ValueError):
        SessionConfig(workers=0)
    with pytest.raises(ValueError):
        SessionConfig(worker_backend="carrier-pigeon")
    with pytest.raises(ValueError):
        SessionConfig(max_concurrency=0)


def test_replace_returns_a_new_validated_config():
    base = SessionConfig()
    bumped = base.replace(workers=3)
    assert bumped.workers == 3
    assert base.workers == 1  # the original is untouched
    with pytest.raises(ValueError):
        base.replace(workers=-1)


def test_legacy_mapping_covers_every_field():
    field_names = {f.name for f in dataclasses.fields(SessionConfig)}
    assert set(LEGACY_SESSION_KWARGS.values()) == field_names


# ---------------------------------------------------------------------------
# Sessions accept the config (and the legacy kwargs, with warnings)
# ---------------------------------------------------------------------------


def test_session_accepts_session_config(micro_repo):
    session = make_session(
        micro_repo,
        session_config=SessionConfig(workers=2, join_strategy="naive", profile=True),
    )
    assert session.workers == 2
    assert session.join_strategy == "naive"
    assert session.session_config.profile is True


def test_legacy_kwargs_warn_and_apply(micro_repo):
    with pytest.warns(DeprecationWarning, match="workers"):
        session = make_session(micro_repo, workers=2)
    assert session.workers == 2
    assert session.session_config.workers == 2


def test_legacy_kwargs_override_session_config(micro_repo):
    with pytest.warns(DeprecationWarning, match="join_strategy"):
        session = make_session(
            micro_repo,
            session_config=SessionConfig(join_strategy="indexed"),
            join_strategy="naive",
        )
    assert session.join_strategy == "naive"


def test_unknown_kwarg_raises_type_error(micro_repo):
    with pytest.raises(TypeError, match="unexpected keyword argument 'warp_speed'"):
        make_session(micro_repo, warp_speed=9)


def test_config_only_construction_emits_no_warnings(micro_repo):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = make_session(micro_repo, session_config=SessionConfig(workers=2))
    assert session.workers == 2


def test_parallel_session_workers_is_first_class(micro_repo):
    clear_shared_bases()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = ParallelConcretizationSession(repo=micro_repo, workers=2)
    assert session.workers == 2
    # and it composes with an explicit config
    clear_shared_bases()
    session = ParallelConcretizationSession(
        repo=micro_repo,
        workers=3,
        session_config=SessionConfig(join_strategy="naive"),
    )
    assert session.workers == 3
    assert session.join_strategy == "naive"


def test_async_session_inherits_config_max_concurrency(micro_repo):
    clear_shared_bases()
    async_session = AsyncConcretizationSession(
        repo=micro_repo, session_config=SessionConfig(max_concurrency=3)
    )
    assert async_session.max_concurrency == 3
