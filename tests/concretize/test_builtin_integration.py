"""Integration tests against the full builtin (E4S-style) repository.

These exercise the paper's headline scenarios end to end on realistic package
metadata.  They are the slowest tests in the suite (a few seconds each), so
results are shared through session-scoped fixtures where possible.
"""

import pytest

from repro.spack.concretize import Concretizer, OriginalConcretizer
from repro.spack.errors import UnsatisfiableSpecError
from repro.spack.store import Database
from repro.spack.version import Version

pytestmark = pytest.mark.slow


class TestHdf5(object):
    """The paper's running example (Figures 4 and 6 concretize hdf5)."""

    def test_valid_and_complete(self, hdf5_result, builtin_repo):
        assert hdf5_result.spec.name == "hdf5"
        for name, node in hdf5_result.specs.items():
            assert node.concrete
            assert node.versions.concrete is not None
            assert not builtin_repo.is_virtual(name)

    def test_mpi_provider_selected(self, hdf5_result):
        assert "mpich" in hdf5_result.specs  # preferred provider
        assert hdf5_result.specs["hdf5"].variants["mpi"] == "true"

    def test_newest_version_and_defaults(self, hdf5_result, builtin_repo):
        assert hdf5_result.specs["hdf5"].version == builtin_repo.get("hdf5").preferred_version()
        assert hdf5_result.specs["hdf5"].variants["shared"] == "true"

    def test_toolchain_consistency(self, hdf5_result):
        compilers = {node.compiler for node in hdf5_result.specs.values()}
        targets = {node.target for node in hdf5_result.specs.values()}
        assert compilers == {"gcc"}
        assert targets == {"skylake"}

    def test_phase_timings_recorded(self, hdf5_result):
        for phase in ("setup", "load", "ground", "solve"):
            assert hdf5_result.timings.get(phase, 0.0) >= 0.0
        assert hdf5_result.timings["total"] > 0.0


class TestUsability:
    """Section VI-B scenarios on the real package metadata."""

    def test_hpctoolkit_mpich_old_vs_new(self, builtin_repo):
        request = "hpctoolkit ^mpich"
        with pytest.raises(UnsatisfiableSpecError, match="does not depend on"):
            OriginalConcretizer(repo=builtin_repo).concretize(request)
        result = Concretizer(repo=builtin_repo).concretize(request)
        assert "mpich" in result.specs
        parents = [n for n, s in result.specs.items() if "mpich" in s.dependencies]
        assert parents  # connected to the DAG, not floating

    def test_conflict_rejected_up_front(self, builtin_repo):
        with pytest.raises(UnsatisfiableSpecError):
            Concretizer(repo=builtin_repo).concretize("dyninst %intel")

    def test_conflict_avoided_when_free(self, builtin_repo):
        result = Concretizer(repo=builtin_repo).concretize("dyninst")
        assert result.spec.compiler != "intel"

    def test_old_compiler_limits_target(self, builtin_repo):
        result = Concretizer(repo=builtin_repo).concretize("zlib %gcc@4.8.3")
        assert result.spec.target == "haswell"  # best target gcc 4.8 supports


class TestReuseFigure6(object):
    """Figure 6: hash-based reuse misses everything; solver reuse keeps 16/20."""

    @pytest.fixture(scope="class")
    def store(self, builtin_concretizer):
        database = Database()
        database.install(builtin_concretizer.concretize("hdf5").spec)
        return database

    def test_solver_reuse_rebuilds_only_the_changed_root(self, builtin_repo, store):
        result = Concretizer(repo=builtin_repo, store=store, reuse=True).concretize("hdf5+hl")
        assert result.built == {"hdf5"}
        assert result.number_reused == len(result.specs) - 1

    def test_hash_reuse_misses_on_any_change(self, builtin_repo, store):
        result = OriginalConcretizer(repo=builtin_repo, store=store).concretize("hdf5+hl")
        assert "hdf5" not in result.reused
