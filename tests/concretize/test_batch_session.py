"""Batch concretization sessions: equivalence, cache behavior, invalidation.

The contract under test (ISSUE 1):

* ``ConcretizationSession.solve(specs)`` is element-wise identical to running
  a fresh :class:`Concretizer` per spec;
* a second pass over the same specs is answered from the solve cache without
  re-grounding anything (proven via session/grounder statistics);
* mutating the repository (new package version) or switching solver presets
  changes the content hash and bypasses stale cache entries.
"""

from __future__ import annotations

import pytest

from repro.asp.configs import SolverConfig
from repro.spack.concretize import ConcretizationSession, Concretizer
from repro.spack.concretize.session import clear_shared_bases
from repro.spack.directives import depends_on, provides, variant, version
from repro.spack.errors import UnsatisfiableSpecError
from repro.spack.package import Package
from repro.spack.repo import Repository
from repro.spack.store import Database, SolveCache

#: an overlapping batch: three distinct solves, two repeats, two spec families
BATCH = ["example", "example+bzip", "minitool", "example", "example+bzip"]


def signature(result):
    """Everything that must match between session and sequential solves.

    Cost vectors are compared on their non-zero levels: the session's shared
    base grounds minimize literals for criteria a minimal per-spec grounding
    never materializes, which adds *empty* levels to the cost dict without
    affecting the model or any actual cost.
    """
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        {level: cost for level, cost in result.costs.items() if cost},
        sorted(result.built),
        sorted(result.reused),
    )


@pytest.fixture()
def session(micro_repo):
    return ConcretizationSession(repo=micro_repo, share_ground_cache=False)


# ---------------------------------------------------------------------------
# Equivalence with the sequential concretizer
# ---------------------------------------------------------------------------


def test_batch_is_elementwise_identical_to_sequential(micro_repo, session):
    batch = session.solve(BATCH)
    assert len(batch) == len(BATCH)
    for spec, result in zip(BATCH, batch):
        sequential = Concretizer(repo=micro_repo).solve([spec])
        assert signature(result) == signature(sequential)


def test_session_concretize_matches_concretizer(micro_repo, session):
    result = session.concretize("miniapp")
    sequential = Concretizer(repo=micro_repo).concretize("miniapp")
    assert signature(result) == signature(sequential)


def test_session_result_specs_are_concrete_dags(session):
    result = session.concretize("example")
    assert result.spec.concrete
    assert "zlib" in result.specs
    assert result.spec.dependencies["zlib"] is result.specs["zlib"]


def test_unsatisfiable_spec_raises_like_sequential(session):
    with pytest.raises(UnsatisfiableSpecError):
        session.solve(["example %intel"])


def test_reuse_mode_matches_sequential(micro_repo):
    store = Database()
    store.install(Concretizer(repo=micro_repo).concretize("example~bzip").spec)
    session = ConcretizationSession(
        repo=micro_repo, store=store, reuse=True, share_ground_cache=False
    )
    for spec in ("example~bzip", "minitool"):
        result = session.concretize(spec)
        sequential = Concretizer(repo=micro_repo, store=store, reuse=True).solve([spec])
        assert signature(result) == signature(sequential)


def test_store_growth_mid_session_is_picked_up(micro_repo):
    store = Database()
    session = ConcretizationSession(
        repo=micro_repo, store=store, reuse=True, share_ground_cache=False
    )
    before = session.concretize("example")
    assert before.number_reused == 0
    store.install(Concretizer(repo=micro_repo).concretize("example").spec)
    after = session.concretize("example")
    assert after.number_reused > 0
    sequential = Concretizer(repo=micro_repo, store=store, reuse=True).solve(["example"])
    assert signature(after) == signature(sequential)


# ---------------------------------------------------------------------------
# Cache behavior: shared grounding, solve-cache hits
# ---------------------------------------------------------------------------


def test_shared_base_is_grounded_once_per_spec_family(micro_repo, session):
    session.solve(["example", "example+bzip", "example@1.0.0"])
    stats = session.stats
    # one spec family => exactly one base grounding, reused by the others
    assert stats.base_groundings == 1
    assert stats.base_cache_hits == 2
    assert stats.delta_groundings == 3
    base_stats = session.statistics()["base"]
    assert base_stats["base_groundings"] == 1
    assert base_stats["forks"] == 3


def test_second_pass_hits_cache_without_regrounding(micro_repo, session):
    first = session.solve(BATCH)
    groundings_after_first = (
        session.stats.base_groundings,
        session.stats.delta_groundings,
    )
    second = session.solve(BATCH)

    # no new base groundings, no new delta groundings: every answer replayed
    assert session.stats.base_groundings == groundings_after_first[0]
    assert session.stats.delta_groundings == groundings_after_first[1]
    assert session.stats.solve_cache_hits >= len(BATCH)
    for result in second:
        assert result.statistics["session"]["solve_cache"] == "hit"
    for a, b in zip(first, second):
        assert signature(a) == signature(b)


def test_repeated_spec_within_one_batch_hits_cache(micro_repo, session):
    session.solve(["example", "example"])
    assert session.stats.solve_cache_misses == 1
    assert session.stats.solve_cache_hits == 1


def test_replayed_results_are_independent_copies(micro_repo, session):
    first = session.concretize("example")
    first.spec.variants["bzip"] = "mutated"
    second = session.concretize("example")
    assert second.statistics["session"]["solve_cache"] == "hit"
    assert second.spec.variants.get("bzip") != "mutated"


def test_solve_cache_can_be_shared_across_sessions(micro_repo):
    cache = SolveCache()
    one = ConcretizationSession(
        repo=micro_repo, solve_cache=cache, share_ground_cache=False
    )
    one.solve(["example"])
    two = ConcretizationSession(
        repo=micro_repo, solve_cache=cache, share_ground_cache=False
    )
    result = two.concretize("example")
    assert two.stats.solve_cache_hits == 1
    assert result.statistics["session"]["solve_cache"] == "hit"


def test_shared_ground_cache_across_sessions(micro_repo):
    clear_shared_bases()
    try:
        one = ConcretizationSession(repo=micro_repo)
        one.solve(["example"])
        assert one.stats.base_groundings == 1
        two = ConcretizationSession(repo=micro_repo)
        two.solve(["example+bzip"])
        # same repo/preset/spec-family: the second session forks the first's base
        assert two.stats.base_groundings == 0
        assert two.stats.base_cache_hits == 1
    finally:
        clear_shared_bases()


# ---------------------------------------------------------------------------
# Cache invalidation: content hashes
# ---------------------------------------------------------------------------


def _micro_like_repo(extra_zlib_version=None):
    """A fresh two-package repository, optionally with one more zlib version."""

    class Zlib(Package):
        if extra_zlib_version:
            version(extra_zlib_version)
        version("1.3")
        version("1.2.11")

    class Leaftool(Package):
        version("1.0")
        depends_on("zlib")

    return Repository(name="mutable", packages=(Zlib, Leaftool))


def test_content_hash_is_stable_for_equal_inputs():
    one = ConcretizationSession(repo=_micro_like_repo(), share_ground_cache=False)
    two = ConcretizationSession(repo=_micro_like_repo(), share_ground_cache=False)
    assert one.content_hash() == two.content_hash()


def test_new_package_version_changes_content_hash():
    old = ConcretizationSession(repo=_micro_like_repo(), share_ground_cache=False)
    new = ConcretizationSession(
        repo=_micro_like_repo(extra_zlib_version="1.4"), share_ground_cache=False
    )
    assert old.content_hash() != new.content_hash()


def test_repo_mutation_bypasses_stale_solve_cache():
    cache = SolveCache()
    old = ConcretizationSession(
        repo=_micro_like_repo(), solve_cache=cache, share_ground_cache=False
    )
    stale = old.concretize("leaftool")
    assert str(stale.specs["zlib"].versions) == "1.3"

    new = ConcretizationSession(
        repo=_micro_like_repo(extra_zlib_version="1.4"),
        solve_cache=cache,
        share_ground_cache=False,
    )
    fresh = new.concretize("leaftool")
    # the shared cache must not replay the stale 1.3 answer
    assert new.stats.solve_cache_misses == 1
    assert new.stats.solve_cache_hits == 0
    assert str(fresh.specs["zlib"].versions) == "1.4"


def test_switching_presets_changes_content_hash_and_bypasses_cache(micro_repo):
    cache = SolveCache()
    tweety = ConcretizationSession(
        repo=micro_repo,
        config=SolverConfig.preset("tweety"),
        solve_cache=cache,
        share_ground_cache=False,
    )
    frumpy = ConcretizationSession(
        repo=micro_repo,
        config=SolverConfig.preset("frumpy"),
        solve_cache=cache,
        share_ground_cache=False,
    )
    assert tweety.content_hash() != frumpy.content_hash()

    a = tweety.concretize("example")
    b = frumpy.concretize("example")
    assert frumpy.stats.solve_cache_hits == 0  # no cross-preset replay
    # both presets must still find the same optimum
    assert signature(a) == signature(b)


def test_store_contents_change_solve_keys(micro_repo):
    store = Database()
    session = ConcretizationSession(
        repo=micro_repo, store=store, reuse=True, share_ground_cache=False
    )
    spec = session._as_specs(["example"])[0]
    key_before = session._solve_key(spec)
    store.install(Concretizer(repo=micro_repo).concretize("example").spec)
    assert session._solve_key(spec) != key_before
