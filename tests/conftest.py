"""Shared fixtures: a micro package repository and cached concretizers.

Most concretizer tests run against ``micro_repo``, a hand-built repository
small enough that every solve finishes in well under a second.  It mirrors the
paper's running examples:

* ``example`` is the Figure 2 package (versions 1.0.0/1.1.0, a ``bzip``
  variant, conditional dependencies on bzip2/zlib, a virtual ``mpi``
  dependency, and conflicts);
* ``mpich`` / ``openmpi`` provide the ``mpi`` virtual;
* ``minitool`` reproduces the hpctoolkit conditional-dependency shape;
* ``miniblas`` / ``reflapack`` provide ``blas``/``lapack`` for provider tests.

Integration tests that need the full builtin catalog use the session-scoped
``builtin_repo`` fixture instead.
"""

from __future__ import annotations

import pytest

from repro.spack.compilers import CompilerRegistry
from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import Package
from repro.spack.repo import Repository, builtin_repository


# ---------------------------------------------------------------------------
# Micro repository packages
# ---------------------------------------------------------------------------


class Example(Package):
    """The paper's Figure 2 example package."""

    version("1.1.0")
    version("1.0.0")
    version("0.9.0", deprecated=True)

    variant("bzip", default=True, description="enable bzip")

    depends_on("bzip2@1.0.7:", when="+bzip")
    depends_on("zlib")
    depends_on("zlib@1.2.8:", when="@1.1.0:")
    depends_on("mpi")

    conflicts("%intel")
    conflicts("target=aarch64:")


class Zlib(Package):
    version("1.3")
    version("1.2.11")
    version("1.2.8")
    version("1.2.3")
    variant("pic", default=True, description="position independent code")


class Bzip2(Package):
    version("1.0.8")
    version("1.0.7")
    version("1.0.6")
    variant("shared", default=True, description="shared libraries")


class Mpich(Package):
    version("4.0")
    version("3.1")
    provides("mpi")
    depends_on("zlib")


class Openmpi(Package):
    version("4.1.0")
    version("3.1.6")
    provides("mpi")
    depends_on("zlib")
    depends_on("hwloc")


class Hwloc(Package):
    version("2.8.0")
    version("2.7.1")


class Minitool(Package):
    """The hpctoolkit shape: a conditional dependency on a virtual."""

    version("2023.1")
    version("2022.1")
    variant("mpi", default=False, description="enable MPI support")
    depends_on("mpi", when="+mpi")
    depends_on("zlib")


class Miniblas(Package):
    """An openblas-like provider with a threads variant."""

    version("0.3.23")
    version("0.3.20")
    provides("blas")
    provides("lapack", when="@0.3.21:")
    variant(
        "threads",
        default="none",
        values=("none", "openmp", "pthreads"),
        description="threading model",
    )


class Reflapack(Package):
    """A netlib-like reference provider."""

    version("3.11.0")
    provides("blas")
    provides("lapack")


class Miniapp(Package):
    """A berkeleygw-like consumer with provider specialization."""

    version("3.0")
    version("2.1")
    variant("openmp", default=True, description="OpenMP support")
    depends_on("lapack")
    depends_on("miniblas threads=openmp", when="+openmp ^miniblas")
    depends_on("mpi")


class Oldcode(Package):
    """A package whose newest version carries extra restrictions, so the solver
    must be able to backtrack to an older version."""

    version("2.0")
    version("1.0")
    depends_on("zlib")
    depends_on("zlib@:1.2.8", when="@2.0")
    conflicts("%clang", when="@2.0")


MICRO_PACKAGES = (
    Example,
    Zlib,
    Bzip2,
    Mpich,
    Openmpi,
    Hwloc,
    Minitool,
    Miniblas,
    Reflapack,
    Miniapp,
    Oldcode,
)


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def micro_repo() -> Repository:
    repo = Repository(name="micro", packages=MICRO_PACKAGES)
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


@pytest.fixture(scope="session")
def builtin_repo() -> Repository:
    return builtin_repository()


@pytest.fixture(scope="session")
def compiler_registry() -> CompilerRegistry:
    return CompilerRegistry()


@pytest.fixture(scope="session")
def micro_concretizer(micro_repo):
    from repro.spack.concretize import Concretizer

    return Concretizer(repo=micro_repo)


@pytest.fixture(scope="session")
def example_result(micro_concretizer):
    """Cached concretization of the Figure 2 example package."""
    return micro_concretizer.concretize("example")


@pytest.fixture(scope="session")
def builtin_concretizer(builtin_repo):
    from repro.spack.concretize import Concretizer

    return Concretizer(repo=builtin_repo)


@pytest.fixture(scope="session")
def hdf5_result(builtin_concretizer):
    """Cached concretization of hdf5 against the builtin repo (used by several
    integration tests so the ~10 s solve happens only once per session)."""
    return builtin_concretizer.concretize("hdf5")
