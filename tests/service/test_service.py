"""Concretization-as-a-service: deadlines, backpressure, tenants, transport.

The contract under test (ISSUE 6 tentpole):

* ``POST /v1/concretize`` / ``/v1/concretize_batch`` solve through the
  per-tenant async session; batch results come back in input order, the
  streamed variant in completion order as NDJSON;
* a request's deadline is enforced through async-session cancellation: the
  response is 504, the leased workers come back immediately (asserted on
  the semaphore), nothing leaks;
* once ``max_concurrency + queue_limit`` requests are in flight, the next
  one is shed with 429 + ``Retry-After`` instead of queueing;
* per-tenant catalogs compose overlay shards over the shared base: a
  tenant sees its private packages, other tenants get 422 for them, and
  the base family stays shared;
* parse errors map to 400, unknown tenants to 404, unsolvable specs to
  422 — a malformed request never kills a worker thread;
* every error body — HTTP responses and streamed terminal records alike —
  uses the one envelope ``{"status": ..., "error": {"code", "message",
  "detail"}}`` (ISSUE 9), and the service accepts a ``SessionConfig``
  instead of loose session kwargs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.spack.concretize.config import SessionConfig
from repro.spack.concretize.session import ConcretizationSession, clear_shared_bases
from repro.spack.directives import depends_on, version
from repro.spack.package import Package
from repro.spack.service import (
    BadRequestError,
    ConcretizationServer,
    ConcretizationService,
    DeadlineExceededError,
    OverloadedError,
    UnknownTenantError,
    UnsolvableError,
)


class TenantTool(Package):
    """A tenant-private package over the shared base catalog."""

    name = "tenant-tool"
    version("1.0")
    depends_on("zlib")


@pytest.fixture()
def service(micro_repo):
    clear_shared_bases()
    with ConcretizationService(
        base_repo=micro_repo,
        max_concurrency=2,
        queue_limit=1,
        default_deadline_s=60.0,
        retry_after_s=0.25,
        session_config=SessionConfig(share_ground_cache=False),
    ) as svc:
        yield svc


def http_json(url, payload=None, headers=None):
    """One request; returns (status, parsed body, response headers)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, headers=headers or {})
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}, dict(error.headers)


# ---------------------------------------------------------------------------
# Core solving (in-process, no sockets)
# ---------------------------------------------------------------------------


def test_concretize_single_spec(service):
    payload = service.concretize("example@1.0.0")
    assert payload["spec"] == "example@1.0.0"
    assert payload["concrete"].startswith("example @1.0.0")
    assert payload["nodes"] >= 3  # example + zlib + an mpi provider
    assert payload["dag_hash"]


def test_batch_preserves_input_order(service):
    out = service.concretize_batch(["example@1.1.0", "example@1.0.0", "example@1.1.0"])
    versions = [r["concrete"].split("@")[1].split(" ")[0].split("%")[0]
                for r in out["results"]]
    assert [r["index"] for r in out["results"]] == [0, 1, 2]
    assert versions[0] == versions[2] == "1.1.0"
    assert versions[1] == "1.0.0"


def test_stream_batch_completion_order_and_summary(service):
    records = list(service.stream_batch(["example@1.0.0", "example@1.1.0"]))
    assert records[-1] == {"status": "ok", "results": 2}
    indices = sorted(r["index"] for r in records[:-1])
    assert indices == [0, 1]


def test_parse_errors_are_bad_requests(service):
    for bad in ["", "   ", "example+bzip+bzip", "example@1.0::2", None, 7]:
        with pytest.raises(BadRequestError):
            service.concretize_batch([bad])
    with pytest.raises(BadRequestError):
        service.concretize_batch([])
    with pytest.raises(BadRequestError):
        service.concretize("example", deadline_s=-1)
    with pytest.raises(BadRequestError):
        service.concretize("example", deadline_s="soon")


def test_unsolvable_spec_maps_to_422_class(service):
    with pytest.raises(UnsolvableError):
        service.concretize("example %intel")  # conflicts()
    with pytest.raises(UnsolvableError):
        service.concretize("no-such-package")
    # the worker thread survived: the next request is fine
    assert service.concretize("example")["concrete"]


def test_unknown_tenant_is_404_class(service):
    with pytest.raises(UnknownTenantError):
        service.concretize("example", tenant="nobody")


def test_unsolvable_payload_carries_the_conflict_core(service):
    """An unsatisfiable spec's 422 payload names the minimal conflict core
    as structured provenance, not just prose."""
    with pytest.raises(UnsolvableError) as excinfo:
        service.concretize("example %intel")
    payload = excinfo.value.payload()
    assert payload["status"] == 422
    assert payload["error"]["code"] == "unsolvable"
    detail = payload["error"]["detail"]
    assert detail["specs"] == ["example %intel"]
    core = detail["conflict_core"]
    assert [entry["constraint"] for entry in core] == [
        'example: conflicts("%intel")',
        'example: requested spec "example %intel"',
    ]
    assert core[0] == {
        "package": "example",
        "kind": "conflict",
        "directive": 'conflicts("%intel")',
        "when": "",
        "constraint": 'example: conflicts("%intel")',
    }
    # an *unknown package* is unsolvable too, but has no core to report
    with pytest.raises(UnsolvableError) as excinfo:
        service.concretize("no-such-package")
    assert excinfo.value.payload()["error"]["detail"]["conflict_core"] == []


def test_streamed_batch_error_record_carries_the_conflict_core(service):
    """A stream that ends on an unsatisfiable spec still delivers the
    satisfiable results, then a terminal error record with the core."""
    records = list(
        service.stream_batch(["example@1.0.0", "example %intel"])
    )
    assert records[-1]["status"] == 422
    assert records[-1]["error"]["code"] == "unsolvable"
    core = records[-1]["error"]["detail"]["conflict_core"]
    assert [e["constraint"] for e in core] == [
        'example: conflicts("%intel")',
        'example: requested spec "example %intel"',
    ]
    ok = [r for r in records[:-1] if "index" in r]
    assert [r["index"] for r in ok] == [0]
    assert ok[0]["concrete"].startswith("example @1.0.0")


# ---------------------------------------------------------------------------
# Deadlines (504 + cancellation, not leakage)
# ---------------------------------------------------------------------------


def test_deadline_exceeded_cancels_and_releases_workers(service, monkeypatch):
    original = ConcretizationSession._solve_uncached
    slow = [True]

    def maybe_slow(self, spec, worker=False):
        if slow[0]:
            time.sleep(1.0)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", maybe_slow)

    with pytest.raises(DeadlineExceededError):
        service.concretize_batch(
            ["example@1.0.0", "example@1.1.0", "example+bzip"], deadline_s=0.2
        )
    # the solve was cancelled, not leaked: every semaphore permit is back
    state = service._tenant(None)
    assert state.async_session._semaphore._value == service.max_concurrency
    assert service.counters["deadline_exceeded"] == 1
    assert service.counters["in_flight"] == 0
    # and the session still answers at full speed afterwards
    slow[0] = False
    assert service.concretize("example@1.0.0", deadline_s=30)["concrete"]


def test_mid_stream_deadline_ends_stream_with_504_record(service, monkeypatch):
    original = ConcretizationSession._solve_uncached

    def slow(self, spec, worker=False):
        time.sleep(1.0)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", slow)
    records = list(
        service.stream_batch(["example@1.0.0", "example@1.1.0"], deadline_s=0.2)
    )
    assert records[-1]["status"] == 504
    state = service._tenant(None)
    assert state.async_session._semaphore._value == service.max_concurrency
    assert service.counters["in_flight"] == 0


# ---------------------------------------------------------------------------
# Backpressure (429 + Retry-After once the admission queue is full)
# ---------------------------------------------------------------------------


def test_saturation_sheds_load_with_429(service, monkeypatch):
    """max_concurrency=2, queue_limit=1: with 3 slow requests admitted, the
    4th is rejected immediately — it never waits on the solver at all."""
    original = ConcretizationSession._solve_uncached
    release = threading.Event()

    def blocked(self, spec, worker=False):
        release.wait(timeout=30)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", blocked)

    outcomes = []

    def request(spec):
        try:
            outcomes.append(("ok", service.concretize(spec, deadline_s=60)))
        except Exception as exc:
            outcomes.append(("error", exc))

    threads = [
        threading.Thread(target=request, args=(f"example@1.{i}.0",), daemon=True)
        for i in (0, 1)
    ] + [threading.Thread(target=request, args=("example+bzip",), daemon=True)]
    for thread in threads:
        thread.start()
    deadline = time.time() + 10
    while service.counters["in_flight"] < 3 and time.time() < deadline:
        time.sleep(0.01)
    assert service.counters["in_flight"] == 3  # 2 solving + 1 queued

    with pytest.raises(OverloadedError) as excinfo:
        service.concretize("example~bzip")
    assert excinfo.value.retry_after_s == pytest.approx(0.25)
    assert service.counters["rejected_overload"] == 1

    release.set()
    for thread in threads:
        thread.join(timeout=30)
    assert all(kind == "ok" for kind, _ in outcomes)  # admitted work completed
    assert service.counters["in_flight"] == 0
    # capacity freed: new requests are admitted again
    assert service.concretize("example~bzip")["concrete"]


# ---------------------------------------------------------------------------
# Per-tenant catalogs
# ---------------------------------------------------------------------------


def test_tenants_compose_overlays_over_the_shared_base(service):
    service.add_tenant("acme", packages=[TenantTool])

    mine = service.concretize("tenant-tool", tenant="acme")
    assert mine["concrete"].startswith("tenant-tool @1.0")
    # the overlay still resolves base packages (zlib came from the base)
    assert any("zlib" in node for node in [mine["concrete"]])

    # other tenants cannot see acme's package
    with pytest.raises(UnsolvableError):
        service.concretize("tenant-tool")

    # the composed catalog layers the overlay last: base shards first
    state = service._tenant("acme")
    shard_names = [shard.name for shard in state.repo.shards]
    assert shard_names[-1] == "acme/acme-overlay"

    stats = service.statistics()
    assert set(stats["tenants"]) == {"default", "acme"}
    assert stats["tenants"]["acme"]["requests"] == 1
    assert stats["tenants"]["default"]["requests"] == 1  # the failed probe


def test_duplicate_tenant_is_rejected(service):
    service.add_tenant("acme", packages=[TenantTool])
    with pytest.raises(ValueError):
        service.add_tenant("acme")


# ---------------------------------------------------------------------------
# HTTP transport (real sockets, loopback)
# ---------------------------------------------------------------------------


@pytest.fixture()
def server(service):
    with ConcretizationServer(service, port=0) as srv:
        yield srv


def test_http_healthz_and_stats(server):
    status, body, _ = http_json(f"{server.url}/v1/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert "default" in body["tenants"]

    status, body, _ = http_json(f"{server.url}/v1/stats")
    assert status == 200
    assert body["service"]["max_concurrency"] == 2
    assert "default" in body["tenants"]
    # snapshot-attach vs cold-ground rollup is always present
    assert set(body["service"]["snapshot"]) == {"attaches", "writes", "cold_grounds"}


def test_http_concretize_and_errors(server):
    status, body, _ = http_json(
        f"{server.url}/v1/concretize", {"spec": "example@1.0.0"}
    )
    assert status == 200
    assert body["result"]["concrete"].startswith("example @1.0.0")

    status, body, _ = http_json(f"{server.url}/v1/concretize", {"spec": "++"})
    assert status == 400
    assert body["error"]["code"] == "bad_request"
    status, body, _ = http_json(
        f"{server.url}/v1/concretize", {"spec": "example", "tenant": "nobody"}
    )
    assert status == 404
    assert body["error"]["code"] == "unknown_tenant"
    assert body["error"]["detail"]["tenant"] == "nobody"
    status, body, _ = http_json(
        f"{server.url}/v1/concretize", {"spec": "example %intel"}
    )
    assert status == 422
    assert body["error"]["code"] == "unsolvable"
    detail = body["error"]["detail"]
    assert [e["constraint"] for e in detail["conflict_core"]] == [
        'example: conflicts("%intel")',
        'example: requested spec "example %intel"',
    ]
    assert detail["specs"] == ["example %intel"]
    status, body, _ = http_json(f"{server.url}/v1/concretize", {"wrong": 1})
    assert status == 400
    assert body["error"]["code"] == "bad_request"
    status, body, _ = http_json(f"{server.url}/v1/nothing", {"spec": "example"})
    assert status == 404
    assert body["error"]["code"] == "not_found"
    assert body["error"]["detail"]["path"] == "/v1/nothing"


def test_http_batch_and_header_options(server):
    status, body, _ = http_json(
        f"{server.url}/v1/concretize_batch",
        {"specs": ["example@1.0.0", "example@1.1.0"]},
        headers={"X-Deadline-Seconds": "60"},
    )
    assert status == 200
    assert [r["index"] for r in body["results"]] == [0, 1]
    assert body["deadline_s"] == 60.0


def test_http_deadline_maps_to_504(server, service, monkeypatch):
    original = ConcretizationSession._solve_uncached

    def slow(self, spec, worker=False):
        time.sleep(1.0)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", slow)
    status, body, _ = http_json(
        f"{server.url}/v1/concretize",
        {"spec": "example@1.0.0", "deadline_s": 0.2},
    )
    assert status == 504
    assert body["error"]["code"] == "deadline_exceeded"
    assert "deadline" in body["error"]["message"]
    assert body["error"]["detail"]["deadline_s"] == pytest.approx(0.2)
    state = service._tenant(None)
    assert state.async_session._semaphore._value == service.max_concurrency


def test_http_429_carries_retry_after(server, service, monkeypatch):
    original = ConcretizationSession._solve_uncached
    release = threading.Event()

    def blocked(self, spec, worker=False):
        release.wait(timeout=30)
        return original(self, spec, worker=worker)

    monkeypatch.setattr(ConcretizationSession, "_solve_uncached", blocked)
    results = []

    def request(spec):
        results.append(http_json(f"{server.url}/v1/concretize", {"spec": spec}))

    threads = [
        threading.Thread(target=request, args=(s,), daemon=True)
        for s in ("example@1.0.0", "example@1.1.0", "example+bzip")
    ]
    for thread in threads:
        thread.start()
    deadline = time.time() + 10
    while service.counters["in_flight"] < 3 and time.time() < deadline:
        time.sleep(0.01)

    status, body, headers = http_json(
        f"{server.url}/v1/concretize", {"spec": "example~bzip"}
    )
    assert status == 429
    assert headers.get("Retry-After") == "0.25"
    assert body["error"]["code"] == "overloaded"
    assert body["error"]["detail"]["retry_after_s"] == pytest.approx(0.25)

    release.set()
    for thread in threads:
        thread.join(timeout=30)
    assert sorted(status for status, _, _ in results) == [200, 200, 200]


def test_http_streamed_batch_ndjson(server):
    request = urllib.request.Request(
        f"{server.url}/v1/concretize_batch",
        data=json.dumps(
            {"specs": ["example@1.0.0", "example@1.1.0"], "stream": True}
        ).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        records = [json.loads(line) for line in response if line.strip()]
    assert records[-1] == {"status": "ok", "results": 2}
    assert sorted(r["index"] for r in records[:-1]) == [0, 1]


def test_http_streamed_unsat_ndjson_carries_conflict_core(server):
    request = urllib.request.Request(
        f"{server.url}/v1/concretize_batch",
        data=json.dumps(
            {"specs": ["example@1.0.0", "example %intel"], "stream": True}
        ).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        records = [json.loads(line) for line in response if line.strip()]
    assert records[-1]["status"] == 422
    assert records[-1]["error"]["code"] == "unsolvable"
    core = records[-1]["error"]["detail"]["conflict_core"]
    assert [e["constraint"] for e in core] == [
        'example: conflicts("%intel")',
        'example: requested spec "example %intel"',
    ]
    delivered = [r for r in records[:-1] if "index" in r]
    assert [r["index"] for r in delivered] == [0]


def test_server_start_stop_is_clean(micro_repo):
    clear_shared_bases()
    service = ConcretizationService(
        base_repo=micro_repo, session_config=SessionConfig(share_ground_cache=False)
    )
    with service, ConcretizationServer(service, port=0) as server:
        status, body, _ = http_json(f"{server.url}/v1/healthz")
        assert status == 200
    # closed cleanly: the service reports stopped and rejects new work
    assert service.healthz()["status"] == "stopped"
    with pytest.raises(RuntimeError):
        service.concretize("example")


def test_session_kwargs_is_deprecated_but_folds_into_config(micro_repo):
    """The legacy ``session_kwargs`` dict still works — with a warning —
    and its config keys land in the service's ``SessionConfig``."""
    clear_shared_bases()
    with pytest.warns(DeprecationWarning, match="session_kwargs"):
        service = ConcretizationService(
            base_repo=micro_repo, session_kwargs={"share_ground_cache": False}
        )
    assert service.session_config.share_ground_cache is False
    # the service resolves the config's "auto" backend to threads: forking
    # a process pool out of a threaded server is a foot-gun
    assert service.session_config.worker_backend == "thread"
    service.close()
