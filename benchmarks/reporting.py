"""Helpers for recording benchmark series.

Every benchmark regenerates one table or figure of the paper.  Since the
interesting output is a *series* (e.g. solve time vs. number of possible
dependencies) rather than a single number, each harness writes its rows both
to stdout and to ``benchmarks/results/<name>.txt`` so the data survives the
pytest run and can be compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def record(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print and persist one result table; returns the formatted text."""
    text = format_table(title, header, list(rows))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as stream:
        stream.write(text + "\n")
    print("\n" + text)
    return text
