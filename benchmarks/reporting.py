"""Helpers for recording benchmark series, plus the benchmark-trend runner.

Every benchmark regenerates one table or figure of the paper.  Since the
interesting output is a *series* (e.g. solve time vs. number of possible
dependencies) rather than a single number, each harness writes its rows both
to stdout and to ``benchmarks/results/<name>.txt`` (human-readable) and
``benchmarks/results/<name>.json`` (machine-readable) so the data survives
the pytest run and can be compared against the paper (see EXPERIMENTS.md).

This module is also the **bench-trend** entry point CI uses to record the
repository's performance trajectory::

    PYTHONPATH=src python benchmarks/reporting.py --quick

runs every ``--quick``-capable session benchmark as a subprocess, times it,
collects the machine-readable tables it recorded, and writes one aggregate
trend file ``BENCH_<n>.json`` — ``n`` derived from the ``BENCH_TREND_NUMBER``
environment variable or the latest ``PR <n>`` line in ``CHANGES.md`` (see
:func:`trend_number`), never hardcoded — whose schema is stable across PRs
and which embeds a ``history`` summary of every *prior* ``BENCH_*.json``,
so the perf trajectory reads as a curve instead of an empty placeholder.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import re
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

BENCHMARKS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCHMARKS_DIR)
RESULTS_DIR = os.path.join(BENCHMARKS_DIR, "results")

#: The benchmarks the trend runner executes, in order.  Each must accept
#: ``--quick`` (the CI smoke mode) and record its tables through
#: :func:`record` so the trend file can pick them up.
QUICK_BENCHMARKS = (
    "bench_batch_session.py",
    "bench_parallel_session.py",
    "bench_sharded_repo.py",
    "bench_async_session.py",
    "bench_service.py",
    "bench_unsat.py",
    "bench_profile.py",
    "bench_snapshot.py",
)

#: Schema version of the aggregate trend file.  Bump on layout changes so
#: downstream tooling comparing BENCH_<n>.json files across PRs can tell.
TREND_SCHEMA = 2


def format_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _json_cell(cell):
    return cell if isinstance(cell, (int, float, bool, str)) or cell is None else str(cell)


def record(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print and persist one result table; returns the formatted text.

    Writes both renderings: ``results/<name>.txt`` for humans and
    ``results/<name>.json`` (``{"name", "title", "header", "rows"}``) for
    the trend runner and any downstream tooling.
    """
    rows = list(rows)
    text = format_table(title, header, rows)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as stream:
        stream.write(text + "\n")
    payload = {
        "name": name,
        "title": title,
        "header": list(header),
        "rows": [[_json_cell(cell) for cell in row] for row in rows],
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print("\n" + text)
    return text


# ---------------------------------------------------------------------------
# The bench-trend runner
# ---------------------------------------------------------------------------


def trend_number() -> int:
    """The PR number this trend run belongs to — *derived*, never hardcoded.

    Resolution order:

    1. the ``BENCH_TREND_NUMBER`` environment variable (CI sets it from the
       PR/issue number);
    2. the highest ``PR <n>`` recorded in ``CHANGES.md`` (every merged PR
       appends one line there, so a local run after updating CHANGES.md
       reproduces exactly the file CI will emit);
    3. 1, when neither exists (a fresh checkout before any PR landed).
    """
    override = os.environ.get("BENCH_TREND_NUMBER")
    if override:
        try:
            return int(override)
        except ValueError:
            print(
                f"[bench-trend] ignoring non-integer BENCH_TREND_NUMBER={override!r}",
                file=sys.stderr,
            )
    changes = os.path.join(REPO_ROOT, "CHANGES.md")
    numbers = []
    try:
        with open(changes) as stream:
            for line in stream:
                match = re.match(r"^PR (\d+)\b", line.strip())
                if match:
                    numbers.append(int(match.group(1)))
    except OSError:
        pass
    return max(numbers) if numbers else 1


def default_trend_path() -> str:
    """``<repo>/BENCH_<n>.json`` for the current :func:`trend_number`."""
    return os.path.join(REPO_ROOT, f"BENCH_{trend_number()}.json")


def collect_history() -> List[Dict]:
    """Summaries of every prior ``BENCH_*.json``, oldest first.

    This is what turns a pile of per-PR artifacts into a *trajectory*:
    each entry carries the PR number, benchmark count/status, and total
    quick-sweep wall time, so the current trend file shows the whole curve.
    Missing, empty, or corrupt prior files are tolerated (recorded as
    ``"unreadable"`` entries rather than aborting or — worse — silently
    yielding an empty history).
    """
    history: List[Dict] = []
    for path in sorted(
        glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")),
        key=lambda p: _bench_number(p),
    ):
        number = _bench_number(path)
        if number is None:
            continue
        entry: Dict = {"pr": number, "file": os.path.basename(path)}
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            entry["status"] = "unreadable"
            history.append(entry)
            continue
        if not isinstance(payload, dict) or not payload.get("benchmarks"):
            entry["status"] = "empty"
            history.append(entry)
            continue
        benchmarks = payload["benchmarks"]
        entry["status"] = (
            "ok" if all(b.get("status") == "ok" for b in benchmarks) else "fail"
        )
        entry["benchmarks"] = len(benchmarks)
        entry["total_wall_time_s"] = round(
            sum(b.get("wall_time_s", 0) for b in benchmarks), 3
        )
        entry["generated_utc"] = payload.get("generated_utc")
        history.append(entry)
    return history


def _bench_number(path: str) -> Optional[int]:
    match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
    return int(match.group(1)) if match else None


# ---------------------------------------------------------------------------
# Per-metric deltas + the regression gate
# ---------------------------------------------------------------------------

#: Default relative noise band for the wall-time regression gate.  Shared CI
#: runners jitter; a slowdown must exceed the band to count as a regression.
#: Override with the ``BENCH_NOISE_BAND`` environment variable (e.g. ``0.2``
#: on quiet dedicated hardware).
DEFAULT_NOISE_BAND = 0.5

#: Wall-time metrics faster than this (seconds) are exempt from the gate:
#: at sub-50ms scales the relative band measures scheduler jitter, not code.
MIN_GATED_SECONDS = 0.05


def noise_band() -> float:
    """The configured relative noise band (fraction, not percent)."""
    raw = os.environ.get("BENCH_NOISE_BAND")
    if raw:
        try:
            value = float(raw)
            if value >= 0:
                return value
        except ValueError:
            pass
        print(
            f"[bench-trend] ignoring invalid BENCH_NOISE_BAND={raw!r}",
            file=sys.stderr,
        )
    return DEFAULT_NOISE_BAND


def _parse_metric(value) -> Optional[float]:
    """A float out of a recorded table cell (``"1.234"``, ``"2.5x"``, 7)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, str):
        return None
    text = value.strip().rstrip("x")
    try:
        return float(text)
    except ValueError:
        return None


def previous_trend(current_number: int) -> Optional[Dict]:
    """The payload of the newest ``BENCH_<m>.json`` with ``m < n``, if any."""
    best: Optional[tuple] = None
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
        number = _bench_number(path)
        if number is None or number >= current_number:
            continue
        if best is None or number > best[0]:
            best = (number, path)
    if best is None:
        return None
    try:
        with open(best[1]) as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return None
    if isinstance(payload, dict):
        payload.setdefault("pr", best[0])
        return payload
    return None


def compute_deltas(
    current_tables: Dict[str, Dict], prior_tables: Dict[str, Dict]
) -> Dict[str, Dict]:
    """Per-metric deltas vs the prior trend file's tables.

    Only numeric metrics present in both runs are compared.  A table whose
    *title* changed between runs is skipped entirely (and marked
    ``workload_changed``): benchmarks encode their workload in the title, so
    a title change means the numbers measure different work and a delta
    would be noise dressed up as signal.
    """
    deltas: Dict[str, Dict] = {}
    for name, table in sorted(current_tables.items()):
        prior = prior_tables.get(name)
        if not isinstance(prior, dict):
            continue
        if prior.get("title") != table.get("title"):
            deltas[name] = {"workload_changed": True}
            continue
        prior_rows = {
            row[0]: row[1]
            for row in prior.get("rows", ())
            if isinstance(row, (list, tuple)) and len(row) >= 2
        }
        metrics: Dict[str, Dict] = {}
        for row in table.get("rows", ()):
            if not isinstance(row, (list, tuple)) or len(row) < 2:
                continue
            metric = row[0]
            current = _parse_metric(row[1])
            prior_value = _parse_metric(prior_rows.get(metric))
            if current is None or prior_value is None:
                continue
            entry: Dict[str, object] = {
                "previous": prior_value,
                "current": current,
            }
            if prior_value:
                entry["delta_pct"] = round(
                    (current - prior_value) / prior_value * 100.0, 1
                )
            metrics[metric] = entry
        if metrics:
            deltas[name] = metrics
    return deltas


def check_regressions(trend: Dict, band: Optional[float] = None) -> List[str]:
    """Wall-time regressions beyond the noise band, as failure strings.

    Gated metrics are the ones benchmarks label with an ``[s]`` suffix —
    wall times by convention.  A metric regresses when
    ``current > previous * (1 + band)`` and the previous value is at least
    :data:`MIN_GATED_SECONDS` (sub-jitter timings are informational only).
    Missing prior data is never a failure: the first run after a workload
    change has nothing comparable to regress against.
    """
    if band is None:
        band = noise_band()
    failures: List[str] = []
    for table_name, metrics in sorted((trend.get("deltas") or {}).items()):
        if not isinstance(metrics, dict) or metrics.get("workload_changed"):
            continue
        for metric, entry in sorted(metrics.items()):
            if not isinstance(entry, dict) or not metric.endswith("[s]"):
                continue
            previous = entry.get("previous")
            current = entry.get("current")
            if not isinstance(previous, (int, float)) or not isinstance(
                current, (int, float)
            ):
                continue
            if previous < MIN_GATED_SECONDS:
                continue
            if current > previous * (1.0 + band):
                failures.append(
                    f"{table_name}: {metric} regressed "
                    f"{previous:.3f}s -> {current:.3f}s "
                    f"(+{(current - previous) / previous * 100.0:.0f}%, "
                    f"band {band * 100.0:.0f}%)"
                )
    return failures


def run_quick_benchmarks(scripts: Sequence[str] = QUICK_BENCHMARKS) -> List[Dict]:
    """Run every quick benchmark as a subprocess; one status entry each.

    A failing benchmark does not abort the sweep — its non-zero exit code is
    recorded (and surfaced through :func:`main`'s exit status) so the trend
    file always reflects the full picture.
    """
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    entries = []
    for script in scripts:
        path = os.path.join(BENCHMARKS_DIR, script)
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, path, "--quick"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        entry = {
            "benchmark": script,
            "status": "ok" if proc.returncode == 0 else "fail",
            "returncode": proc.returncode,
            "wall_time_s": round(elapsed, 3),
        }
        if proc.returncode != 0:
            entry["stderr_tail"] = proc.stderr.strip().splitlines()[-5:]
        entries.append(entry)
        print(f"[bench-trend] {script}: {entry['status']} in {elapsed:.1f}s")
    return entries


def collect_tables(since: Optional[float] = None) -> Dict[str, Dict]:
    """Machine-readable tables under ``results/``.

    With ``since`` (a ``time.time()`` stamp), only tables written at or
    after it are collected — the trend runner passes its sweep start so a
    locally regenerated trend file can never pick up stale tables from
    earlier, unrelated benchmark runs and diverge from CI's fresh-checkout
    artifact.
    """
    tables: Dict[str, Dict] = {}
    if not os.path.isdir(RESULTS_DIR):
        return tables
    for filename in sorted(os.listdir(RESULTS_DIR)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(RESULTS_DIR, filename)
        try:
            if since is not None and os.stat(path).st_mtime < since:
                continue
            with open(path) as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and "rows" in payload:
            tables[payload.get("name", filename[:-5])] = payload
    return tables


def write_trend(output: str, entries: List[Dict], since: Optional[float] = None) -> Dict:
    """Aggregate run entries + recorded tables + prior history into one
    trend file.  The output file itself is excluded from the history, so
    re-running the sweep is idempotent (the current run never summarizes a
    stale copy of itself)."""
    history = [
        entry
        for entry in collect_history()
        if entry.get("file") != os.path.basename(output)
    ]
    number = trend_number()
    tables = collect_tables(since=since)
    prior = previous_trend(number)
    deltas = compute_deltas(tables, (prior or {}).get("tables") or {})
    trend = {
        "schema": TREND_SCHEMA,
        "source": "benchmarks/reporting.py --quick",
        "pr": number,
        "previous_pr": prior.get("pr") if prior else None,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": entries,
        "tables": tables,
        "deltas": deltas,
        "history": history,
    }
    with open(output, "w") as stream:
        json.dump(trend, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return trend


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run every quick session benchmark and aggregate the trend file",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="path of the aggregate trend file (default: BENCH_<n>.json "
        "where n comes from BENCH_TREND_NUMBER or CHANGES.md; see "
        "trend_number)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="after the sweep (or standalone against an existing trend "
        "file), fail on wall-time regressions vs the previous BENCH_*.json "
        "beyond the noise band (BENCH_NOISE_BAND, default "
        f"{DEFAULT_NOISE_BAND})",
    )
    args = parser.parse_args(argv)
    if not args.quick and not args.check:
        parser.error("nothing to do: pass --quick and/or --check")
    output = args.output or default_trend_path()

    failures: List[str] = []
    if args.quick:
        sweep_start = time.time()
        entries = run_quick_benchmarks()
        trend = write_trend(output, entries, since=sweep_start)
        failed = [e for e in entries if e["status"] != "ok"]
        failures += [f"{e['benchmark']} exited {e['returncode']}" for e in failed]
        print(
            f"[bench-trend] wrote {output}: {len(entries) - len(failed)}/"
            f"{len(entries)} benchmarks ok"
        )
    else:
        try:
            with open(output) as stream:
                trend = json.load(stream)
        except (OSError, ValueError) as error:
            print(f"[bench-trend] cannot read {output}: {error}", file=sys.stderr)
            return 1

    if args.check:
        regressions = check_regressions(trend)
        for regression in regressions:
            print(f"[bench-trend] REGRESSION: {regression}", file=sys.stderr)
        if not regressions:
            compared = sum(
                len(m)
                for m in (trend.get("deltas") or {}).values()
                if isinstance(m, dict) and not m.get("workload_changed")
            )
            print(
                f"[bench-trend] regression check ok "
                f"({compared} metrics compared, band {noise_band() * 100:.0f}%)"
            )
        failures += regressions
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
