"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.spack.compilers import CompilerRegistry
from repro.spack.repo import builtin_repository


#: Packages spanning the possible-dependency range of the builtin repository,
#: from leaves to MPI-reaching packages (the x-axis of Figures 7a-7c).
PACKAGE_SAMPLE = (
    "zlib",
    "bzip2",
    "readline",
    "openssl",
    "pkgconf",
    "libxml2",
    "zfp",
    "hwloc",
    "sz",
    "c-blosc",
    "hdf5",
)

#: Smaller sample for the preset / old-vs-new comparisons (kept small because
#: every entry is solved several times).
SMALL_SAMPLE = ("zlib", "openssl", "hwloc", "sz", "hdf5")


@pytest.fixture(scope="session")
def repo():
    return builtin_repository()


@pytest.fixture(scope="session")
def compilers():
    return CompilerRegistry()
