"""Pytest fixtures for the benchmark harness.

The data the benchmarks share — package samples, the micro catalog, the
result ``signature`` — lives in :mod:`benchmarks.workloads`; this module
only holds the pytest fixture adapters.  (The workloads module itself still
reaches into ``tests/conftest.py`` for the micro package classes, so pytest
must be installed wherever benchmarks run — CI's bench jobs install it.)
"""

from __future__ import annotations

import pytest

from repro.spack.compilers import CompilerRegistry
from repro.spack.repo import builtin_repository


@pytest.fixture(scope="session")
def repo():
    return builtin_repository()


@pytest.fixture(scope="session")
def compilers():
    return CompilerRegistry()
