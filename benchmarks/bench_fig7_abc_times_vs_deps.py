"""Figures 7a-7c: ground / solve / total time vs. number of possible dependencies.

Paper observation: times grow with the number of *possible* dependencies (not
the dependencies in the answer), and packages cluster into a low group (cannot
reach MPI) and a high group (can reach MPI).
"""

import pytest

from benchmarks.workloads import PACKAGE_SAMPLE
from benchmarks.reporting import record
from repro.spack.concretize import Concretizer


@pytest.fixture(scope="module")
def series(repo):
    rows = []
    for name in PACKAGE_SAMPLE:
        concretizer = Concretizer(repo=repo)
        result = concretizer.concretize(name)
        rows.append(
            {
                "package": name,
                "possible_deps": result.statistics["encoding"]["possible_dependencies"],
                "ground": result.timings["ground"],
                "solve": result.timings["solve"],
                "total": result.timings["total"],
            }
        )
    rows.sort(key=lambda r: r["possible_deps"])
    record(
        "fig7abc_times_vs_possible_dependencies",
        "Figure 7a-7c: times vs. possible dependencies",
        ["package", "possible deps", "ground [s]", "solve [s]", "total [s]"],
        [
            (r["package"], r["possible_deps"], f"{r['ground']:.2f}", f"{r['solve']:.2f}", f"{r['total']:.2f}")
            for r in rows
        ],
    )
    return rows


def test_fig7a_ground_time_grows_with_possible_dependencies(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = [r for r in series if r["possible_deps"] < 10]
    large = [r for r in series if r["possible_deps"] > 40]
    assert small and large
    avg = lambda rows, key: sum(r[key] for r in rows) / len(rows)  # noqa: E731
    assert avg(large, "ground") > avg(small, "ground")


def test_fig7b_solve_time_grows_with_possible_dependencies(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = [r for r in series if r["possible_deps"] < 10]
    large = [r for r in series if r["possible_deps"] > 40]
    avg = lambda rows, key: sum(r[key] for r in rows) / len(rows)  # noqa: E731
    assert avg(large, "solve") > avg(small, "solve")


def test_fig7c_two_clusters_in_possible_dependencies(series, benchmark, repo):
    """The gap between packages that can reach MPI and those that cannot."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    counts = sorted(repo.possible_dependency_count(name) for name in repo)
    low_cluster = [c for c in counts if c < 20]
    high_cluster = [c for c in counts if c > 40]
    middle = [c for c in counts if 20 <= c <= 40]
    assert len(low_cluster) > 30
    assert len(high_cluster) > 30
    # the gap: far fewer packages live between the clusters than inside them
    assert len(middle) < min(len(low_cluster), len(high_cluster))


def test_fig7_benchmark_one_medium_solve(repo, benchmark):
    """A real pytest-benchmark measurement of one representative solve."""
    concretizer = Concretizer(repo=repo)
    benchmark.pedantic(lambda: concretizer.concretize("sz"), rounds=1, iterations=1)
