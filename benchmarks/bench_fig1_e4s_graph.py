"""Figure 1: the E4S dependency graph (core products vs. required dependencies).

Paper numbers: ~100 core software products (red) and ~500 required
dependencies (blue).  Our builtin catalog is a scaled-down model; the shape to
reproduce is "dependencies outnumber the products by several times" and the
graph is connected and DAG-shaped.
"""

import pytest

from benchmarks.reporting import record
from repro.spack.workloads import e4s_graph_statistics


@pytest.fixture(scope="module")
def graph_stats(repo):
    stats = e4s_graph_statistics(repo)
    record(
        "fig1_e4s_graph",
        "Figure 1: E4S-style dependency graph",
        ["quantity", "paper", "this repo"],
        [
            ("core products (roots)", 100, stats["num_roots"]),
            ("required dependencies", 500, stats["num_dependencies"]),
            ("total packages", 600, stats["num_packages"]),
            ("possible dependency edges", "-", stats["num_edges"]),
        ],
    )
    return stats


def test_fig1_dependencies_outnumber_roots(graph_stats, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert graph_stats["num_dependencies"] > 2 * graph_stats["num_roots"]


def test_fig1_graph_is_connected_to_roots(graph_stats, repo, benchmark):
    """Every dependency in the graph is reachable from at least one root."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reachable = repo.possible_dependencies(*graph_stats["roots"])
    assert graph_stats["num_packages"] == len(reachable)


def test_fig1_graph_statistics_benchmark(repo, benchmark):
    benchmark.pedantic(lambda: e4s_graph_statistics(repo), rounds=1, iterations=1)
