"""Figure 6: concretizing hdf5 with and without reuse optimization.

Paper numbers: with purely hash-based reuse every package misses and 20
installations must be built from source (6a); with the reuse encoding 16
installed packages are reused and only 4 are built (6b).

To reproduce the "all hashes miss" situation, the store is populated with an
hdf5 stack built with an older compiler (gcc 10.3.1) — exactly the kind of
small configuration drift that defeats exact-hash reuse but that the
reuse-aware solver happily absorbs.
"""

import pytest

from benchmarks.reporting import record
from repro.spack.concretize import Concretizer, OriginalConcretizer
from repro.spack.store import Database

REQUEST = "hdf5"


@pytest.fixture(scope="module")
def populated_store(repo):
    """A buildcache containing an hdf5 stack built with gcc 10.3.1."""
    database = Database()
    result = Concretizer(repo=repo).concretize("hdf5 %gcc@10.3.1")
    database.install(result.spec)
    return database


@pytest.fixture(scope="module")
def reuse_comparison(repo, populated_store):
    hash_based = OriginalConcretizer(repo=repo, store=populated_store).concretize(REQUEST)
    solver_based = Concretizer(repo=repo, store=populated_store, reuse=True).concretize(REQUEST)
    # a second, partially-matching request: one variant differs
    partial = Concretizer(repo=repo, store=populated_store, reuse=True).concretize("hdf5+hl")

    rows = [
        ("6a hash-based reuse", len(hash_based.specs), hash_based.number_reused,
         hash_based.number_of_builds),
        ("6b solver reuse", len(solver_based.specs), solver_based.number_reused,
         solver_based.number_of_builds),
        ("6b solver reuse (hdf5+hl)", len(partial.specs), partial.number_reused,
         partial.number_of_builds),
        ("paper 6a (hash)", 20, 0, 20),
        ("paper 6b (reuse)", 20, 16, 4),
    ]
    record(
        "fig6_reuse",
        "Figure 6: hdf5 concretization with and without reuse",
        ["scenario", "packages", "reused", "to build"],
        rows,
    )
    return hash_based, solver_based, partial


def test_fig6a_hash_based_reuse_misses_everything(reuse_comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hash_based, _, _ = reuse_comparison
    assert hash_based.number_reused == 0
    assert hash_based.number_of_builds == len(hash_based.specs)


def test_fig6b_solver_reuse_reuses_most_packages(reuse_comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, solver_based, partial = reuse_comparison
    assert solver_based.number_reused >= 0.8 * len(solver_based.specs)
    # the partially-matching request rebuilds only the changed root
    assert "hdf5" in partial.built
    assert partial.number_reused >= 0.8 * len(partial.specs)


def test_fig6_reused_packages_keep_installed_configuration(repo, populated_store, benchmark):
    """Reuse takes priority over the defaults for already-installed software
    (the cmake 3.21.1 vs 3.21.4 point in the paper): the reused packages keep
    their gcc 10.3.1 build instead of triggering gcc 11.2.0 rebuilds."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = Concretizer(repo=repo, store=populated_store, reuse=True).concretize(REQUEST)
    reused_compilers = {
        str(result.specs[name].compiler_versions) for name in result.reused
    }
    assert "10.3.1" in reused_compilers


def test_fig6_benchmark_reuse_solve(repo, populated_store, benchmark):
    concretizer = Concretizer(repo=repo, store=populated_store, reuse=True)
    benchmark.pedantic(lambda: concretizer.concretize(REQUEST), rounds=1, iterations=1)
