"""Table II: the 15 lexicographic optimization criteria.

Each scenario isolates one group of criteria and checks that the optimizer
trades lower-priority criteria away to improve higher-priority ones, i.e. the
cost vectors really are compared lexicographically in Table II order.
"""

import pytest

from benchmarks.reporting import record
from repro.spack.concretize import Concretizer
from repro.spack.concretize.criteria import CRITERIA, cost_summary
from repro.spack.repo import Repository
from repro.spack.version import Version
from tests.conftest import MICRO_PACKAGES


@pytest.fixture(scope="module")
def micro_repo():
    repo = Repository(name="bench-micro", packages=MICRO_PACKAGES)
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


@pytest.fixture(scope="module")
def scenario_costs(micro_repo):
    concretizer = Concretizer(repo=micro_repo)
    scenarios = {
        "defaults": concretizer.concretize("example"),
        "deprecated version forced": concretizer.concretize("example@0.9.0"),
        "non-default root variant": concretizer.concretize("example~bzip"),
        "non-preferred provider": concretizer.concretize("example ^openmpi"),
        "older root version": concretizer.concretize("example@1.0.0"),
        "non-preferred compiler": concretizer.concretize("example%clang"),
        "non-preferred target": concretizer.concretize("example target=haswell"),
    }
    rows = []
    for label, result in scenarios.items():
        summary = cost_summary(result.costs)
        interesting = {k: v for k, v in summary.items() if v}
        rows.append((label, result.specs["example"].version, interesting))
    record(
        "table2_criteria",
        "Table II: non-zero criteria per scenario",
        ["scenario", "example version", "non-zero criteria"],
        rows,
    )
    return scenarios


def test_table2_has_fifteen_criteria(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(CRITERIA) == 15


def test_criterion1_deprecated_versions(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = cost_summary(scenario_costs["defaults"].costs)
    forced = cost_summary(scenario_costs["deprecated version forced"].costs)
    assert default["01_deprecated_versions_used"] == 0
    assert forced["01_deprecated_versions_used"] == 1


def test_criterion2_version_oldness_roots(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = cost_summary(scenario_costs["defaults"].costs)
    older = cost_summary(scenario_costs["older root version"].costs)
    assert default["02_version_oldness_roots"] == 0
    assert older["02_version_oldness_roots"] > 0


def test_criterion3_non_default_variants_roots(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flipped = cost_summary(scenario_costs["non-default root variant"].costs)
    assert flipped["03_non-default_variant_values_roots"] >= 1


def test_criterion4_non_preferred_providers(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = cost_summary(scenario_costs["defaults"].costs)
    non_preferred = cost_summary(scenario_costs["non-preferred provider"].costs)
    assert default["04_non-preferred_providers_roots"] == 0
    assert non_preferred["04_non-preferred_providers_roots"] > 0


def test_criterion13_non_preferred_compilers(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = cost_summary(scenario_costs["defaults"].costs)
    clang = cost_summary(scenario_costs["non-preferred compiler"].costs)
    assert clang["13_non-preferred_compilers"] > default["13_non-preferred_compilers"]


def test_criterion15_non_preferred_targets(scenario_costs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = cost_summary(scenario_costs["defaults"].costs)
    haswell = cost_summary(scenario_costs["non-preferred target"].costs)
    assert haswell["15_non-preferred_targets"] > default["15_non-preferred_targets"]


def test_lexicographic_order_prefers_default_everything(scenario_costs, benchmark):
    """The unconstrained solve must not pay any cost a constrained one avoids:
    its cost vector is lexicographically minimal across all scenarios."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = scenario_costs["defaults"]
    default_vector = tuple(default.costs[k] for k in sorted(default.costs, reverse=True))
    for label, result in scenario_costs.items():
        vector = tuple(result.costs[k] for k in sorted(result.costs, reverse=True))
        assert default_vector <= vector, label


def test_table2_benchmark_default_solve(micro_repo, benchmark):
    concretizer = Concretizer(repo=micro_repo)
    benchmark.pedantic(lambda: concretizer.concretize("example"), rounds=1, iterations=1)
