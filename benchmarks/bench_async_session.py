#!/usr/bin/env python3
"""Benchmark: async concretization sessions — streaming first-result latency.

The ISSUE-4 acceptance scenario over the 16-spec overlapping workload
(``FAMILY_WORKLOAD_16``, the same batch the parallel benchmark uses):

1. **Sequential baseline** — one ``ConcretizationSession.solve`` over the
   whole batch; its wall time is what a caller waits before seeing *any*
   result from a blocking API.
2. **Async streaming** — ``AsyncConcretizationSession.as_completed`` over
   the same batch: results are collected in completion order, the
   time-to-first-result is measured, and every result is asserted
   element-wise identical to the sequential baseline.

Assertions (both modes):

* the streamed results are element-wise identical to sequential solves;
* the first streamed result lands in **less than the full-batch wall time**
  — on both the async batch's own wall time and the sequential baseline's —
  which is the point of the streaming API: a service can start answering
  while the rest of the batch is still solving.

``--quick`` (the CI smoke) runs the thread backend only; the full run also
exercises the fork-process backend.  No absolute wall-clock floors are
asserted (shared CI runners are too noisy); the first-vs-total comparison is
scale-free.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_async_session.py --quick
    PYTHONPATH=src python benchmarks/bench_async_session.py          # full
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing
import os
import sys
import time

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, REPO_ROOT)

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import (  # noqa: E402
    FAMILY_WORKLOAD_16 as WORKLOAD,
    micro_repo,
    signature,
)
from repro.spack.concretize import (  # noqa: E402
    AsyncConcretizationSession,
    ConcretizationSession,
)
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402

MAX_CONCURRENCY = 4


def sequential_baseline():
    clear_shared_bases()
    session = ConcretizationSession(repo=micro_repo(), share_ground_cache=False)
    start = time.perf_counter()
    results = session.solve(list(WORKLOAD))
    elapsed = time.perf_counter() - start
    return [signature(r) for r in results], elapsed


async def streamed(backend: str):
    clear_shared_bases()
    async with AsyncConcretizationSession(
        repo=micro_repo(),
        share_ground_cache=False,
        worker_backend=backend,
        max_concurrency=MAX_CONCURRENCY,
    ) as session:
        results = [None] * len(WORKLOAD)
        start = time.perf_counter()
        first_latency = None
        async for index, result in session.as_completed(list(WORKLOAD)):
            if first_latency is None:
                first_latency = time.perf_counter() - start
            results[index] = signature(result)
        total = time.perf_counter() - start
        return results, first_latency, total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="thread backend only (CI smoke test)",
    )
    args = parser.parse_args(argv)

    backends = ["thread"]
    if not args.quick and "fork" in multiprocessing.get_all_start_methods():
        backends.append("process")

    reference, sequential_time = sequential_baseline()

    rows = [("sequential solve(16) [s]", f"{sequential_time:.3f}")]
    failures = []
    for backend in backends:
        results, first_latency, total = asyncio.run(streamed(backend))
        rows.extend(
            [
                (f"async[{backend}] first result [s]", f"{first_latency:.3f}"),
                (f"async[{backend}] full batch [s]", f"{total:.3f}"),
            ]
        )
        if results != reference:
            failures.append(
                f"async[{backend}] streamed results diverge from sequential"
            )
        if not first_latency < total:
            failures.append(
                f"async[{backend}] first result ({first_latency:.3f}s) did not "
                f"beat its own batch wall time ({total:.3f}s)"
            )
        if not first_latency < sequential_time:
            failures.append(
                f"async[{backend}] first result ({first_latency:.3f}s) did not "
                f"beat the sequential batch wall time ({sequential_time:.3f}s)"
            )

    record(
        "async_session",
        f"Async session streaming over {len(WORKLOAD)} overlapping specs "
        f"(max_concurrency={MAX_CONCURRENCY})",
        ["metric", "value"],
        rows,
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "\nOK: as_completed() is element-wise identical to sequential and "
            "streams its first result before the batch finishes"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
