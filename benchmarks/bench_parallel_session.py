#!/usr/bin/env python3
"""Benchmark: parallel solve workers on a solver-heavy workload + warm caches.

Three acts.  Acts 0-1 run over the **solver-heavy** workload (a 320-package
synthetic catalog, six overlapping specs of its deepest root family, ~70
possible packages per solve) — the micro catalog the scaling act used to
run on spent its time in session bookkeeping, which is how the old ~1.04x
"speedup" caveat happened; this workload actually grounds and solves:

0. **Grounder hot path** — one cold single solve (workers=1) under the
   indexed join strategy vs. the reference ``naive`` strategy (the pre-PR
   grounder, preserved in :mod:`repro.asp.naive`).  Results must be
   signature-identical; the *full* run asserts the >=1.5x floor on the
   indexed speedup.

1. **Scaling** — one sequential :class:`ConcretizationSession` (workers=1)
   vs. the same session with ``workers=4`` fanning delta-ground + solve out
   to forked processes.  Results must be element-wise identical; the *full*
   run must additionally clear a speedup floor (2.0x with >= 4 cores,
   relaxed on 2-3 cores, waived on a single core — there is nothing to
   parallelize against).  ``--quick`` (the CI smoke) never asserts
   wall-clock floors: shared runners are too noisy for that (the trend
   regression gate compares across runs with a noise band instead).

2. **Warm start** — a session pointed at a fresh ``cache_dir`` populates the
   persistent solve/ground caches (micro catalog: this act measures cache
   plumbing, not solver muscle), then a *second process* replays the same
   batch from disk.  The child's statistics are asserted: zero solve-cache
   misses, zero delta groundings, zero base groundings — i.e. not a single
   grounding or solver call.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_parallel_session.py --quick
    PYTHONPATH=src python benchmarks/bench_parallel_session.py          # full
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, REPO_ROOT)

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import (  # noqa: E402
    FAMILY_WORKLOAD_16 as WARM_WORKLOAD,
    SOLVER_HEAVY_WORKLOAD as WORKLOAD,
    micro_repo,
    signature,
    solver_heavy_repo,
)
from repro.spack.concretize import ConcretizationSession  # noqa: E402
from repro.spack.concretize.session import (  # noqa: E402
    clear_shared_bases,
    default_worker_count,
)

WORKERS = 4


def speedup_floor(quick: bool):
    """The asserted floor for the parallel speedup, given available cores.

    ``--quick`` (the CI smoke mode) never asserts a floor: shared CI runners
    have noisy neighbors, and a wall-clock assertion there would flake with
    no code defect.  Quick mode still asserts identity, worker counts, and
    the zero-solver-call warm start; the floor is enforced by the full run.
    """
    if quick:
        return None
    cores = default_worker_count()
    if cores >= WORKERS:
        return 2.0
    if cores >= 2:
        return 1.3
    return None  # single core: parallelism cannot help, only identity checked


# ---------------------------------------------------------------------------
# Act 0: grounder hot path (indexed vs naive, single cold solve)
# ---------------------------------------------------------------------------


def run_grounder_comparison(repo):
    """Cold single solve (workers=1) under each join strategy.

    Uses the first workload spec only: a *single* solve is the unit the
    >=1.5x acceptance floor talks about, and base grounding — where the
    indexed grounder earns its keep — is not amortized over a batch.
    """
    times = {}
    signatures = {}
    for strategy in ("indexed", "naive"):
        clear_shared_bases()
        session = ConcretizationSession(
            repo=repo, share_ground_cache=False, join_strategy=strategy
        )
        start = time.perf_counter()
        result = session.solve([WORKLOAD[0]])[0]
        times[strategy] = time.perf_counter() - start
        signatures[strategy] = signature(result)
    assert signatures["indexed"] == signatures["naive"], (
        "join strategies disagree on the solved spec"
    )
    return times


# ---------------------------------------------------------------------------
# Act 1: scaling
# ---------------------------------------------------------------------------


def run_scaling_round(repo):
    clear_shared_bases()
    sequential = ConcretizationSession(repo=repo, share_ground_cache=False)
    start = time.perf_counter()
    sequential_results = sequential.solve(list(WORKLOAD))
    sequential_time = time.perf_counter() - start

    clear_shared_bases()
    parallel = ConcretizationSession(
        repo=repo, share_ground_cache=False, workers=WORKERS
    )
    start = time.perf_counter()
    parallel_results = parallel.solve(list(WORKLOAD))
    parallel_time = time.perf_counter() - start

    for spec, a, b in zip(WORKLOAD, parallel_results, sequential_results):
        assert signature(a) == signature(b), f"results diverge for {spec!r}"

    return sequential_time, parallel_time, parallel


# ---------------------------------------------------------------------------
# Act 2: warm start from disk, in a second process
# ---------------------------------------------------------------------------


def run_replay_child(cache_dir: str) -> int:
    """Executed in the *second* process: replay the batch from disk."""
    repo = micro_repo()
    session = ConcretizationSession(
        repo=repo, share_ground_cache=False, cache_dir=cache_dir
    )
    start = time.perf_counter()
    results = session.solve(list(WARM_WORKLOAD))
    elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {
                "elapsed": elapsed,
                "signatures": [repr(signature(r)) for r in results],
                "stats": session.stats.as_dict(),
                "solve_cache": session.solve_cache.statistics(),
            }
        )
    )
    return 0


def run_warm_start(repo, cache_dir):
    clear_shared_bases()
    cold = ConcretizationSession(
        repo=repo, share_ground_cache=False, cache_dir=cache_dir
    )
    start = time.perf_counter()
    cold_results = cold.solve(list(WARM_WORKLOAD))
    cold_time = time.perf_counter() - start

    env = dict(os.environ)
    src = os.path.abspath(os.path.join(REPO_ROOT, "src"))
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--replay-child", cache_dir],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if child.returncode != 0:
        raise RuntimeError(
            f"replay child failed ({child.returncode}):\n{child.stderr}"
        )
    payload = json.loads(child.stdout.strip().splitlines()[-1])
    expected = [repr(signature(r)) for r in cold_results]
    assert payload["signatures"] == expected, "warm replay diverged from cold solve"
    return cold_time, payload


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single round with a relaxed speedup floor (CI smoke test)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="measurement rounds (best-of); default 3, or 1 with --quick",
    )
    parser.add_argument(
        "--replay-child", metavar="CACHE_DIR", default=None,
        help=argparse.SUPPRESS,  # internal: warm-start second process
    )
    args = parser.parse_args(argv)

    if args.replay_child:
        return run_replay_child(args.replay_child)

    heavy_repo = solver_heavy_repo()
    rounds = args.rounds or (1 if args.quick else 3)
    floor = speedup_floor(args.quick)
    cores = default_worker_count()

    grounder_times = run_grounder_comparison(heavy_repo)
    grounder_speedup = grounder_times["naive"] / grounder_times["indexed"]

    best = None
    for _ in range(rounds):
        sequential_time, parallel_time, parallel = run_scaling_round(heavy_repo)
        speedup = sequential_time / parallel_time
        if best is None or speedup > best[0]:
            best = (speedup, sequential_time, parallel_time, parallel)
    speedup, sequential_time, parallel_time, parallel = best

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        cold_time, replay = run_warm_start(micro_repo(), cache_dir)

    stats = parallel.stats
    child_stats = replay["stats"]
    record(
        "parallel_session",
        f"Solver-heavy parallel session ({WORKERS} workers, {cores} cores, "
        f"{len(WORKLOAD)} overlapping specs) + warm disk replay "
        f"({len(WARM_WORKLOAD)} micro specs)",
        ["metric", "value"],
        [
            ("single solve, naive grounder [s]", f"{grounder_times['naive']:.3f}"),
            ("single solve, indexed grounder [s]", f"{grounder_times['indexed']:.3f}"),
            ("grounder speedup", f"{grounder_speedup:.2f}x"),
            ("sequential session [s]", f"{sequential_time:.3f}"),
            (f"parallel session x{WORKERS} [s]", f"{parallel_time:.3f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("parallel solves", stats.parallel_solves),
            ("base groundings (parent)", stats.base_groundings),
            ("cold solve w/ cache dir [s]", f"{cold_time:.3f}"),
            ("warm replay, 2nd process [s]", f"{replay['elapsed']:.3f}"),
            ("warm solve-cache misses", child_stats["solve_cache_misses"]),
            ("warm delta groundings", child_stats["delta_groundings"]),
            ("warm base groundings", child_stats["base_groundings"]),
            ("warm disk hits", replay["solve_cache"]["disk_hits"]),
        ],
    )

    failures = []
    if stats.base_groundings != 1:
        failures.append(
            f"expected one shared base grounding in the parent, got "
            f"{stats.base_groundings}"
        )
    if stats.parallel_solves != len(WORKLOAD):
        failures.append(
            f"expected {len(WORKLOAD)} worker solves, got {stats.parallel_solves}"
        )
    if floor is None:
        reason = (
            "quick/CI mode" if args.quick else f"only {cores} core(s) visible"
        )
        print(
            f"NOTE: {reason}; speedup floor not asserted "
            f"(identity and warm start still are)"
        )
    elif speedup < floor:
        failures.append(f"speedup {speedup:.2f}x below the {floor:.1f}x floor")
    if not args.quick and grounder_speedup < 1.5:
        failures.append(
            f"indexed grounder speedup {grounder_speedup:.2f}x below the "
            f"1.5x single-solve floor"
        )
    if child_stats["solve_cache_misses"] != 0:
        failures.append(
            f"warm replay missed the cache {child_stats['solve_cache_misses']} times"
        )
    if child_stats["delta_groundings"] != 0 or child_stats["base_groundings"] != 0:
        failures.append("warm replay touched the grounder/solver")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"\nOK: grounder {grounder_speedup:.2f}x, workers {speedup:.2f}x "
            f"(x{WORKERS}); second process replayed {len(WARM_WORKLOAD)} "
            f"specs from disk with zero solver calls"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
