#!/usr/bin/env python3
"""Benchmark: the concretization service under concurrent multi-tenant load.

An in-process load generator against :class:`ConcretizationService` — no
sockets, so the numbers measure the service core (admission, deadline
supervision, per-tenant sessions over the shared base layers), not TCP:

1. two tenants are registered, each composing a one-package overlay shard
   over the shared micro catalog (``ShardedRepository.compose``);
2. a warmup pass concretizes each distinct spec once per tenant, so the
   measured phase exercises the service on warm per-tenant caches — the
   steady state a long-lived server actually runs in;
3. N client threads per tenant then issue single-spec requests from the
   16-spec overlapping family for a fixed wall-clock window, recording
   per-request latency.

Reported per tenant and overall: requests/s, p50 and p99 latency.
Assertions:

* every request succeeds (no 429/504 at this offered load: the admission
  queue is sized for the client count);
* both tenants make progress (each completes at least one request);
* every response is a well-formed result payload (concrete spec string).

``--quick`` (the CI smoke) shrinks the measurement window and client
count.  Absolute throughput is hardware-dependent; nothing wall-clock is
asserted.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py          # full
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, REPO_ROOT)

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import FAMILY_WORKLOAD_16 as WORKLOAD  # noqa: E402
from benchmarks.workloads import micro_repo  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402
from repro.spack.directives import depends_on, version  # noqa: E402
from repro.spack.package import Package  # noqa: E402
from repro.spack.service import ConcretizationService  # noqa: E402

MAX_CONCURRENCY = 4
QUEUE_LIMIT = 64  # sized so this benchmark's offered load is never shed


class TenantAApp(Package):
    """Tenant A's private package, layered over the shared base."""

    name = "tenant-a-app"
    version("1.0")
    depends_on("zlib")


class TenantBApp(Package):
    """Tenant B's private package, layered over the shared base."""

    name = "tenant-b-app"
    version("2.0")
    depends_on("bzip2")


TENANTS = {
    "tenant-a": (TenantAApp, "tenant-a-app"),
    "tenant-b": (TenantBApp, "tenant-b-app"),
}


def percentile(sorted_values, fraction):
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_load(service, tenant, specs, clients, duration_s, failures):
    """Drive one tenant with ``clients`` threads; returns latency samples."""
    latencies = []
    lock = threading.Lock()
    deadline = time.perf_counter() + duration_s

    def client(worker_index):
        position = worker_index  # stagger starting offsets across clients
        while time.perf_counter() < deadline:
            spec = specs[position % len(specs)]
            position += 1
            start = time.perf_counter()
            try:
                payload = service.concretize(spec, tenant=tenant, deadline_s=30.0)
            except Exception as exc:
                with lock:
                    failures.append(f"{tenant}: {spec!r} failed: {exc}")
                return
            elapsed = time.perf_counter() - start
            if not payload.get("concrete"):
                with lock:
                    failures.append(f"{tenant}: {spec!r} returned no concrete spec")
                return
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="short measurement window, fewer clients (CI smoke test)",
    )
    args = parser.parse_args(argv)

    clients = 2 if args.quick else 4
    duration_s = 2.0 if args.quick else 8.0

    clear_shared_bases()
    failures = []
    rows = []
    with ConcretizationService(
        base_repo=micro_repo(),
        max_concurrency=MAX_CONCURRENCY,
        queue_limit=QUEUE_LIMIT,
        default_deadline_s=60.0,
    ) as service:
        specs_of = {}
        for tenant, (package_cls, private_spec) in TENANTS.items():
            service.add_tenant(tenant, packages=[package_cls])
            specs_of[tenant] = list(WORKLOAD) + [private_spec]

        # warmup: populate each tenant's solve cache once per distinct spec
        warm_start = time.perf_counter()
        for tenant, specs in specs_of.items():
            for spec in specs:
                service.concretize(spec, tenant=tenant, deadline_s=120.0)
        warm_elapsed = time.perf_counter() - warm_start
        rows.append(("warmup (all tenants, cold) [s]", f"{warm_elapsed:.3f}"))

        # measured phase: all tenants hammered concurrently
        results = {}
        collectors = []
        for tenant, specs in specs_of.items():
            def collect(tenant=tenant, specs=specs):
                results[tenant] = run_load(
                    service, tenant, specs, clients, duration_s, failures
                )
            collectors.append(threading.Thread(target=collect, daemon=True))
        measure_start = time.perf_counter()
        for thread in collectors:
            thread.start()
        for thread in collectors:
            thread.join()
        measured = time.perf_counter() - measure_start

        all_latencies = []
        for tenant in TENANTS:
            latencies = sorted(results.get(tenant, []))
            all_latencies.extend(latencies)
            if not latencies:
                failures.append(f"{tenant}: completed zero requests")
                continue
            rows.extend(
                [
                    (f"{tenant} requests/s", f"{len(latencies) / measured:.1f}"),
                    (f"{tenant} p50 latency [ms]",
                     f"{percentile(latencies, 0.50) * 1e3:.2f}"),
                    (f"{tenant} p99 latency [ms]",
                     f"{percentile(latencies, 0.99) * 1e3:.2f}"),
                ]
            )
        all_latencies.sort()
        if all_latencies:
            rows.extend(
                [
                    ("overall requests/s", f"{len(all_latencies) / measured:.1f}"),
                    ("overall p50 latency [ms]",
                     f"{percentile(all_latencies, 0.50) * 1e3:.2f}"),
                    ("overall p99 latency [ms]",
                     f"{percentile(all_latencies, 0.99) * 1e3:.2f}"),
                ]
            )
        stats = service.statistics()["service"]
        if stats["rejected_overload"]:
            failures.append(
                f"admission queue shed {stats['rejected_overload']} requests "
                f"at an offered load it is sized for"
            )
        if stats["deadline_exceeded"]:
            failures.append(
                f"{stats['deadline_exceeded']} requests hit their deadline"
            )

    record(
        "service_load",
        f"Concretization service: {len(TENANTS)} tenants x {clients} clients "
        f"for {duration_s:g}s (max_concurrency={MAX_CONCURRENCY})",
        ["metric", "value"],
        rows,
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "\nOK: both tenants served warm requests concurrently with no "
            "shed load and no deadline misses"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
