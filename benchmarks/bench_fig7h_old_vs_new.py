"""Figure 7h: total solve time, original (greedy) concretizer vs. the ASP one.

Paper observation: for packages with small possible-dependency sets the clingo
times track the old concretizer closely; for packages with large possible
dependency trees the complete solver pays a (bounded) premium — the price of
completeness and optimality.
"""

import pytest

from benchmarks.workloads import SMALL_SAMPLE
from benchmarks.reporting import record
from repro.spack.concretize import Concretizer, OriginalConcretizer


@pytest.fixture(scope="module")
def comparison(repo):
    rows = []
    for name in SMALL_SAMPLE:
        greedy = OriginalConcretizer(repo=repo).concretize(name)
        asp = Concretizer(repo=repo).concretize(name)
        rows.append(
            {
                "package": name,
                "possible_deps": asp.statistics["encoding"]["possible_dependencies"],
                "old": greedy.elapsed,
                "new": asp.timings["total"],
            }
        )
    rows.sort(key=lambda r: r["possible_deps"])
    record(
        "fig7h_old_vs_new",
        "Figure 7h: old concretizer vs ASP concretizer total times",
        ["package", "possible deps", "old [s]", "clingo-style [s]", "ratio"],
        [
            (
                r["package"],
                r["possible_deps"],
                f"{r['old']:.3f}",
                f"{r['new']:.3f}",
                f"{r['new'] / max(r['old'], 1e-9):.0f}x",
            )
            for r in rows
        ],
    )
    return rows


def test_fig7h_both_concretizers_handle_the_sample(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(comparison) == len(SMALL_SAMPLE)


def test_fig7h_gap_grows_with_possible_dependencies(comparison, benchmark):
    """The deviation from the greedy baseline is largest for packages with the
    biggest possible dependency trees (the second cluster in the paper)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    smallest = comparison[0]
    largest = comparison[-1]
    gap_small = smallest["new"] - smallest["old"]
    gap_large = largest["new"] - largest["old"]
    assert gap_large > gap_small


def test_fig7h_benchmark_old_concretizer(repo, benchmark):
    concretizer = OriginalConcretizer(repo=repo)
    benchmark.pedantic(lambda: concretizer.concretize("hdf5"), rounds=1, iterations=1)


def test_fig7h_benchmark_new_concretizer(repo, benchmark):
    concretizer = Concretizer(repo=repo)
    benchmark.pedantic(lambda: concretizer.concretize("hdf5"), rounds=1, iterations=1)
