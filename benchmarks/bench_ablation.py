"""Ablation benchmarks for design choices called out in DESIGN.md.

1. Stable-model enforcement (lazy unfounded-set checking) on vs. off: with
   circular *possible* dependencies in the repository the completion alone can
   admit unfounded dependency cycles; the check guarantees correct DAGs.
2. The optimizer's "zero-first" fast path (the usc-like strategy of the
   tweety preset) vs. pure branch-and-bound.
"""

import pytest

from benchmarks.reporting import record
from repro.asp.configs import SolverConfig
from repro.spack.concretize import Concretizer

PACKAGE = "sz"


@pytest.fixture(scope="module")
def ablation_rows(repo):
    rows = []
    configurations = {
        "default (stability + zero-first)": SolverConfig.preset("tweety"),
        "no zero-first fast path": SolverConfig.preset("tweety").with_overrides(zero_first=False),
        "no stable-model check": SolverConfig.preset("tweety").with_overrides(
            enforce_stability=False
        ),
    }
    results = {}
    for label, config in configurations.items():
        concretizer = Concretizer(repo=repo, config=config)
        result = concretizer.concretize(PACKAGE)
        results[label] = result
        optimization = result.statistics["optimization"]
        rows.append(
            (
                label,
                f"{result.timings['solve']:.2f}",
                optimization.get("stability_checks", 0),
                optimization.get("loop_nogoods", 0),
                result.costs.get(100, 0),
            )
        )
    record(
        "ablation_solver_features",
        f"Ablation: solver features while concretizing '{PACKAGE}'",
        ["configuration", "solve [s]", "stability checks", "loop nogoods", "builds"],
        rows,
    )
    return results


def test_ablation_all_configurations_agree_on_the_answer(ablation_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    versions = {label: r.specs[PACKAGE].version for label, r in ablation_rows.items()}
    assert len(set(versions.values())) == 1


def test_ablation_stability_check_is_exercised(ablation_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = ablation_rows["default (stability + zero-first)"]
    assert default.statistics["optimization"]["stability_checks"] >= 1


def test_ablation_zero_first_does_not_change_costs(ablation_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = ablation_rows["default (stability + zero-first)"]
    no_fast_path = ablation_rows["no zero-first fast path"]
    assert default.costs == no_fast_path.costs


def test_ablation_benchmark_no_zero_first(repo, benchmark):
    concretizer = Concretizer(
        repo=repo, config=SolverConfig.preset("tweety").with_overrides(zero_first=False)
    )
    benchmark.pedantic(lambda: concretizer.concretize(PACKAGE), rounds=1, iterations=1)
