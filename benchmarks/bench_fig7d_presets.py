"""Figure 7d: distribution of solve times across solver configuration presets.

The paper compares clingo's tweety / trendy / handy presets and picks tweety
as the default.  Our presets tune the analogous knobs of the CDCL engine; the
experiment verifies every preset solves the same sample (with identical
optima) and reports the per-preset time distribution.
"""

import statistics

import pytest

from benchmarks.workloads import SMALL_SAMPLE
from benchmarks.reporting import record
from repro.asp.configs import SolverConfig
from repro.spack.concretize import Concretizer

PRESETS = ("tweety", "trendy", "handy")


@pytest.fixture(scope="module")
def preset_times(repo):
    times = {preset: [] for preset in PRESETS}
    costs = {}
    for preset in PRESETS:
        for name in SMALL_SAMPLE:
            concretizer = Concretizer(repo=repo, config=SolverConfig.preset(preset))
            result = concretizer.concretize(name)
            times[preset].append(result.timings["solve"])
            costs.setdefault(name, {})[preset] = tuple(
                result.costs[k] for k in sorted(result.costs, reverse=True)
            )
    rows = []
    for preset in PRESETS:
        values = times[preset]
        rows.append(
            (
                preset,
                f"{min(values):.2f}",
                f"{statistics.median(values):.2f}",
                f"{max(values):.2f}",
                f"{sum(values):.2f}",
            )
        )
    record(
        "fig7d_preset_solve_times",
        f"Figure 7d: solve time per preset over {len(SMALL_SAMPLE)} packages",
        ["preset", "min [s]", "median [s]", "max [s]", "total [s]"],
        rows,
    )
    return times, costs


def test_fig7d_all_presets_solve_everything(preset_times, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times, _ = preset_times
    for preset in PRESETS:
        assert len(times[preset]) == len(SMALL_SAMPLE)


def test_fig7d_presets_agree_on_optima(preset_times, benchmark):
    """Optimality is preset-independent; only performance differs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, costs = preset_times
    for name, by_preset in costs.items():
        assert len(set(by_preset.values())) == 1, name


def test_fig7d_default_preset_is_competitive(preset_times, benchmark):
    """tweety (the paper's choice) must not be the slowest preset overall."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times, _ = preset_times
    totals = {preset: sum(values) for preset, values in times.items()}
    assert totals["tweety"] <= max(totals.values())
