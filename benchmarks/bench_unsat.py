#!/usr/bin/env python3
"""Benchmark: unsat-explanation latency vs synthetic catalog size.

The ISSUE-7 acceptance scenario: plant a conflicting package into seeded
synthetic catalogs of increasing size, concretize it to UNSAT, and measure

* the plain unsat solve (the price of the "no" answer),
* the full explained failure (solve + re-ground + deletion-based MUS
  extraction), asserting the extracted core equals the planted ground
  truth at every size,
* the warm-cache replay of the same failure (which must do no grounding
  and no solver work at all).

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_unsat.py --quick
    PYTHONPATH=src python benchmarks/bench_unsat.py            # full
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from benchmarks.reporting import record  # noqa: E402
from repro.spack.concretize import ConcretizationSession  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402
from repro.spack.errors import UnsatisfiableSpecError  # noqa: E402
from repro.spack.generator import SyntheticRepoBuilder  # noqa: E402

QUICK_SIZES = (50, 150)
FULL_SIZES = (50, 150, 400, 1000)


def expect_unsat(callable_) -> UnsatisfiableSpecError:
    try:
        callable_()
    except UnsatisfiableSpecError as error:
        return error
    raise AssertionError("expected an unsatisfiable concretization")


def run_size(num_packages: int, seed: int = 7):
    builder = SyntheticRepoBuilder(
        num_packages=num_packages,
        max_dependencies=3,
        layers=5,
        seed=seed,
        unsat_packages=1,
        unsat_conflicts=3,
    )
    repo = builder.build()
    planted = builder.planted["synth-unsat-0000"]

    clear_shared_bases()
    session = ConcretizationSession(repo=repo, share_ground_cache=False)

    start = time.perf_counter()
    error = expect_unsat(lambda: session.concretize(planted.package))
    explained_s = time.perf_counter() - start

    expected = sorted(f"{planted.package}: {d}" for d in planted.directives)
    assert error.core() == expected, (
        f"core mismatch at {num_packages} packages: {error.core()} != {expected}"
    )

    start = time.perf_counter()
    warm = expect_unsat(lambda: session.concretize(planted.package))
    warm_s = time.perf_counter() - start
    assert warm.explanation == error.explanation

    return explained_s, warm_s, len(error.explanation)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="two small catalog sizes only (CI smoke test)",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    rows = []
    failures = []
    for num_packages in sizes:
        explained_s, warm_s, core_size = run_size(num_packages)
        rows.append(
            (
                num_packages,
                f"{explained_s:.3f}",
                f"{warm_s * 1000:.1f}",
                core_size,
            )
        )
        if warm_s >= explained_s:
            failures.append(
                f"warm replay ({warm_s:.3f}s) not faster than the cold "
                f"explained failure ({explained_s:.3f}s) at {num_packages} packages"
            )

    record(
        "unsat_explanations",
        "Unsat explanation latency vs synthetic catalog size (planted cores)",
        ["packages", "explained unsat [s]", "warm replay [ms]", "core size"],
        rows,
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: cores matched the planted ground truth at {len(sizes)} sizes")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
