#!/usr/bin/env python3
"""Benchmark: sharded repositories — per-shard grounding and invalidation.

The ISSUE-3 acceptance scenario, in three acts over one spec family against
a sharded repository with a persistent cache directory:

1. **Cold** — a fresh session grounds one base layer per included shard
   (context + shards) and persists every chain prefix;
2. **Warm** — a new session (cleared in-memory memos, same directory)
   replays every layer from disk: zero layers ground, zero solver calls;
3. **Single-shard edit** — a package is added to the *last included* shard;
   the composed repository hash moves (so solves are cold again), but of
   the base layers exactly one re-grounds — every other shard's persistent
   ground entry is still warm.

Results are asserted element-wise identical to the monolithic (flat
repository) path throughout.  ``--quick`` (the CI smoke) runs the micro
catalog; the full run uses the builtin E4S-style catalog (8 shards).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_repo.py --quick
    PYTHONPATH=src python benchmarks/bench_sharded_repo.py          # full
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, REPO_ROOT)

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import micro_repo, micro_sharded_repo, signature  # noqa: E402
from repro.spack.builtin import build_repository, build_sharded_repository  # noqa: E402
from repro.spack.concretize import ConcretizationSession, Concretizer  # noqa: E402
from repro.spack.concretize.encoder import ProblemEncoder  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402
from repro.spack.directives import depends_on, version  # noqa: E402
from repro.spack.package import Package  # noqa: E402
from repro.spack.repo import ShardedRepository  # noqa: E402
from repro.spack.spec_parser import parse_spec  # noqa: E402

#: one spec family: versions x variants of the same root, the build-cache
#: population shape whose shared base dominates the grounding cost
MICRO_WORKLOAD = ("example", "example+bzip", "example@1.0.0", "example~bzip")
BUILTIN_WORKLOAD = ("hdf5", "hdf5~mpi")


class Benchedit(Package):
    """The single-shard edit: a new leaf package in the last included shard."""

    version("1.0")
    depends_on("zlib")


def last_included_shard(repo: ShardedRepository, workload) -> str:
    """The deepest shard layer of the workload's spec family (editing it is
    the cheapest possible invalidation: exactly one layer re-grounds)."""
    specs = [parse_spec(s) for s in workload]
    possible = ProblemEncoder.possible_packages_for(repo, specs)
    included = [shard.name for shard in repo.shards if any(p in shard for p in possible)]
    return included[-1]


def timed_solve(repo, workload, cache_dir):
    clear_shared_bases()
    session = ConcretizationSession(
        repo=repo, share_ground_cache=False, cache_dir=cache_dir
    )
    start = time.perf_counter()
    results = session.solve(list(workload))
    elapsed = time.perf_counter() - start
    return session, results, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="micro catalog instead of the full builtin one (CI smoke test)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        build_sharded, build_flat, workload = micro_sharded_repo, micro_repo, MICRO_WORKLOAD
    else:
        build_sharded, build_flat, workload = (
            build_sharded_repository,
            build_repository,
            BUILTIN_WORKLOAD,
        )

    flat_reference = [
        signature(Concretizer(repo=build_flat()).solve([spec])) for spec in workload
    ]

    with tempfile.TemporaryDirectory(prefix="repro-shard-") as cache_dir:
        cold, cold_results, cold_time = timed_solve(build_sharded(), workload, cache_dir)
        warm, warm_results, warm_time = timed_solve(build_sharded(), workload, cache_dir)

        edited = build_sharded()
        target = last_included_shard(edited, workload)
        edited.add(Benchedit, shard=target)
        edit, edit_results, edit_time = timed_solve(edited, workload, cache_dir)

    layers_total = cold.stats.shard_layers_grounded
    record(
        "sharded_repo",
        f"Sharded repository ({len(build_sharded().shards)} shards): warm replay "
        f"and single-shard ({target!r}) invalidation over {len(workload)} specs",
        ["metric", "value"],
        [
            ("base layers (one family)", layers_total),
            ("cold solve [s]", f"{cold_time:.3f}"),
            ("cold layers grounded", cold.stats.shard_layers_grounded),
            ("warm solve [s]", f"{warm_time:.3f}"),
            ("warm layers grounded", warm.stats.shard_layers_grounded),
            ("warm solver calls", warm.stats.solve_cache_misses),
            (f"post-edit ({target}) solve [s]", f"{edit_time:.3f}"),
            ("post-edit layers grounded", edit.stats.shard_layers_grounded),
            ("post-edit layers from disk", edit.stats.shard_layers_disk),
        ],
    )

    failures = []
    for label, results in (("cold", cold_results), ("warm", warm_results)):
        if [signature(r) for r in results] != flat_reference:
            failures.append(f"{label} sharded results diverge from the flat path")
    if cold.stats.shard_layers_grounded < 2:
        failures.append("cold run should ground at least context + one shard layer")
    if warm.stats.shard_layers_grounded != 0 or warm.stats.solve_cache_misses != 0:
        failures.append(
            f"warm run touched the grounder/solver "
            f"({warm.stats.shard_layers_grounded} layers, "
            f"{warm.stats.solve_cache_misses} solves)"
        )
    if edit.stats.shard_layers_grounded != 1:
        failures.append(
            f"single-shard edit re-ground {edit.stats.shard_layers_grounded} "
            f"layers (expected exactly 1)"
        )
    if edit.stats.shard_layers_disk != layers_total - 1:
        failures.append(
            f"expected {layers_total - 1} layers replayed from disk after the "
            f"edit, got {edit.stats.shard_layers_disk}"
        )
    if edit.stats.solve_cache_misses != len(set(workload)):
        failures.append("the composed hash change must bypass stale solve entries")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"\nOK: warm replay ground nothing; editing shard {target!r} "
            f"re-ground exactly 1 of {layers_total} layers "
            f"({cold_time:.2f}s cold -> {edit_time:.2f}s after the edit)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
