#!/usr/bin/env python3
"""Benchmark: batch concretization session vs. independent concretizers.

The ISSUE-1 acceptance scenario: concretize 10 overlapping root specs and
compare a single :class:`ConcretizationSession` (shared base grounding,
incremental delta grounding, solve cache) against 10 independent
:class:`Concretizer` instances, asserting

* element-wise identical results,
* a >= 2x wall-clock speedup,
* grounder statistics proving the shared program was grounded exactly once
  per spec family.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_batch_session.py --quick
    PYTHONPATH=src python benchmarks/bench_batch_session.py            # full
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import micro_repo, signature  # noqa: E402
from repro.spack.concretize import ConcretizationSession, Concretizer  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402

#: 10 overlapping micro-repo specs from one spec family: what a build-cache
#: population run looks like (many variants/versions of the same roots,
#: several exact repeats).
WORKLOAD = (
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "example@1.1.0",
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "example@1.1.0",
)


def run_once(repo):
    clear_shared_bases()

    start = time.perf_counter()
    sequential = [Concretizer(repo=repo).solve([spec]) for spec in WORKLOAD]
    sequential_time = time.perf_counter() - start

    session = ConcretizationSession(repo=repo, share_ground_cache=False)
    start = time.perf_counter()
    batch = session.solve(list(WORKLOAD))
    session_time = time.perf_counter() - start

    for spec, a, b in zip(WORKLOAD, batch, sequential):
        assert signature(a) == signature(b), f"results diverge for {spec!r}"

    return sequential_time, session_time, session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single round with a relaxed speedup floor (CI smoke test)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="measurement rounds (best-of); default 3, or 1 with --quick",
    )
    args = parser.parse_args(argv)

    rounds = args.rounds or (1 if args.quick else 3)
    floor = 1.2 if args.quick else 2.0

    repo = micro_repo()
    best = None
    for _ in range(rounds):
        sequential_time, session_time, session = run_once(repo)
        speedup = sequential_time / session_time
        if best is None or speedup > best[0]:
            best = (speedup, sequential_time, session_time, session)
    speedup, sequential_time, session_time, session = best

    stats = session.stats
    record(
        "batch_session",
        f"Batch session vs {len(WORKLOAD)} independent concretizers (micro repo)",
        ["metric", "value"],
        [
            ("independent concretizers [s]", f"{sequential_time:.3f}"),
            ("batch session [s]", f"{session_time:.3f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("specs solved", stats.specs_solved),
            ("base groundings (shared program)", stats.base_groundings),
            ("base cache hits", stats.base_cache_hits),
            ("delta groundings", stats.delta_groundings),
            ("solve cache hits", stats.solve_cache_hits),
            ("solve cache misses", stats.solve_cache_misses),
        ],
    )

    failures = []
    if stats.base_groundings != 1:
        failures.append(
            f"expected the shared program to be grounded once, got "
            f"{stats.base_groundings} base groundings"
        )
    if speedup < floor:
        failures.append(f"speedup {speedup:.2f}x below the {floor:.1f}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: {speedup:.2f}x speedup, shared program grounded once")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
