"""Shared workloads and fixtures for the benchmark harness.

Everything the benchmarks agree on lives here, in one place:

* the micro catalog (flat and sharded flavors) and the result ``signature``
  every equivalence assertion compares on — updating the identity semantics
  here updates every harness;
* the builtin-catalog package samples (``PACKAGE_SAMPLE`` /
  ``SMALL_SAMPLE``) the paper-figure benchmarks sweep over;
* the 16-spec overlapping spec family (``FAMILY_WORKLOAD_16``) the
  parallel- and async-session benchmarks batch.
"""

from __future__ import annotations

from repro.spack.generator import SyntheticRepoBuilder
from repro.spack.repo import Repository, RepositoryShard, ShardedRepository
from tests.conftest import MICRO_PACKAGES

#: Packages spanning the possible-dependency range of the builtin repository,
#: from leaves to MPI-reaching packages (the x-axis of Figures 7a-7c).
PACKAGE_SAMPLE = (
    "zlib",
    "bzip2",
    "readline",
    "openssl",
    "pkgconf",
    "libxml2",
    "zfp",
    "hwloc",
    "sz",
    "c-blosc",
    "hdf5",
)

#: Smaller sample for the preset / old-vs-new comparisons (kept small because
#: every entry is solved several times).
SMALL_SAMPLE = ("zlib", "openssl", "hwloc", "sz", "hdf5")

#: 16 distinct, overlapping micro-repo specs from one spec family (versions x
#: variants x dependency constraints of the paper's Figure 2 ``example``
#: package): the shape of an E4S-style build-cache population batch.
FAMILY_WORKLOAD_16 = (
    "example",
    "example+bzip",
    "example~bzip",
    "example@1.0.0",
    "example@1.1.0",
    "example@1.0.0+bzip",
    "example@1.0.0~bzip",
    "example@1.1.0+bzip",
    "example@1.1.0~bzip",
    "example ^zlib+pic",
    "example ^zlib~pic",
    "example+bzip ^zlib+pic",
    "example~bzip ^zlib~pic",
    "example+bzip ^bzip2+shared",
    "example+bzip ^bzip2~shared",
    "example@1.0.0 ^zlib~pic",
)

#: the micro catalog split into four shards (apps last, like the builtin one)
MICRO_SHARD_LAYOUT = (
    ("core", ("zlib", "bzip2", "hwloc")),
    ("mpi", ("mpich", "openmpi")),
    ("math", ("miniblas", "reflapack")),
    ("apps", ("example", "minitool", "miniapp", "oldcode")),
)


def _micro_preferences(repo):
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


def micro_repo() -> Repository:
    """The flat (monolithic) micro repository."""
    return _micro_preferences(Repository(name="micro", packages=MICRO_PACKAGES))


def micro_sharded_repo() -> ShardedRepository:
    """The same catalog as :func:`micro_repo`, split into shards."""
    by_name = {cls.name: cls for cls in MICRO_PACKAGES}
    shards = [
        RepositoryShard(name, [by_name[n] for n in names])
        for name, names in MICRO_SHARD_LAYOUT
    ]
    return _micro_preferences(ShardedRepository(name="micro", shards=shards))


def signature(result):
    """Everything that must match for two results to count as identical.

    Cost levels with zero cost are dropped (a shared base grounds minimize
    literals a minimal per-spec grounding never materializes, adding empty
    levels); collections are sorted so the rendering is stable across
    processes and JSON round trips.
    """
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        tuple(sorted((level, cost) for level, cost in result.costs.items() if cost)),
        sorted(result.built),
        sorted(result.reused),
    )


# ---------------------------------------------------------------------------
# Solver-heavy workload (grounder/solver hot-path benchmarks)
# ---------------------------------------------------------------------------

#: Builder knobs of the solver-heavy synthetic catalog.  320 packages across
#: 6 layers with a fan-out of up to 6 dependencies makes the deepest roots
#: reach ~70-package closures — big enough that grounding and solving (not
#: session bookkeeping) dominate wall time, which is exactly where the
#: micro-catalog workload's ~1.04x parallel "speedup" was lying to us.
SOLVER_HEAVY_PACKAGES = 320
SOLVER_HEAVY_SEED = 7

#: The deepest root of that catalog (69 possible packages in its closure).
SOLVER_HEAVY_ROOT = "synth-0296"

#: One spec family over that root (same possible-package set, so the whole
#: batch shares a single grounded base, like the micro family workload —
#: but each solve grounds and searches a ~70-package problem).
SOLVER_HEAVY_WORKLOAD = (
    "synth-0296",
    "synth-0296+opt0",
    "synth-0296~opt0",
    "synth-0296+opt1",
    "synth-0296+opt0+opt1",
    "synth-0296~opt0~opt1",
)


def solver_heavy_repo() -> Repository:
    """The >=300-package synthetic catalog behind ``SOLVER_HEAVY_WORKLOAD``.

    Deterministic (fixed seed), so every benchmark run and both join
    strategies see byte-identical package definitions.
    """
    return SyntheticRepoBuilder(
        num_packages=SOLVER_HEAVY_PACKAGES,
        max_dependencies=6,
        layers=6,
        seed=SOLVER_HEAVY_SEED,
    ).build()
