"""Shared fixtures for the session benchmarks.

The micro catalog (flat and sharded flavors) and the result ``signature``
every equivalence assertion compares on live here, so all benchmarks agree
on what "element-wise identical" means — updating the identity semantics in
one place updates every harness.
"""

from __future__ import annotations

from repro.spack.repo import Repository, RepositoryShard, ShardedRepository
from tests.conftest import MICRO_PACKAGES

#: the micro catalog split into four shards (apps last, like the builtin one)
MICRO_SHARD_LAYOUT = (
    ("core", ("zlib", "bzip2", "hwloc")),
    ("mpi", ("mpich", "openmpi")),
    ("math", ("miniblas", "reflapack")),
    ("apps", ("example", "minitool", "miniapp", "oldcode")),
)


def _micro_preferences(repo):
    repo.set_provider_preference("mpi", ["mpich", "openmpi"])
    repo.set_provider_preference("blas", ["miniblas", "reflapack"])
    repo.set_provider_preference("lapack", ["miniblas", "reflapack"])
    return repo


def micro_repo() -> Repository:
    """The flat (monolithic) micro repository."""
    return _micro_preferences(Repository(name="micro", packages=MICRO_PACKAGES))


def micro_sharded_repo() -> ShardedRepository:
    """The same catalog as :func:`micro_repo`, split into shards."""
    by_name = {cls.name: cls for cls in MICRO_PACKAGES}
    shards = [
        RepositoryShard(name, [by_name[n] for n in names])
        for name, names in MICRO_SHARD_LAYOUT
    ]
    return _micro_preferences(ShardedRepository(name="micro", shards=shards))


def signature(result):
    """Everything that must match for two results to count as identical.

    Cost levels with zero cost are dropped (a shared base grounds minimize
    literals a minimal per-spec grounding never materializes, adding empty
    levels); collections are sorted so the rendering is stable across
    processes and JSON round trips.
    """
    return (
        str(result.spec),
        sorted(str(s) for s in result.specs.values()),
        tuple(sorted((level, cost) for level, cost in result.costs.items() if cost)),
        sorted(result.built),
        sorted(result.reused),
    )
