#!/usr/bin/env python3
"""Benchmark: warm-start latency — mmap snapshot attach vs pickle unpickle.

The ISSUE-9 acceptance scenario, on the 320-package solver-heavy catalog:
a first session grounds the ``synth-0296`` family cold and publishes the
base both ways (pickle object graph and flat mmap snapshot); a second
process then reaches warm state through each path.  Measured:

* **cold ground** — no disk cache at all: the price being amortized;
* **pickle unpickle** — warm start via the object-graph cache
  (``snapshots=False``);
* **snapshot attach** — warm start via ``GroundSnapshot`` (header-validated
  mmap attach + lazy flat-buffer materialization);

plus the raw store operations (``pickle.load`` vs attach vs materialize)
on the very same cached base, isolated from solve time.  The run *asserts*
the ISSUE-9 acceptance criterion — a snapshot **attach** (what every extra
service worker pays to reach servable warm state; the flat-buffer decode
is deferred until a solve actually needs the base) beats a pickle
**unpickle** of the same base — and that all three warm-start paths give
element-wise identical results.  The end-to-end warm solve rows are
reported for context; they are dominated by identical solver work.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --quick
    PYTHONPATH=src python benchmarks/bench_snapshot.py            # full
"""

from __future__ import annotations

import argparse
import glob
import os
import pickle
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import (  # noqa: E402
    SOLVER_HEAVY_WORKLOAD,
    signature,
    solver_heavy_repo,
)
from repro.asp.snapshot import GroundSnapshot  # noqa: E402
from repro.spack.concretize import ConcretizationSession, SessionConfig  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402

#: Same spec family as the workload (same base key), but never solved by
#: the seeding run — so every warm start below must actually produce the
#: base instead of answering from the persistent solve cache.
WARM_PROBE = "synth-0296+opt2"


def fresh_session(repo, cache_dir, **overrides) -> ConcretizationSession:
    clear_shared_bases()
    config = SessionConfig(
        cache_dir=cache_dir, share_ground_cache=False, **overrides
    )
    return ConcretizationSession(repo=repo, session_config=config)


def clear_solve_cache(cache_dir: str) -> None:
    for path in glob.glob(os.path.join(cache_dir, "solve", "*.json")):
        os.unlink(path)


def timed_warm_start(repo, cache_dir, **overrides):
    """Session construction + one family solve; returns (seconds, signature)."""
    clear_solve_cache(cache_dir)
    start = time.perf_counter()
    session = fresh_session(repo, cache_dir, **overrides)
    result = session.solve([WARM_PROBE])[0]
    elapsed = time.perf_counter() - start
    return elapsed, repr(signature(result)), session


def largest(pattern: str) -> str:
    paths = glob.glob(pattern)
    assert paths, f"no files match {pattern}"
    return max(paths, key=os.path.getsize)


def run(repetitions: int):
    repo = solver_heavy_repo()
    cache_dir = tempfile.mkdtemp(prefix="bench-snapshot-")
    cold_dir = tempfile.mkdtemp(prefix="bench-snapshot-cold-")
    try:
        # seed: one cold run publishes the base as pickle AND snapshot
        seed = fresh_session(repo, cache_dir)
        seed.solve(list(SOLVER_HEAVY_WORKLOAD))
        assert seed.stats.snapshot_writes >= 1

        cold_times, pickle_times, snap_times = [], [], []
        signatures = set()
        for _ in range(repetitions):
            shutil.rmtree(cold_dir, ignore_errors=True)
            elapsed, sig, _ = timed_warm_start(repo, cold_dir)
            cold_times.append(elapsed)
            signatures.add(sig)

            elapsed, sig, session = timed_warm_start(
                repo, cache_dir, snapshots=False
            )
            assert session.stats.base_disk_hits == 1
            assert session.stats.base_groundings == 0
            pickle_times.append(elapsed)
            signatures.add(sig)

            elapsed, sig, session = timed_warm_start(repo, cache_dir)
            assert session.stats.snapshot_attaches == 1
            assert session.stats.base_groundings == 0
            snap_times.append(elapsed)
            signatures.add(sig)

        # all three warm-start paths answer identically
        assert len(signatures) == 1, "warm-start paths disagree"

        # raw store operations on the same cached base, no solving at all
        # (best of 5: single readings are at the mercy of the page cache)
        pickle_path = largest(os.path.join(cache_dir, "ground", "*.pkl"))
        snap_path = largest(os.path.join(cache_dir, "snapshot", "*.snap"))
        raw_pickle_s = raw_attach_s = raw_materialize_s = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            with open(pickle_path, "rb") as stream:
                pickle.load(stream)
            raw_pickle_s = min(raw_pickle_s, time.perf_counter() - start)
            start = time.perf_counter()
            snapshot = GroundSnapshot.attach(snap_path)
            raw_attach_s = min(raw_attach_s, time.perf_counter() - start)
            start = time.perf_counter()
            snapshot.materialize()
            raw_materialize_s = min(
                raw_materialize_s, time.perf_counter() - start
            )
            snapshot.close()

        med = statistics.median
        return {
            "cold_s": med(cold_times),
            "pickle_s": med(pickle_times),
            "snapshot_s": med(snap_times),
            "raw_pickle_s": raw_pickle_s,
            "raw_attach_s": raw_attach_s,
            "raw_materialize_s": raw_materialize_s,
            "pickle_bytes": os.path.getsize(pickle_path),
            "snapshot_bytes": os.path.getsize(snap_path),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(cold_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one repetition (CI smoke)")
    args = parser.parse_args(argv)
    repetitions = 1 if args.quick else 3

    timings = run(repetitions)
    rows = [
        ["cold ground (no cache)", f"{timings['cold_s']:.3f}", "—"],
        ["pickle unpickle", f"{timings['pickle_s']:.3f}",
         f"{timings['cold_s'] / timings['pickle_s']:.1f}x"],
        ["snapshot attach", f"{timings['snapshot_s']:.3f}",
         f"{timings['cold_s'] / timings['snapshot_s']:.1f}x"],
        ["raw pickle.load", f"{timings['raw_pickle_s']:.4f}", "—"],
        ["raw snapshot attach (header)", f"{timings['raw_attach_s']:.4f}", "—"],
        ["raw snapshot materialize", f"{timings['raw_materialize_s']:.4f}", "—"],
    ]
    record(
        "snapshot",
        "Warm-start latency, 320-package solver-heavy family "
        f"(median of {repetitions}; pickle {timings['pickle_bytes']} B, "
        f"snapshot {timings['snapshot_bytes']} B)",
        ["path", "seconds", "vs cold"],
        rows,
    )

    if timings["raw_attach_s"] >= timings["raw_pickle_s"]:
        print(
            f"[bench-snapshot] FAIL: snapshot attach "
            f"({timings['raw_attach_s'] * 1e3:.2f}ms) did not beat pickle "
            f"unpickle ({timings['raw_pickle_s'] * 1e3:.2f}ms)",
            file=sys.stderr,
        )
        return 1
    print(
        f"[bench-snapshot] snapshot attach beats pickle unpickle: "
        f"{timings['raw_attach_s'] * 1e3:.2f}ms vs "
        f"{timings['raw_pickle_s'] * 1e3:.2f}ms to a warm servable base "
        f"({timings['raw_pickle_s'] / timings['raw_attach_s']:.0f}x; full "
        f"materialize {timings['raw_materialize_s'] * 1e3:.2f}ms, warm solve "
        f"{timings['snapshot_s']:.3f}s vs pickle {timings['pickle_s']:.3f}s "
        f"vs cold {timings['cold_s']:.3f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
