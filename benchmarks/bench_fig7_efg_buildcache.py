"""Figures 7e-7g: setup / solve / total time for growing buildcache sizes.

The paper grows the E4S buildcache from 6 804 to 63 099 installed hashes
(restricting by architecture and OS) and observes that setup time — generating
facts from the installed-package database — grows with the cache and dominates
solve time, while most solves still finish quickly.

Here the buildcache is built by concretizing a small stack under several
(target, os, compiler) configurations, then carved into the same four nested
subsets (full / one arch / one os / both).
"""

import pytest

from benchmarks.reporting import record
from repro.spack.concretize import Concretizer
from repro.spack.store import Database
from repro.spack.workloads import build_buildcache, buildcache_subsets

#: the stack whose binaries populate the cache and the package we re-solve
CACHE_ROOTS = ("c-blosc", "zfp", "sz")
REQUEST = "c-blosc"

CONFIGURATIONS = (
    ("skylake", "rhel7", "gcc@11.2.0"),
    ("haswell", "centos8", "gcc@10.3.1"),
    ("power9le", "rhel7", "gcc@11.2.0"),
    ("power8le", "rhel8", "gcc@10.3.1"),
)


@pytest.fixture(scope="module")
def buildcaches(repo):
    database = build_buildcache(CACHE_ROOTS, repo=repo, configurations=CONFIGURATIONS)
    subsets = buildcache_subsets(database)
    # order from smallest to largest, like the paper's 6804 .. 63099 series
    ordered = sorted(subsets.items(), key=lambda item: len(item[1]))
    return ordered


@pytest.fixture(scope="module")
def cache_series(repo, buildcaches):
    rows = []
    for label, database in buildcaches:
        concretizer = Concretizer(repo=repo, store=database, reuse=True)
        result = concretizer.concretize(REQUEST)
        rows.append(
            {
                "label": label,
                "cached": len(database),
                "setup": result.timings["setup"],
                "solve": result.timings["solve"],
                "total": result.timings["total"],
                "reused": result.number_reused,
                "built": result.number_of_builds,
            }
        )
    record(
        "fig7efg_buildcache_scaling",
        f"Figures 7e-7g: reuse solve of '{REQUEST}' vs buildcache size",
        ["cache", "installed", "setup [s]", "solve [s]", "total [s]", "reused", "built"],
        [
            (
                r["label"],
                r["cached"],
                f"{r['setup']:.2f}",
                f"{r['solve']:.2f}",
                f"{r['total']:.2f}",
                r["reused"],
                r["built"],
            )
            for r in rows
        ],
    )
    return rows


def test_fig7e_setup_time_grows_with_cache_size(cache_series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    smallest, largest = cache_series[0], cache_series[-1]
    assert largest["cached"] > smallest["cached"]
    assert largest["setup"] >= smallest["setup"]


def test_fig7f_solves_remain_tractable(cache_series, benchmark):
    """Most solves stay fast even with the largest cache (paper: < 10 s)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in cache_series:
        assert row["solve"] < 120.0


def test_fig7g_reuse_found_in_every_cache(cache_series, benchmark):
    """Whatever the subset, compatible binaries are reused instead of rebuilt."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in cache_series:
        assert row["reused"] > 0
    full = cache_series[-1]
    assert full["built"] == 0  # a fully matching stack exists in the full cache


def test_fig7efg_benchmark_largest_cache_solve(repo, buildcaches, benchmark):
    label, database = buildcaches[-1]
    concretizer = Concretizer(repo=repo, store=database, reuse=True)
    benchmark.pedantic(lambda: concretizer.concretize(REQUEST), rounds=1, iterations=1)
