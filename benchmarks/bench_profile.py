#!/usr/bin/env python3
"""Benchmark: per-stage profile of the concretization hot path.

Runs a profiling-enabled session (``profile="rules"``) over the family
workload and records where the wall-clock actually goes: the coarse paper
phases (setup / load / ground / solve) refined into the grounder's named
stages (``ground.*`` for the shared base, ``delta.*`` per solve) plus the
event counters (groundings run, portfolio races won, ...).  CI uploads the
resulting ``results/profile.*`` table as the per-stage timing artifact, so
a grounding regression in a PR shows up as a stage delta, not just a fatter
total.

The same numbers are live in production via ``/v1/stats`` — this benchmark
asserts the profile is populated (every solve accounted for, ground + solve
stages present) so the profiling hook cannot silently rot.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_profile.py --quick
    PYTHONPATH=src python benchmarks/bench_profile.py            # full
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

from benchmarks.reporting import record  # noqa: E402
from benchmarks.workloads import (  # noqa: E402
    FAMILY_WORKLOAD_16,
    SOLVER_HEAVY_WORKLOAD,
    micro_repo,
    solver_heavy_repo,
)
from repro.spack.concretize import ConcretizationSession  # noqa: E402
from repro.spack.concretize.session import clear_shared_bases  # noqa: E402

#: stages whose absence would mean the profiling hook is broken
REQUIRED_STAGE_PREFIXES = ("ground", "delta", "solve")


def run_profiled(repo, workload):
    """Concretize ``workload`` under ``profile="rules"``; return the stats."""
    clear_shared_bases()
    session = ConcretizationSession(
        repo=repo, share_ground_cache=False, profile="rules"
    )
    start = time.perf_counter()
    results = session.solve(workload)
    wall = time.perf_counter() - start
    assert len(results) == len(workload)
    stats = session.statistics()
    asp = stats.get("asp") or {}
    return wall, stats, asp


def stage_rows(asp, wall):
    """Table rows: stages sorted by cost, then counters, then top rules."""
    rows = []
    stages = asp.get("stages") or {}
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        rows.append((f"stage {name} [s]", f"{seconds:.3f}"))
    accounted = sum(stages.values())
    rows.append(("stages accounted [s]", f"{accounted:.3f}"))
    rows.append(("end-to-end wall [s]", f"{wall:.3f}"))
    for name, value in sorted((asp.get("counters") or {}).items()):
        rows.append((f"count {name}", str(value)))
    top = list((asp.get("rules") or {}).items())[:5]
    for label, seconds in top:
        head = label if len(label) <= 64 else label[:61] + "..."
        rows.append((f"rule {head} [s]", f"{seconds:.4f}"))
    return rows


def check_profile(asp, label):
    stages = asp.get("stages") or {}
    failures = []
    for prefix in REQUIRED_STAGE_PREFIXES:
        if not any(name.split(".")[0] == prefix for name in stages):
            failures.append(f"{label}: no '{prefix}.*' stage in the profile")
    if not asp.get("rules"):
        failures.append(f"{label}: per-rule attribution is empty")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="micro catalog only (CI smoke); full adds the solver-heavy one",
    )
    args = parser.parse_args(argv)

    failures = []
    wall, stats, asp = run_profiled(micro_repo(), list(FAMILY_WORKLOAD_16))
    failures += check_profile(asp, "micro")
    rows = [
        ("catalog / workload", f"micro / {len(FAMILY_WORKLOAD_16)} specs"),
        ("join strategy", stats.get("join_strategy", "?")),
    ] + stage_rows(asp, wall)

    if not args.quick:
        heavy_wall, heavy_stats, heavy_asp = run_profiled(
            solver_heavy_repo(), list(SOLVER_HEAVY_WORKLOAD)
        )
        failures += check_profile(heavy_asp, "solver-heavy")
        rows.append(("", ""))
        rows += [
            (
                "catalog / workload",
                f"solver-heavy / {len(SOLVER_HEAVY_WORKLOAD)} specs",
            ),
            ("join strategy", heavy_stats.get("join_strategy", "?")),
        ] + stage_rows(heavy_asp, heavy_wall)

    record(
        "profile",
        "Per-stage concretization profile (profile='rules')",
        ("metric", "value"),
        rows,
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    stages = asp.get("stages") or {}
    print(
        f"OK: {len(stages)} stages, {len(asp.get('counters') or {})} counters, "
        f"{len(asp.get('rules') or {})} rules attributed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
