#!/usr/bin/env python3
"""CI smoke test for the concretization service over real HTTP.

Boots a server on an ephemeral loopback port against the builtin catalog and
drives the request lifecycle end to end:

1. ``GET /v1/healthz`` answers ``ok``;
2. ``POST /v1/concretize`` solves a real spec (``zlib``) and returns a
   concrete result payload;
3. a request with a tiny deadline against an artificially slowed solver
   returns **504** and the tenant's worker permits are all back afterwards
   (the solve was cancelled, not leaked);
4. a repeat of the first request still succeeds (the worker pool survived);
5. an unsatisfiable spec returns **422** whose body carries the minimal
   conflict core (structured constraint provenance, not just prose);
6. ``GET /v1/stats`` reflects exactly the traffic driven;
7. server and service shut down cleanly (no lingering non-daemon threads).

With ``--workers N`` it instead exercises the multi-process warm-start
contract (ISSUE 9 tentpole): N server processes share one ``cache_dir``;
the first request grounds cold and publishes an mmap ground snapshot, and
every later worker reaches warm state by *attaching* it — asserted as
``service.snapshot.cold_grounds == 0`` with ``attaches >= 1`` on the
second worker's ``/v1/stats``.

Exits non-zero on the first violated expectation.  Run from the repository
root (CI does)::

    PYTHONPATH=src python tools/smoke_service.py
    PYTHONPATH=src python tools/smoke_service.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.spack.concretize.session import ConcretizationSession
from repro.spack.service import ConcretizationServer, ConcretizationService


def request(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if data else {}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}


def main() -> int:
    failures = []

    def check(label, condition, detail=""):
        status = "ok" if condition else "FAIL"
        print(f"[smoke-service] {label}: {status}{' — ' + detail if detail and not condition else ''}")
        if not condition:
            failures.append(label)

    service = ConcretizationService(max_concurrency=2, default_deadline_s=60.0)
    with service, ConcretizationServer(service, port=0) as server:
        status, body = request(f"{server.url}/v1/healthz")
        check("healthz answers ok", status == 200 and body.get("status") == "ok",
              f"status={status} body={body}")

        status, body = request(f"{server.url}/v1/concretize", {"spec": "zlib"})
        check("concretize zlib succeeds",
              status == 200 and body.get("result", {}).get("concrete", "").startswith("zlib"),
              f"status={status} body={body}")

        # deadline: slow every solve down, then ask for an impossible deadline
        original = ConcretizationSession._solve_uncached
        slow = [True]

        def maybe_slow(self, spec, worker=False):
            if slow[0]:
                time.sleep(2.0)
            return original(self, spec, worker=worker)

        ConcretizationSession._solve_uncached = maybe_slow
        try:
            start = time.perf_counter()
            status, body = request(
                f"{server.url}/v1/concretize",
                {"spec": "bzip2", "deadline_s": 0.3},
            )
            elapsed = time.perf_counter() - start
            check("deadline-exceeded returns 504", status == 504,
                  f"status={status} body={body}")
            check("504 arrives at ~the deadline, not after the solve",
                  elapsed < 1.5, f"elapsed={elapsed:.2f}s")
            tenant = service._tenant(None)
            check("cancelled solve returned its worker permits",
                  tenant.async_session._semaphore._value == service.max_concurrency)
        finally:
            slow[0] = False
            ConcretizationSession._solve_uncached = original

        status, body = request(f"{server.url}/v1/concretize", {"spec": "zlib"})
        check("service still answers after the 504", status == 200,
              f"status={status}")

        status, body = request(
            f"{server.url}/v1/concretize", {"spec": "zlib@99.99"}
        )
        error = body.get("error", {})
        detail = error.get("detail", {}) if isinstance(error, dict) else {}
        check("unsatisfiable spec returns 422 with its conflict core",
              status == 422
              and error.get("code") == "unsolvable"
              and [entry.get("constraint")
                   for entry in detail.get("conflict_core", [])]
              == ['zlib: requested spec "zlib @99.99"']
              and detail.get("specs") == ["zlib @99.99"],
              f"status={status} body={body}")

        status, body = request(f"{server.url}/v1/stats")
        counters = body.get("service", {})
        check("stats reflect the traffic",
              status == 200
              and counters.get("requests") == 4
              and counters.get("deadline_exceeded") == 1
              and counters.get("unsolvable") == 1
              and counters.get("in_flight") == 0,
              f"counters={counters}")

    check("clean shutdown", service.healthz()["status"] == "stopped")

    if failures:
        print(f"[smoke-service] {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("[smoke-service] all checks passed")
    return 0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(url: str, proc: subprocess.Popen, timeout: float = 60.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            return False
        try:
            status, body = request(f"{url}/v1/healthz")
            if status == 200 and body.get("status") == "ok":
                return True
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            pass
        time.sleep(0.2)
    return False


def multi_worker_main(workers: int) -> int:
    """N server processes, one cache_dir: later workers must attach, not ground."""
    failures = []

    def check(label, condition, detail=""):
        status = "ok" if condition else "FAIL"
        print(f"[smoke-service] {label}: {status}"
              f"{' — ' + detail if detail and not condition else ''}")
        if not condition:
            failures.append(label)

    cache_dir = tempfile.mkdtemp(prefix="smoke-service-snap-")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    procs, urls = [], []
    try:
        for _ in range(workers):
            port = free_port()
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.spack.service",
                 "--port", str(port), "--cache-dir", cache_dir, "--quiet"],
                env=env,
            ))
            urls.append(f"http://127.0.0.1:{port}")
        for index, url in enumerate(urls):
            check(f"worker {index} comes up healthy",
                  wait_healthy(url, procs[index]))
        if failures:
            return 1

        # worker 0 grounds cold and publishes the snapshot
        status, body = request(f"{urls[0]}/v1/concretize", {"spec": "zlib"})
        check("worker 0 concretizes zlib", status == 200,
              f"status={status} body={body}")
        status, body = request(f"{urls[0]}/v1/stats")
        snap = body.get("service", {}).get("snapshot", {})
        check("worker 0 ground cold and wrote the snapshot",
              status == 200 and snap.get("cold_grounds", 0) >= 1
              and snap.get("writes", 0) >= 1,
              f"snapshot={snap}")

        # every other worker answers a *new* spec of the same family: its
        # base must come from the shared snapshot, with zero grounding
        versions = ["1.2.11", "1.2.8", "1.2.3"]
        for index, url in enumerate(urls[1:], start=1):
            spec = f"zlib@{versions[(index - 1) % len(versions)]}"
            status, body = request(f"{url}/v1/concretize", {"spec": spec})
            check(f"worker {index} concretizes {spec}", status == 200,
                  f"status={status} body={body}")
            status, body = request(f"{url}/v1/stats")
            snap = body.get("service", {}).get("snapshot", {})
            check(f"worker {index} attached the snapshot with zero grounding",
                  status == 200 and snap.get("cold_grounds") == 0
                  and snap.get("attaches", 0) >= 1,
                  f"snapshot={snap}")
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        shutil.rmtree(cache_dir, ignore_errors=True)

    if failures:
        print(f"[smoke-service] {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print(f"[smoke-service] all multi-worker checks passed ({workers} workers)")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="run the multi-process warm-start smoke with N "
                             "server processes sharing one snapshot cache")
    args = parser.parse_args()
    if args.workers > 1:
        raise SystemExit(multi_worker_main(args.workers))
    raise SystemExit(main())
