#!/usr/bin/env python3
"""CI smoke test for the concretization service over real HTTP.

Boots a server on an ephemeral loopback port against the builtin catalog and
drives the request lifecycle end to end:

1. ``GET /v1/healthz`` answers ``ok``;
2. ``POST /v1/concretize`` solves a real spec (``zlib``) and returns a
   concrete result payload;
3. a request with a tiny deadline against an artificially slowed solver
   returns **504** and the tenant's worker permits are all back afterwards
   (the solve was cancelled, not leaked);
4. a repeat of the first request still succeeds (the worker pool survived);
5. an unsatisfiable spec returns **422** whose body carries the minimal
   conflict core (structured constraint provenance, not just prose);
6. ``GET /v1/stats`` reflects exactly the traffic driven;
7. server and service shut down cleanly (no lingering non-daemon threads).

Exits non-zero on the first violated expectation.  Run from the repository
root (CI does)::

    PYTHONPATH=src python tools/smoke_service.py
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from repro.spack.concretize.session import ConcretizationSession
from repro.spack.service import ConcretizationServer, ConcretizationService


def request(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if data else {}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}


def main() -> int:
    failures = []

    def check(label, condition, detail=""):
        status = "ok" if condition else "FAIL"
        print(f"[smoke-service] {label}: {status}{' — ' + detail if detail and not condition else ''}")
        if not condition:
            failures.append(label)

    service = ConcretizationService(max_concurrency=2, default_deadline_s=60.0)
    with service, ConcretizationServer(service, port=0) as server:
        status, body = request(f"{server.url}/v1/healthz")
        check("healthz answers ok", status == 200 and body.get("status") == "ok",
              f"status={status} body={body}")

        status, body = request(f"{server.url}/v1/concretize", {"spec": "zlib"})
        check("concretize zlib succeeds",
              status == 200 and body.get("result", {}).get("concrete", "").startswith("zlib"),
              f"status={status} body={body}")

        # deadline: slow every solve down, then ask for an impossible deadline
        original = ConcretizationSession._solve_uncached
        slow = [True]

        def maybe_slow(self, spec, worker=False):
            if slow[0]:
                time.sleep(2.0)
            return original(self, spec, worker=worker)

        ConcretizationSession._solve_uncached = maybe_slow
        try:
            start = time.perf_counter()
            status, body = request(
                f"{server.url}/v1/concretize",
                {"spec": "bzip2", "deadline_s": 0.3},
            )
            elapsed = time.perf_counter() - start
            check("deadline-exceeded returns 504", status == 504,
                  f"status={status} body={body}")
            check("504 arrives at ~the deadline, not after the solve",
                  elapsed < 1.5, f"elapsed={elapsed:.2f}s")
            tenant = service._tenant(None)
            check("cancelled solve returned its worker permits",
                  tenant.async_session._semaphore._value == service.max_concurrency)
        finally:
            slow[0] = False
            ConcretizationSession._solve_uncached = original

        status, body = request(f"{server.url}/v1/concretize", {"spec": "zlib"})
        check("service still answers after the 504", status == 200,
              f"status={status}")

        status, body = request(
            f"{server.url}/v1/concretize", {"spec": "zlib@99.99"}
        )
        core = body.get("conflict_core", [])
        check("unsatisfiable spec returns 422 with its conflict core",
              status == 422
              and [entry.get("constraint") for entry in core]
              == ['zlib: requested spec "zlib @99.99"']
              and body.get("specs") == ["zlib @99.99"],
              f"status={status} body={body}")

        status, body = request(f"{server.url}/v1/stats")
        counters = body.get("service", {})
        check("stats reflect the traffic",
              status == 200
              and counters.get("requests") == 4
              and counters.get("deadline_exceeded") == 1
              and counters.get("unsolvable") == 1
              and counters.get("in_flight") == 0,
              f"counters={counters}")

    check("clean shutdown", service.healthz()["status"] == "stopped")

    if failures:
        print(f"[smoke-service] {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("[smoke-service] all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
