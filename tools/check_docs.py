#!/usr/bin/env python3
"""Docs symbol check: fail if docs reference code that does not exist.

Scans ``docs/*.md`` (and ``README.md``) for backtick-quoted code references
— plus the *module docstrings* of every runnable example under
``examples/*.py``, which are documentation in the same sense — and verifies
each against the source tree, so neither can silently rot as the code
evolves.  Checked reference shapes:

* ``repro.foo.bar`` / ``repro.foo.bar.Baz`` — the module path must resolve
  under ``src/``, and a trailing non-module component must be defined
  somewhere in it;
* ``SomeClass`` / ``SomeClass.method`` — a ``class SomeClass`` must exist in
  ``src/``, and the method must be defined somewhere in ``src/``;
* ``some_function()`` — a ``def some_function`` must exist in ``src/``;
* ``ALL_CAPS_CONSTANT`` — an assignment must exist in ``src/``.

It also holds the docs to the *curated public surface*: every
``from repro.spack[...] import X`` inside a fenced code block must name an
``X`` listed in that package's ``__all__`` (so the README can only teach
supported API), and every ``__all__`` entry must itself resolve in ``src/``
(so the export list cannot rot either).

Everything else inside backticks (shell commands, flags, file paths, plain
words) is ignored.  Run from the repository root (CI does)::

    python tools/check_docs.py
"""

from __future__ import annotations

import ast
import builtins
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]
EXAMPLE_FILES = sorted((REPO_ROOT / "examples").glob("*.py"))

BACKTICK = re.compile(r"`([^`\n]+)`")
MODULE_PATH = re.compile(r"^repro(\.\w+)+$")
CLASS_REF = re.compile(r"^[A-Z][A-Za-z0-9]*(\.\w+)*$")
FUNCTION_CALL = re.compile(r"^[a-z_][a-z0-9_]*\(\)$")
CONSTANT = re.compile(r"^[A-Z][A-Z0-9_]+$")

#: Well-known names docs may reference that live in the standard library, not
#: in src/. Builtins (``None``, ``repr``, ...) are detected automatically.
STDLIB_ALLOWLIST = {
    "BrokenProcessPool",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
    "OrderedDict",
    "Path",
}

#: Environment variables the docs may reference. They look like constants
#: but are read via ``os.environ``, so the assignment check cannot see them.
ENV_ALLOWLIST = {
    "BENCH_NOISE_BAND",
    "BENCH_TREND_NUMBER",
    "PYTHONPATH",
}


def load_sources() -> str:
    """All Python source under src/, concatenated (grep corpus)."""
    chunks = []
    for path in sorted(SRC.rglob("*.py")):
        chunks.append(path.read_text(encoding="utf-8"))
    return "\n".join(chunks)


def module_exists(dotted: str) -> bool:
    parts = dotted.split(".")
    path = SRC.joinpath(*parts)
    return path.with_suffix(".py").is_file() or (path / "__init__.py").is_file()


def check_reference(token: str, corpus: str):
    """Return None if ``token`` resolves, else a reason string."""
    root = token.split(".")[0].rstrip("()")
    if root in STDLIB_ALLOWLIST or hasattr(builtins, root):
        return None
    if MODULE_PATH.match(token):
        parts = token.split(".")
        # longest prefix that is a module; the rest must be defined symbols
        for cut in range(len(parts), 0, -1):
            if module_exists(".".join(parts[:cut])):
                for symbol in parts[cut:]:
                    if not defined_in(symbol, corpus):
                        return f"symbol {symbol!r} not found in src/"
                return None
        return "module path does not resolve under src/"
    if FUNCTION_CALL.match(token):
        name = token[:-2]
        if not re.search(
            rf"^\s*(?:async )?def {re.escape(name)}\b", corpus, re.MULTILINE
        ):
            return f"no 'def {name}' in src/"
        return None
    if CLASS_REF.match(token):
        first, *rest = token.split(".")
        if not re.search(rf"^\s*class {re.escape(first)}\b", corpus, re.MULTILINE):
            return f"no 'class {first}' in src/"
        for symbol in rest:
            if not defined_in(symbol, corpus):
                return f"symbol {symbol!r} not found in src/"
        return None
    if CONSTANT.match(token):
        if token in ENV_ALLOWLIST:
            return None
        if not re.search(rf"^\s*{re.escape(token)}\s*[:=]", corpus, re.MULTILINE):
            return f"no assignment to {token} in src/"
        return None
    return None  # not a code reference shape we check


def defined_in(symbol: str, corpus: str) -> bool:
    pattern = (
        rf"^\s*(?:async def|def|class) {re.escape(symbol)}\b"
        rf"|^\s*(?:self\.)?{re.escape(symbol)}\s*[:=]"
        rf"|^\s*{re.escape(symbol)}\s*[:=]"
    )
    return re.search(pattern, corpus, re.MULTILINE) is not None


def scan_text(source: pathlib.Path, text: str, corpus: str, failures: list) -> int:
    """Check every backtick-quoted reference in ``text``; returns the count
    of references that matched a checked shape."""
    # drop fenced code blocks: they hold shell sessions and pseudo-code
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    checked = 0
    seen = set()
    for match in BACKTICK.finditer(text):
        # strip the Sphinx short-name marker (``~repro.spack.store.SolveCache``)
        token = match.group(1).strip().lstrip("~")
        if token in seen:
            continue
        seen.add(token)
        reason = check_reference(token, corpus)
        if reason is None:
            if MODULE_PATH.match(token) or FUNCTION_CALL.match(token) or \
                    CLASS_REF.match(token) or CONSTANT.match(token):
                checked += 1
        else:
            failures.append((source.relative_to(REPO_ROOT), token, reason))
    return checked


#: Packages whose ``__all__`` is the supported public surface; imports in
#: documentation code blocks must stay within it.
PUBLIC_PACKAGES = {
    "repro": SRC / "repro" / "__init__.py",
    "repro.spack": SRC / "repro" / "spack" / "__init__.py",
    "repro.spack.concretize": SRC / "repro" / "spack" / "concretize" / "__init__.py",
    "repro.spack.service": SRC / "repro" / "spack" / "service" / "__init__.py",
}

FENCED_BLOCK = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
FROM_IMPORT = re.compile(r"^\s*from\s+(repro[\w.]*)\s+import\s+([^#\n]+)", re.MULTILINE)


def load_exports() -> dict:
    """``{package: set(__all__)}`` for the curated public packages."""
    exports = {}
    for module, path in PUBLIC_PACKAGES.items():
        names = set()
        for node in ast.walk(ast.parse(path.read_text(encoding="utf-8"))):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                names = set(ast.literal_eval(node.value))
        exports[module] = names
    return exports


def check_exports_resolve(exports: dict, corpus: str, failures: list) -> int:
    """Every ``__all__`` entry must be defined somewhere in src/."""
    checked = 0
    for module, names in exports.items():
        for name in sorted(names):
            checked += 1
            if not defined_in(name, corpus):
                failures.append(
                    (PUBLIC_PACKAGES[module].relative_to(REPO_ROOT), name,
                     f"exported by {module}.__all__ but not defined in src/")
                )
    return checked


def check_imports(source: pathlib.Path, text: str, exports: dict, failures: list) -> int:
    """Imports in fenced doc code blocks must stay inside ``__all__``.

    Example scripts (``.py``) are scanned whole: they are runnable docs.
    """
    checked = 0
    blocks = FENCED_BLOCK.findall(text) if source.suffix == ".md" else [text]
    for block in blocks:
        for module, imported in FROM_IMPORT.findall(block):
            if module not in exports:
                continue  # deep-module imports are checked as dotted paths
            for name in imported.replace("(", "").replace(")", "").split(","):
                name = name.split(" as ")[0].strip()
                if not name:
                    continue
                checked += 1
                if name not in exports[module]:
                    failures.append(
                        (source.relative_to(REPO_ROOT),
                         f"from {module} import {name}",
                         f"{name!r} is not in {module}.__all__")
                    )
    return checked


def example_docstring(path: pathlib.Path) -> str:
    """The module docstring of one example (empty when absent/unparsable)."""
    try:
        module = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return ""
    return ast.get_docstring(module) or ""


def main() -> int:
    corpus = load_sources()
    exports = load_exports()
    failures = []
    checked = check_exports_resolve(exports, corpus, failures)
    for doc in DOC_FILES:
        if not doc.is_file():
            continue
        text = doc.read_text(encoding="utf-8")
        checked += scan_text(doc, text, corpus, failures)
        checked += check_imports(doc, text, exports, failures)
    for example in EXAMPLE_FILES:
        checked += scan_text(example, example_docstring(example), corpus, failures)
        checked += check_imports(
            example, example.read_text(encoding="utf-8"), exports, failures
        )

    for doc, token, reason in failures:
        print(f"FAIL {doc}: `{token}` — {reason}", file=sys.stderr)
    print(f"checked {checked} code references across {len(DOC_FILES)} docs "
          f"and {len(EXAMPLE_FILES)} example docstrings, {len(failures)} stale")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
