"""A CDCL (conflict-driven clause learning) SAT solver with linear constraints.

This is the propositional engine underneath the ASP system, playing the role
of *clasp* in the paper.  Features:

* two-watched-literal clause propagation,
* counter-based propagation for linear (cardinality / pseudo-Boolean)
  constraints with non-negative coefficients,
* 1UIP conflict analysis with clause learning,
* VSIDS-style activity heuristic (or a fixed variable order), phase saving,
* Luby or geometric restarts,
* incremental solving: clauses and constraints may be added between calls to
  :meth:`CDCLSolver.solve`, and assumptions are supported (used by the
  optimization driver to guard tentative objective bounds).

Literals are integers in DIMACS convention: ``+v`` is variable ``v`` true,
``-v`` is variable ``v`` false.  Variables are numbered from 1.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asp.errors import SolveError

_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1


def _lit_index(lit: int) -> int:
    """Map a literal to a dense non-negative index (for watch lists)."""
    return (lit << 1) if lit > 0 else ((-lit << 1) | 1)


class Clause:
    """A disjunction of literals.  The first two literals are watched."""

    __slots__ = ("lits", "learnt")

    def __init__(self, lits: List[int], learnt: bool = False):
        self.lits = lits
        self.learnt = learnt

    def __repr__(self):
        return f"Clause({self.lits})"


class LinearConstraint:
    """A constraint ``sum(coeff_i * [lit_i is true]) >= bound``.

    All coefficients must be positive.  Propagation is counter-based: whenever
    a literal of the constraint becomes false we recompute the remaining slack
    and propagate literals that have become necessary.
    """

    __slots__ = ("lits", "coeffs", "bound")

    def __init__(self, lits: List[int], coeffs: List[int], bound: int):
        self.lits = lits
        self.coeffs = coeffs
        self.bound = bound

    def __repr__(self):
        terms = " + ".join(f"{c}*({l})" for c, l in zip(self.coeffs, self.lits))
        return f"LinearConstraint({terms} >= {self.bound})"


class SolverStatistics:
    """Counters exposed through :meth:`CDCLSolver.statistics`."""

    def __init__(self):
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.max_decision_level = 0
        self.solve_calls = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "max_decision_level": self.max_decision_level,
            "solve_calls": self.solve_calls,
        }


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while True:
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << k) + 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1


class CDCLSolver:
    """Conflict-driven clause-learning solver with an incremental interface."""

    def __init__(
        self,
        heuristic: str = "vsids",
        default_phase: bool = False,
        restart_strategy: str = "luby",
        restart_base: int = 100,
        var_decay: float = 0.95,
    ):
        self.heuristic = heuristic
        self.default_phase = default_phase
        self.restart_strategy = restart_strategy
        self.restart_base = restart_base
        self.var_decay = var_decay

        self.num_vars = 0
        self.assigns: List[int] = [_UNASSIGNED]  # index 0 unused
        self.levels: List[int] = [0]
        self.reasons: List[Optional[Clause]] = [None]
        self.saved_phase: List[bool] = [default_phase]
        self.activity: List[float] = [0.0]

        self.clauses: List[Clause] = []
        self.learnts: List[Clause] = []
        self.linears: List[LinearConstraint] = []

        # watch lists indexed by _lit_index(l): traversed when l becomes FALSE
        self.watches: List[List[Clause]] = [[], []]
        self.linear_watches: List[List[LinearConstraint]] = [[], []]

        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagation_queue_head = 0

        self.var_inc = 1.0
        self.ok = True  # False once the clause set is unsatisfiable at level 0
        self.stats = SolverStatistics()
        self._model: Optional[List[int]] = None
        self.conflict_budget: Optional[int] = None
        # assumptions involved in the last UNSAT answer (minisat analyzeFinal);
        # empty when the formula is unsatisfiable regardless of assumptions
        self.failed_assumptions: List[int] = []

        # lazy max-activity heap of (-activity, var)
        self._order_heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self.assigns.append(_UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(None)
        self.saved_phase.append(self.default_phase)
        self.activity.append(0.0)
        self.watches.append([])
        self.watches.append([])
        self.linear_watches.append([])
        self.linear_watches.append([])
        heapq.heappush(self._order_heap, (0.0, self.num_vars))
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause.  Returns False if the solver became UNSAT at level 0."""
        if not self.ok:
            return False
        if self.decision_level() != 0:
            self.backtrack(0)

        # Simplify: remove duplicates and false literals, detect tautologies.
        seen = set()
        simplified: List[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if -lit in seen:
                return True  # tautology
            value = self.lit_value(lit)
            if value == _TRUE:
                return True  # already satisfied at level 0
            if value == _FALSE:
                continue
            seen.add(lit)
            simplified.append(lit)

        if not simplified:
            self.ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self.ok = False
                return False
            conflict = self.propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True

        clause = Clause(simplified)
        self.clauses.append(clause)
        self._watch_clause(clause)
        return True

    def add_linear_geq(self, lits: Sequence[int], coeffs: Sequence[int], bound: int) -> bool:
        """Add ``sum(coeff_i * lit_i) >= bound`` (coefficients must be >= 0)."""
        if not self.ok:
            return False
        if self.decision_level() != 0:
            self.backtrack(0)

        filtered_lits: List[int] = []
        filtered_coeffs: List[int] = []
        for lit, coeff in zip(lits, coeffs):
            if coeff < 0:
                raise SolveError("linear constraints require non-negative coefficients")
            if coeff == 0:
                continue
            value = self.lit_value(lit)
            if value == _TRUE:
                bound -= coeff
                continue
            if value == _FALSE:
                continue
            filtered_lits.append(lit)
            filtered_coeffs.append(coeff)

        if bound <= 0:
            return True  # trivially satisfied
        if sum(filtered_coeffs) < bound:
            self.ok = False
            return False

        constraint = LinearConstraint(filtered_lits, filtered_coeffs, bound)
        self.linears.append(constraint)
        for lit in filtered_lits:
            # stored under the literal itself; traversed when that literal
            # becomes false (same convention as clause watch lists)
            self.linear_watches[_lit_index(lit)].append(constraint)

        # Propagate anything already forced at level 0.
        conflict_clause = self._linear_propagate(constraint)
        if conflict_clause is not None:
            self.ok = False
            return False
        conflict = self.propagate()
        if conflict is not None:
            self.ok = False
            return False
        return True

    def add_at_most(self, lits: Sequence[int], k: int) -> bool:
        """Add ``at most k of lits are true`` as a linear constraint."""
        negated = [-lit for lit in lits]
        return self.add_linear_geq(negated, [1] * len(negated), len(negated) - k)

    def add_at_least(self, lits: Sequence[int], k: int) -> bool:
        """Add ``at least k of lits are true``."""
        return self.add_linear_geq(list(lits), [1] * len(lits), k)

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def decision_level(self) -> int:
        return len(self.trail_lim)

    def var_value(self, var: int) -> int:
        return self.assigns[var]

    def lit_value(self, lit: int) -> int:
        value = self.assigns[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        if lit > 0:
            return value
        return _TRUE if value == _FALSE else _FALSE

    def model_value(self, var: int) -> bool:
        if self._model is None:
            raise SolveError("no model available")
        return self._model[var] == _TRUE

    def model(self) -> List[bool]:
        if self._model is None:
            raise SolveError("no model available")
        return [False] + [self._model[v] == _TRUE for v in range(1, self.num_vars + 1)]

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _watch_clause(self, clause: Clause):
        self.watches[_lit_index(clause.lits[0])].append(clause)
        self.watches[_lit_index(clause.lits[1])].append(clause)

    def _enqueue(self, lit: int, reason: Optional[Clause]) -> bool:
        value = self.lit_value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self.assigns[var] = _TRUE if lit > 0 else _FALSE
        self.levels[var] = self.decision_level()
        self.reasons[var] = reason
        self.trail.append(lit)
        return True

    def propagate(self) -> Optional[Clause]:
        """Propagate all enqueued assignments; return a conflict clause or None."""
        while self.propagation_queue_head < len(self.trail):
            lit = self.trail[self.propagation_queue_head]
            self.propagation_queue_head += 1
            self.stats.propagations += 1

            false_lit = -lit
            conflict = self._propagate_clauses(false_lit)
            if conflict is not None:
                return conflict
            conflict = self._propagate_linears(false_lit)
            if conflict is not None:
                return conflict
        return None

    def _propagate_clauses(self, false_lit: int) -> Optional[Clause]:
        watch_list = self.watches[_lit_index(false_lit)]
        index = 0
        while index < len(watch_list):
            clause = watch_list[index]
            lits = clause.lits
            # Ensure the false literal is at position 1.
            if lits[0] == false_lit:
                lits[0], lits[1] = lits[1], lits[0]
            first = lits[0]
            if self.lit_value(first) == _TRUE:
                index += 1
                continue
            # Look for a replacement watch.
            found = False
            for position in range(2, len(lits)):
                if self.lit_value(lits[position]) != _FALSE:
                    lits[1], lits[position] = lits[position], lits[1]
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    self.watches[_lit_index(lits[1])].append(clause)
                    found = True
                    break
            if found:
                continue
            # No replacement: clause is unit or conflicting.
            if not self._enqueue(first, clause):
                return clause
            index += 1
        return None

    def _propagate_linears(self, false_lit: int) -> Optional[Clause]:
        for constraint in self.linear_watches[_lit_index(false_lit)]:
            conflict = self._linear_propagate(constraint)
            if conflict is not None:
                return conflict
        return None

    def _linear_propagate(self, constraint: LinearConstraint) -> Optional[Clause]:
        """Check/propagate one linear constraint.  Returns a conflict clause."""
        max_possible = 0
        false_lits: List[int] = []
        for lit, coeff in zip(constraint.lits, constraint.coeffs):
            if self.lit_value(lit) == _FALSE:
                false_lits.append(lit)
            else:
                max_possible += coeff
        if max_possible < constraint.bound:
            # Conflict: at least one of the falsified literals must be true.
            return Clause(list(false_lits))
        slack = max_possible - constraint.bound
        for lit, coeff in zip(constraint.lits, constraint.coeffs):
            if coeff > slack and self.lit_value(lit) == _UNASSIGNED:
                reason = Clause([lit] + false_lits)
                if not self._enqueue(lit, reason):
                    return reason
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var: int):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _decay_activities(self):
        self.var_inc /= self.var_decay

    def analyze(self, conflict: Clause) -> Tuple[List[int], int]:
        """1UIP conflict analysis.  Returns (learnt clause, backjump level).

        Precondition: at least one literal of ``conflict`` was assigned at the
        current decision level (the solve loop guarantees this by backtracking
        to the highest level present in the conflict before calling analyze).
        """
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        resolved_lit: Optional[int] = None
        clause = conflict
        index = len(self.trail) - 1
        current_level = self.decision_level()

        while True:
            for q in clause.lits:
                var = abs(q)
                if resolved_lit is not None and var == abs(resolved_lit):
                    continue
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)

            # Select the next literal on the trail to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            resolved_lit = self.trail[index]
            var = abs(resolved_lit)
            seen[var] = False
            index -= 1
            counter -= 1
            if counter <= 0:
                break
            clause = self.reasons[var]

        learnt[0] = -resolved_lit

        # Compute backjump level: highest level among the other literals.
        if len(learnt) == 1:
            backjump = 0
        else:
            max_index = 1
            for position in range(2, len(learnt)):
                if self.levels[abs(learnt[position])] > self.levels[abs(learnt[max_index])]:
                    max_index = position
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backjump = self.levels[abs(learnt[1])]
        return learnt, backjump

    # ------------------------------------------------------------------
    # Backtracking and decisions
    # ------------------------------------------------------------------

    def backtrack(self, level: int):
        if self.decision_level() <= level:
            return
        limit = self.trail_lim[level]
        for position in range(len(self.trail) - 1, limit - 1, -1):
            lit = self.trail[position]
            var = abs(lit)
            self.saved_phase[var] = lit > 0
            self.assigns[var] = _UNASSIGNED
            self.reasons[var] = None
            heapq.heappush(self._order_heap, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.propagation_queue_head = len(self.trail)

    def _pick_branch_var(self) -> Optional[int]:
        if self.heuristic == "fixed":
            for var in range(1, self.num_vars + 1):
                if self.assigns[var] == _UNASSIGNED:
                    return var
            return None
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self.assigns[var] == _UNASSIGNED:
                return var
        # Heap exhausted (stale entries): fall back to a scan.
        for var in range(1, self.num_vars + 1):
            if self.assigns[var] == _UNASSIGNED:
                return var
        return None

    def _decide(self, var: int):
        self.stats.decisions += 1
        self.trail_lim.append(len(self.trail))
        phase = self.saved_phase[var]
        lit = var if phase else -var
        self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[bool]:
        """Search for a model.

        Returns True (SAT, model available via :meth:`model`), False (UNSAT
        under the given assumptions), or None if the conflict budget was
        exhausted.
        """
        self.stats.solve_calls += 1
        self._model = None
        self.failed_assumptions = []
        if not self.ok:
            return False
        self.backtrack(0)
        conflict = self.propagate()
        if conflict is not None:
            self.ok = False
            return False

        assumptions = list(assumptions)
        restarts = 0
        conflicts_until_restart = self._next_restart_limit(0)
        conflicts_this_call = 0

        while True:
            conflict = self.propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1

                conflict_level = 0
                for lit in conflict.lits:
                    level = self.levels[abs(lit)]
                    if level > conflict_level:
                        conflict_level = level
                if conflict_level == 0:
                    self.ok = False
                    return False
                if conflict_level < self.decision_level():
                    self.backtrack(conflict_level)

                learnt, backjump = self.analyze(conflict)
                self.backtrack(backjump)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self.ok = False
                        return False
                else:
                    clause = Clause(learnt, learnt=True)
                    self.learnts.append(clause)
                    self.stats.learned_clauses += 1
                    self._watch_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._decay_activities()

                if self.conflict_budget is not None and conflicts_this_call >= self.conflict_budget:
                    self.backtrack(0)
                    return None
                if conflicts_until_restart is not None:
                    conflicts_until_restart -= 1
                    if conflicts_until_restart <= 0:
                        restarts += 1
                        self.stats.restarts += 1
                        conflicts_until_restart = self._next_restart_limit(restarts)
                        self.backtrack(0)
                continue

            if self.decision_level() > self.stats.max_decision_level:
                self.stats.max_decision_level = self.decision_level()

            # Place assumptions first (one pseudo decision level each).
            if self.decision_level() < len(assumptions):
                assumption = assumptions[self.decision_level()]
                value = self.lit_value(assumption)
                if value == _TRUE:
                    self.trail_lim.append(len(self.trail))
                    continue
                if value == _FALSE:
                    self.failed_assumptions = self._analyze_final(assumption)
                    self.backtrack(0)
                    return False
                self.stats.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(assumption, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                self._model = list(self.assigns)
                return True
            self._decide(var)

    def _analyze_final(self, failed: int) -> List[int]:
        """The subset of the current assumptions that forced ``failed`` FALSE.

        Called during assumption placement, when every assigned variable
        with a ``None`` reason above level 0 is itself an earlier assumption
        (no branch decisions have been made yet).  Walking the implication
        graph backwards from the failed assumption collects exactly the
        earlier assumptions it depends on — minisat's ``analyzeFinal``.  A
        level-0 falsification means the base formula alone refutes the
        assumption, so the core is the assumption by itself.
        """
        out = [failed]
        var = abs(failed)
        if self.levels[var] == 0:
            return out
        seen = {var}
        for position in range(len(self.trail) - 1, -1, -1):
            if not seen:
                break
            trail_var = abs(self.trail[position])
            if trail_var not in seen:
                continue
            seen.discard(trail_var)
            reason = self.reasons[trail_var]
            if reason is None:
                if trail_var != var:
                    out.append(self.trail[position])
            else:
                for lit in reason.lits:
                    lit_var = abs(lit)
                    if lit_var != trail_var and self.levels[lit_var] > 0:
                        seen.add(lit_var)
        return out

    def _next_restart_limit(self, restarts: int) -> Optional[int]:
        if self.restart_strategy == "none":
            return None
        if self.restart_strategy == "geometric":
            return int(self.restart_base * (1.5 ** restarts))
        return self.restart_base * _luby(restarts + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        stats = self.stats.as_dict()
        stats.update(
            {
                "variables": self.num_vars,
                "clauses": len(self.clauses),
                "linear_constraints": len(self.linears),
            }
        )
        return stats
