"""Stable-model enforcement via lazy unfounded-set checking.

The CDCL solver works on the Clark completion of the program, whose models
("supported models") are a superset of the stable models whenever the program
has positive recursion (loops).  The paper's encoding *does* have loops — the
classic example being circular possible dependencies such as
``mpilander -> cmake -> qt -> valgrind -> mpi`` — so supported-but-unstable
models must be rejected.

We use the ASSAT-style lazy approach: whenever the solver reports a model, we
compute the least model of the program reduct.  Atoms that are true in the
solver model but not derivable are *unfounded*; for each we add a loop nogood
("the atom implies one of its external supporting bodies") and ask the solver
to continue.  This is sound, complete, and terminates because there are
finitely many loop nogoods.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.asp.completion import CompletedProgram


def well_founded_atoms(completed: CompletedProgram, model_atoms: Set[int]) -> Set[int]:
    """Least fixpoint of derivable atoms given the solver model.

    A rule (or choice) fires when its body literal is true in the model and
    all its positive body atoms have already been derived; derived heads are
    limited to atoms true in the model because the model satisfies every rule.
    """
    solver = completed.solver
    derived: Set[int] = set(completed.fact_atoms)

    # Index supports by the positive atoms they are still waiting on.
    waiting: Dict[int, List[int]] = {}
    entries = []
    queue: List[int] = []

    for atom_id in model_atoms:
        if atom_id in derived:
            continue
        for support in completed.supports.get(atom_id, []):
            if solver.model_value(abs(support.body_literal)) != (support.body_literal > 0):
                continue  # the body is not satisfied in this model
            missing = {a for a in support.positive_atoms if a not in derived}
            entry = [atom_id, missing]
            entries.append(entry)
            if not missing:
                queue.append(len(entries) - 1)
            else:
                for atom in missing:
                    waiting.setdefault(atom, []).append(len(entries) - 1)

    # Seed: propagate facts through the waiting index.
    for fact in list(derived):
        for entry_index in waiting.get(fact, []):
            entries[entry_index][1].discard(fact)
            if not entries[entry_index][1]:
                queue.append(entry_index)

    while queue:
        entry_index = queue.pop()
        head, missing = entries[entry_index]
        if missing or head in derived:
            continue
        derived.add(head)
        for waiter in waiting.get(head, []):
            waiting_entry = entries[waiter]
            waiting_entry[1].discard(head)
            if not waiting_entry[1] and waiting_entry[0] not in derived:
                queue.append(waiter)

    return derived


def find_unfounded_set(completed: CompletedProgram, model_atoms: Set[int]) -> Set[int]:
    """Atoms true in the model that have no well-founded derivation."""
    derived = well_founded_atoms(completed, model_atoms)
    return {atom_id for atom_id in model_atoms if atom_id not in derived}


def add_loop_nogoods(completed: CompletedProgram, unfounded: Set[int]) -> int:
    """Add the unfounded-set nogoods for ``unfounded``.

    The *external bodies* of an unfounded set ``U`` are the bodies of rules
    whose head lies in ``U`` but whose positive body does not touch ``U``.
    The standard loop formula states that each atom of ``U`` may only be true
    if one of those external bodies is true; all of them are false in the
    current model, so every added clause eliminates it.  Returns the number of
    clauses added.
    """
    solver = completed.solver
    external: List[int] = []
    seen: Set[int] = set()
    for atom_id in unfounded:
        for support in completed.supports.get(atom_id, []):
            if any(positive in unfounded for positive in support.positive_atoms):
                continue
            if support.body_literal not in seen:
                seen.add(support.body_literal)
                external.append(support.body_literal)

    added = 0
    for atom_id in unfounded:
        atom_var = completed.atom_to_var[atom_id]
        solver.add_clause([-atom_var] + external)
        added += 1
    return added


class StableModelEnforcer:
    """Couples a :class:`CompletedProgram` with the lazy unfounded-set loop."""

    def __init__(self, completed: CompletedProgram, enabled: bool = True):
        self.completed = completed
        self.enabled = enabled
        self.checks = 0
        self.rejected_models = 0
        self.loop_nogoods = 0

    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Solve until a *stable* model is found (or UNSAT)."""
        assumptions = list(assumptions)
        while True:
            satisfiable = self.completed.solver.solve(assumptions)
            if not satisfiable:
                return False
            if not self.enabled:
                return True
            self.checks += 1
            model_atoms = self.completed.true_atoms()
            unfounded = find_unfounded_set(self.completed, model_atoms)
            if not unfounded:
                return True
            self.rejected_models += 1
            self.loop_nogoods += add_loop_nogoods(self.completed, unfounded)

    def statistics(self) -> Dict[str, int]:
        return {
            "stability_checks": self.checks,
            "rejected_supported_models": self.rejected_models,
            "loop_nogoods": self.loop_nogoods,
        }
