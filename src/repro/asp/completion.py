"""Clark completion: translate a :class:`GroundProgram` into a CDCL instance.

Every ground atom becomes a solver variable.  Every rule body gets a *body
literal* (an auxiliary variable for bodies with more than one literal) so the
completion ("an atom is true only if one of its supporting bodies is true")
can be expressed compactly and so that the unfounded-set checker and the
optimization driver can refer to rule bodies directly.

Choice rules contribute *support* for their candidate atoms without forcing
them, plus cardinality constraints for their bounds, exactly mirroring the
semantics used by the paper's encoding (e.g. "pick exactly one version per
node", "pick at most one installed hash per package").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.errors import SolveError
from repro.asp.ground import GroundProgram
from repro.asp.solver import CDCLSolver


@dataclass(frozen=True)
class Support:
    """One way an atom can be derived: a body literal plus the body's positive
    atoms (needed by the unfounded-set check to identify external support)."""

    body_literal: int
    positive_atoms: Tuple[int, ...]


@dataclass
class ObjectiveTerm:
    """A weighted solver literal contributing to one optimization level."""

    weight: int
    variable: int
    key: Tuple = ()


@dataclass
class CompletedProgram:
    """The result of completion: a solver plus the mappings around it."""

    solver: CDCLSolver
    ground_program: GroundProgram
    atom_to_var: Dict[int, int] = field(default_factory=dict)
    var_to_atom: Dict[int, int] = field(default_factory=dict)
    supports: Dict[int, List[Support]] = field(default_factory=dict)
    fact_atoms: Set[int] = field(default_factory=set)
    objectives: Dict[int, List[ObjectiveTerm]] = field(default_factory=dict)
    objective_bases: Dict[int, int] = field(default_factory=dict)
    true_literal: int = 0
    #: suspect-group index -> selector variable, for retractable facts: the
    #: fact atoms of a group hold iff their selector is assumed true, so an
    #: unsat core over selector assumptions names the guilty fact groups
    selectors: Dict[int, int] = field(default_factory=dict)

    def variable(self, atom_id: int) -> int:
        return self.atom_to_var[atom_id]

    def true_atoms(self) -> Set[int]:
        """Atoms true in the solver's current model."""
        return {
            atom_id
            for atom_id, var in self.atom_to_var.items()
            if self.solver.model_value(var)
        }

    def level_cost(self, priority: int) -> int:
        """Cost of the current model at one priority level."""
        base = self.objective_bases.get(priority, 0)
        total = base
        for term in self.objectives.get(priority, []):
            if self.solver.model_value(term.variable):
                total += term.weight
        return total

    def cost_vector(self) -> Dict[int, int]:
        """Costs of the current model at every priority level (descending)."""
        priorities = sorted(
            set(self.objectives) | set(self.objective_bases), reverse=True
        )
        return {priority: self.level_cost(priority) for priority in priorities}


class CompletionBuilder:
    """Builds a :class:`CompletedProgram` from a :class:`GroundProgram`."""

    def __init__(
        self,
        ground_program: GroundProgram,
        solver: Optional[CDCLSolver] = None,
        retractable: Optional[Dict[int, int]] = None,
    ):
        self.ground_program = ground_program
        self.solver = solver or CDCLSolver()
        self.completed = CompletedProgram(solver=self.solver, ground_program=ground_program)
        self._body_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}
        # fact atom id -> suspect-group index; these facts are guarded by a
        # per-group selector instead of being asserted unconditionally
        self._retractable: Dict[int, int] = dict(retractable or {})

    # -- low-level helpers --------------------------------------------------

    def _atom_var(self, atom_id: int) -> int:
        var = self.completed.atom_to_var.get(atom_id)
        if var is None:
            var = self.solver.new_var()
            self.completed.atom_to_var[atom_id] = var
            self.completed.var_to_atom[var] = atom_id
        return var

    def _body_literals(self, pos: Sequence[int], neg: Sequence[int]) -> List[int]:
        literals = [self._atom_var(a) for a in pos]
        literals += [-self._atom_var(a) for a in neg]
        return literals

    def _body_literal(self, pos: Sequence[int], neg: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of the body."""
        literals = self._body_literals(pos, neg)
        if not literals:
            return self.completed.true_literal
        if len(literals) == 1:
            return literals[0]
        key = (tuple(sorted(pos)), tuple(sorted(neg)))
        cached = self._body_cache.get(key)
        if cached is not None:
            return cached
        aux = self.solver.new_var()
        for literal in literals:
            self.solver.add_clause([-aux, literal])
        self.solver.add_clause([aux] + [-literal for literal in literals])
        self._body_cache[key] = aux
        return aux

    # -- build steps ------------------------------------------------------------

    def build(self) -> CompletedProgram:
        self._create_true_constant()
        self._intern_all_atoms()
        self._add_retractable_support()
        self._add_facts()
        self._add_normal_rules()
        self._add_choice_rules()
        self._add_constraints()
        self._add_completion_clauses()
        self._add_objectives()
        return self.completed

    def _create_true_constant(self):
        true_var = self.solver.new_var()
        self.solver.add_clause([true_var])
        self.completed.true_literal = true_var

    def _intern_all_atoms(self):
        for atom_id, _ in self.ground_program.atoms.atoms():
            self._atom_var(atom_id)

    def _add_facts(self):
        for atom_id in self.ground_program.facts:
            if atom_id in self._retractable:
                continue  # guarded by a selector, not asserted unconditionally
            self.completed.fact_atoms.add(atom_id)
            self.solver.add_clause([self._atom_var(atom_id)])

    def _add_retractable_support(self):
        """Selector-guarded support for retractable atoms.

        A retractable atom is true iff its group's selector is (assumed)
        true; the selector acts as external support so the unfounded-set
        check treats the atom like any derived one.
        """
        for atom_id, group in sorted(self._retractable.items()):
            selector = self.completed.selectors.get(group)
            if selector is None:
                selector = self.solver.new_var()
                self.completed.selectors[group] = selector
            self.solver.add_clause([-selector, self._atom_var(atom_id)])
            self.completed.supports.setdefault(atom_id, []).append(
                Support(selector, ())
            )

    def _add_normal_rules(self):
        for rule in self.ground_program.rules:
            head_var = self._atom_var(rule.head)
            body_literal = self._body_literal(rule.pos, rule.neg)
            self.solver.add_clause([-body_literal, head_var])
            self.completed.supports.setdefault(rule.head, []).append(
                Support(body_literal, tuple(rule.pos))
            )

    def _add_choice_rules(self):
        for choice in self.ground_program.choices:
            body_literal = self._body_literal(choice.pos, choice.neg)
            candidates: List[int] = []
            seen: Set[int] = set()
            for atom_id in choice.atoms:
                if atom_id in seen:
                    continue
                seen.add(atom_id)
                candidates.append(atom_id)
                self.completed.supports.setdefault(atom_id, []).append(
                    Support(body_literal, tuple(choice.pos))
                )
            candidate_vars = [self._atom_var(a) for a in candidates]
            count = len(candidate_vars)

            lower = choice.lower
            upper = choice.upper
            if lower is not None and lower > 0:
                if lower > count:
                    # Body must never hold: the bound is unreachable.
                    self.solver.add_clause([-body_literal])
                else:
                    self.solver.add_linear_geq(
                        candidate_vars + [-body_literal],
                        [1] * count + [lower],
                        lower,
                    )
            if upper is not None and upper < count:
                slack_needed = count - upper
                self.solver.add_linear_geq(
                    [-v for v in candidate_vars] + [-body_literal],
                    [1] * count + [slack_needed],
                    slack_needed,
                )

    def _add_constraints(self):
        for constraint in self.ground_program.constraints:
            clause = [-self._atom_var(a) for a in constraint.pos]
            clause += [self._atom_var(a) for a in constraint.neg]
            self.solver.add_clause(clause)

    def _add_completion_clauses(self):
        for atom_id, _ in self.ground_program.atoms.atoms():
            if atom_id in self.completed.fact_atoms:
                continue
            atom_var = self._atom_var(atom_id)
            supports = self.completed.supports.get(atom_id, [])
            if not supports:
                self.solver.add_clause([-atom_var])
                continue
            clause = [-atom_var] + [s.body_literal for s in supports]
            self.solver.add_clause(clause)

    def _add_objectives(self):
        grouped: Dict[Tuple, List] = {}
        for literal in self.ground_program.minimize_literals:
            grouped.setdefault(literal.key, []).append(literal)

        for key, elements in grouped.items():
            priority = elements[0].priority
            weight = elements[0].weight
            if weight < 0:
                raise SolveError("negative minimize weights are not supported")
            if weight == 0:
                continue

            unconditional = any(not e.pos and not e.neg for e in elements)
            if unconditional:
                base = self.completed.objective_bases.get(priority, 0)
                self.completed.objective_bases[priority] = base + weight
                continue

            # One objective variable per unique key; it is true iff at least
            # one of the element conditions holds.
            objective_var = self.solver.new_var()
            condition_literals: List[int] = []
            for element in elements:
                body_literal = self._body_literal(element.pos, element.neg)
                condition_literals.append(body_literal)
                self.solver.add_clause([-body_literal, objective_var])
            self.solver.add_clause([-objective_var] + condition_literals)

            self.completed.objectives.setdefault(priority, []).append(
                ObjectiveTerm(weight=weight, variable=objective_var, key=key)
            )


def complete(
    ground_program: GroundProgram,
    solver: Optional[CDCLSolver] = None,
    retractable: Optional[Dict[int, int]] = None,
) -> CompletedProgram:
    """Convenience wrapper around :class:`CompletionBuilder`."""
    return CompletionBuilder(ground_program, solver, retractable=retractable).build()
