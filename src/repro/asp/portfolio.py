"""A racing solver portfolio: several CDCL presets, first answer wins.

CDCL runtime is notoriously sensitive to the decision heuristic and restart
schedule: the same ground program can solve in milliseconds under one preset
and wander for seconds under another, and which preset wins varies per
instance.  A *portfolio* sidesteps preset roulette by racing 2–4
:class:`~repro.asp.configs.SolverPreset` configurations over the same ground
program on separate ``fork``-ed processes and taking the first full answer
(clasp's ``--parallel-mode`` races configurations the same way).

Determinism: racing only makes sense when the *extracted answer* does not
depend on who wins.  The concretizer's optimization criteria pin the optimum
down to a unique model in practice, and ``tests/concretize/test_portfolio.py``
asserts exactly that — every portfolio preset yields identical specs, costs,
and unsat cores — so first-answer-wins changes wall time, never results.
Unsatisfiable outcomes additionally re-derive their minimal conflict core
through the deterministic MUS path (:mod:`repro.spack.concretize.explain`),
which is preset-independent by construction.

Degradation: anywhere a race cannot run (no ``fork`` start method, a single
preset, process spawn failure, or a child dying without reporting) the solve
falls back to an in-process sequential solve under the primary (first)
preset.  A portfolio therefore never *fails* differently from a sequential
solve — it only sometimes answers sooner.

The portfolio is explicitly **not** used inside parallel-session pool
workers: those are already one process per solve, and nesting process pools
multiplies memory for no scheduling win (sessions disable it on the worker
path).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from typing import Optional, Sequence, Tuple

from repro.asp.configs import PORTFOLIO_PRESETS, SolverPreset
from repro.asp.stats import ASPStats

__all__ = ["PortfolioSolver", "resolve_presets"]

#: how long (seconds) to keep waiting for a straggler child that is still
#: alive but has not reported; purely a liveness poll interval, not a cap on
#: solve time
_POLL_INTERVAL = 0.05
#: grace period for draining a result a finished child may still be flushing
_DRAIN_TIMEOUT = 0.25


def resolve_presets(value) -> Tuple[SolverPreset, ...]:
    """Coerce a portfolio spec into a tuple of validated presets.

    ``True`` → the default 4-preset lineup; an ``int n`` → the first ``n``
    of the lineup (capped, min 1); a sequence → each item through
    :meth:`SolverPreset.from_value`.  ``False``/``None``/empty → ``()``
    (portfolio disabled).
    """
    if not value:
        return ()
    if value is True:
        return PORTFOLIO_PRESETS
    if isinstance(value, int):
        return PORTFOLIO_PRESETS[: max(1, min(value, len(PORTFOLIO_PRESETS)))]
    return tuple(SolverPreset.from_value(item) for item in value)


def _race(result_queue, control, index: int, preset: SolverPreset):
    """Child body: solve under one preset and report (index, ok, payload)."""
    try:
        control.preset = preset
        result = control.solve()
        result_queue.put((index, True, result))
    except BaseException as error:  # report, never hang the race
        try:
            result_queue.put((index, False, repr(error)))
        except Exception:
            pass


class PortfolioSolver:
    """Races solver presets over a ready-to-solve :class:`Control`.

    The control must already hold its ground program (sessions fork it from
    a prepared base first); :meth:`solve` then either races ``fork``-ed
    children over it or, when racing is impossible, solves in-process under
    the primary preset.
    """

    def __init__(
        self,
        presets: Sequence[SolverPreset] = (),
        stats: Optional[ASPStats] = None,
    ):
        resolved = tuple(presets) or PORTFOLIO_PRESETS
        self.presets = tuple(SolverPreset.from_value(p) for p in resolved)
        self.stats = stats

    def available(self) -> bool:
        """True when an actual race can run on this platform."""
        return (
            len(self.presets) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _sequential(self, control):
        """In-process fallback: the primary preset, no race."""
        if self.stats is not None:
            self.stats.count("portfolio.sequential_fallbacks")
        control.preset = self.presets[0]
        return control.solve()

    def solve(self, control):
        """Solve ``control``'s ground program, racing the presets.

        Returns the winning child's :class:`~repro.asp.control.SolveResult`
        verbatim (models pickle across the queue).  Losing children are
        terminated as soon as the winner reports.
        """
        if not self.available():
            return self._sequential(control)

        context = multiprocessing.get_context("fork")
        result_queue = context.Queue()
        processes = []
        try:
            try:
                for index, preset in enumerate(self.presets):
                    process = context.Process(
                        target=_race,
                        args=(result_queue, control, index, preset),
                        daemon=True,
                    )
                    process.start()
                    processes.append(process)
            except (OSError, ValueError, RuntimeError):
                # could not spawn the full lineup: abort the race entirely
                # (a partial race is just overhead) and solve sequentially
                return self._race_failed(control, processes, result_queue)

            winner = self._await_winner(processes, result_queue)
            if winner is None:
                return self._race_failed(control, processes, result_queue)
            index, ok, payload = winner
            if not ok:
                # the fastest child *errored*; a preset-dependent crash would
                # make first-answer-wins nondeterministic, so never surface
                # it — re-solve sequentially and let the real error (if any)
                # propagate deterministically
                return self._race_failed(control, processes, result_queue)
            if self.stats is not None:
                name = self.presets[index].name or f"preset-{index}"
                self.stats.count("portfolio.races")
                self.stats.count(f"portfolio.wins.{name}")
            return payload
        finally:
            self._reap(processes, result_queue)

    # ------------------------------------------------------------------

    def _await_winner(self, processes, result_queue):
        """First reported result, or None if every child died silently."""
        while True:
            try:
                return result_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                if any(process.is_alive() for process in processes):
                    continue
                # all children exited; drain anything still in flight
                try:
                    return result_queue.get(timeout=_DRAIN_TIMEOUT)
                except queue_module.Empty:
                    return None

    def _race_failed(self, control, processes, result_queue):
        self._reap(processes, result_queue)
        return self._sequential(control)

    def _reap(self, processes, result_queue):
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)
        # unblock the queue's feeder thread so interpreter shutdown is clean
        try:
            result_queue.close()
            result_queue.join_thread()
        except Exception:
            pass
