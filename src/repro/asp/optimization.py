"""Lexicographic multi-level optimization over stable models.

The paper relies on clingo's multi-objective ``#minimize`` support: criteria
are evaluated in strict priority order (Table II), and the reuse scheme of
Section VI splits every criterion into a "build" bucket and a "reuse" bucket
plus a "number of builds" level between them (Figure 5).

This module provides the equivalent machinery on top of our CDCL solver:

* priorities are optimized from highest to lowest;
* within one priority level the driver performs model-guided branch-and-bound
  (find a model, then demand a strictly better objective value via a guarded
  linear constraint, repeat until UNSAT);
* a "zero-first" fast path (used by some solver presets, analogous to
  clingo's unsatisfiable-core-guided ``usc`` strategy reaching optimum 0
  immediately) assumes all objective literals false before falling back to
  branch-and-bound;
* every accepted model is checked for stability by the
  :class:`repro.asp.unfounded.StableModelEnforcer`.

The result is guaranteed optimal: each level is fixed to its minimal
achievable value (given all higher levels) before the next level is explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.completion import CompletedProgram, ObjectiveTerm
from repro.asp.unfounded import StableModelEnforcer


@dataclass
class OptimizationResult:
    """Outcome of an optimization run."""

    satisfiable: bool
    optimal: bool = False
    atoms: Set[int] = field(default_factory=set)
    costs: Dict[int, int] = field(default_factory=dict)
    models_found: int = 0

    def cost_tuple(self) -> Tuple[int, ...]:
        """Costs ordered by descending priority (lexicographic comparison order)."""
        return tuple(self.costs[p] for p in sorted(self.costs, reverse=True))


class Optimizer:
    """Drives lexicographic optimization over a :class:`CompletedProgram`."""

    def __init__(
        self,
        completed: CompletedProgram,
        enforce_stability: bool = True,
        zero_first: bool = True,
        on_model=None,
    ):
        self.completed = completed
        self.enforcer = StableModelEnforcer(completed, enabled=enforce_stability)
        self.zero_first = zero_first
        self.on_model = on_model
        self.models_found = 0

    # -- helpers ---------------------------------------------------------------

    def _snapshot(self) -> Tuple[Set[int], Dict[int, int]]:
        atoms = self.completed.true_atoms()
        costs = self.completed.cost_vector()
        self.models_found += 1
        if self.on_model is not None:
            self.on_model(atoms, costs)
        return atoms, costs

    def _level_terms(self, priority: int) -> List[ObjectiveTerm]:
        return self.completed.objectives.get(priority, [])

    def _level_value(self, priority: int, atoms: Set[int]) -> int:
        # Recompute from the solver model captured in `costs` snapshots instead;
        # kept for API completeness.
        return self.completed.level_cost(priority)

    def _add_upper_bound(
        self, terms: Sequence[ObjectiveTerm], bound: int, guard: Optional[int] = None
    ) -> bool:
        """Constrain ``sum(weight_i * var_i) <= bound`` (optionally guarded).

        Encoded as ``sum(weight_i * not var_i) >= total - bound``; when a guard
        literal is given the constraint only applies if the guard is true.
        """
        total = sum(term.weight for term in terms)
        required = total - bound
        if required <= 0:
            return True
        literals = [-term.variable for term in terms]
        coefficients = [term.weight for term in terms]
        if guard is not None:
            literals.append(-guard)
            coefficients.append(required)
        return self.completed.solver.add_linear_geq(literals, coefficients, required)

    # -- main driver -----------------------------------------------------------------

    def optimize(self) -> OptimizationResult:
        solver = self.completed.solver

        if not self.enforcer.solve():
            return OptimizationResult(satisfiable=False)
        best_atoms, best_costs = self._snapshot()

        priorities = sorted(
            set(self.completed.objectives) | set(self.completed.objective_bases),
            reverse=True,
        )

        for priority in priorities:
            terms = self._level_terms(priority)
            base = self.completed.objective_bases.get(priority, 0)
            if not terms:
                best_costs[priority] = base
                continue

            best_value = best_costs.get(priority, base)

            # Fast path: can every objective literal at this level be false?
            if self.zero_first and best_value > base:
                assumptions = [-term.variable for term in terms]
                if self.enforcer.solve(assumptions):
                    best_atoms, best_costs = self._snapshot()
                    best_value = best_costs[priority]

            # Branch and bound: demand strictly better values until UNSAT.
            while best_value > base:
                guard = solver.new_var()
                target = best_value - base - 1
                self._add_upper_bound(terms, target, guard=guard)
                if not solver.ok:
                    break
                if self.enforcer.solve([guard]):
                    best_atoms, best_costs = self._snapshot()
                    best_value = best_costs[priority]
                else:
                    solver.add_clause([-guard])
                    break

            # Freeze this level at its optimum before optimizing lower levels.
            self._add_upper_bound(terms, best_value - base)
            best_costs[priority] = best_value

        return OptimizationResult(
            satisfiable=True,
            optimal=True,
            atoms=best_atoms,
            costs=best_costs,
            models_found=self.models_found,
        )

    def statistics(self) -> Dict[str, int]:
        stats = dict(self.enforcer.statistics())
        stats["models_found"] = self.models_found
        return stats
