"""Bottom-up grounder over interned symbols with indexed, planned joins.

The grounder instantiates safe rules by joining positive body literals against
the database of *possible* atoms (an over-approximation of everything that can
become true), processing predicates in dependency (SCC) order and iterating
each component to a fixpoint.  Conditional literals and choice-element
conditions are expanded over *certain* atoms (facts and atoms derived purely
from facts), which is exactly how the paper's generalized condition handling
(``condition_requirement`` / ``imposed_constraint``) uses them.

This is the **fast** implementation of that contract (the reference
tuple-at-a-time implementation lives in :mod:`repro.asp.naive`, and property
tests assert both derive the same programs).  Three ideas make it fast:

* **interned symbols** — every ground value is interned once into a
  per-lineage :class:`~repro.asp.symbols.SymbolTable`, so relations, join
  keys, and dedup keys are flat ``tuple[int, ...]`` and the inner loops hash
  and compare small ints instead of strings; strings are materialized only
  when an atom first enters the :class:`~repro.asp.ground.AtomTable`;
* **indexed joins** — relations keep lazily built, incrementally maintained
  hash indexes on argument positions; a per-rule join planner orders positive
  literals by bound-argument selectivity and compiles each rule into a plan
  of index scans / membership probes executed over a flat variable-slot
  environment (no dict substitutions, no per-tuple unification calls);
* **copy-on-write clones** — :meth:`Grounder.clone` shares relation storage
  and indexes with the base until either side writes, so per-spec delta
  layers fork in microseconds and the base's indexes are reused read-only.

Compiled plans are process-local (dropped on pickling, rebuilt lazily), so a
fully grounded ``Grounder`` remains picklable for the on-disk ground cache.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.asp.errors import GroundingError
from repro.asp.ground import (
    GroundChoice,
    GroundConstraint,
    GroundMinimizeLiteral,
    GroundProgram,
    GroundRule,
)
from repro.asp.stats import ASPStats
from repro.asp.symbols import SymbolTable
from repro.asp.syntax import (
    Atom,
    Choice,
    Comparison,
    ConditionalLiteral,
    Constant,
    Literal,
    Minimize,
    Number,
    Program,
    Rule,
    String,
    Variable,
    compare_ground_values,
    evaluate_term,
    ground_atom,
    term_is_ground,
    term_variables,
)

Substitution = Dict[str, object]

#: relation key: (predicate name, arity)
RelKey = Tuple[str, int]


@contextmanager
def _null_stage(name):
    yield


class _Relation:
    """Argument id-tuples for one (predicate, arity), with hash indexes.

    Indexes are keyed by the tuple of argument positions they cover and are
    built lazily the first time a join plan needs them; :meth:`add` maintains
    every existing index incrementally, which is what keeps ``ground_delta``
    cheap.  :meth:`fork` shares all storage copy-on-write: both sides are
    marked shared and the first writer takes a private copy (dropping its
    indexes, which rebuild lazily), so read-mostly clones cost O(1).
    """

    __slots__ = ("tuples", "_seen", "_indexes", "_shared")

    def __init__(self):
        self.tuples: List[tuple] = []
        self._seen: Set[tuple] = set()
        self._indexes: Dict[Tuple[int, ...], Dict] = {}
        self._shared = False

    def add(self, args: tuple) -> bool:
        if args in self._seen:
            return False
        if self._shared:
            self._unshare()
        self._seen.add(args)
        self.tuples.append(args)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key = args[positions[0]]
            else:
                key = tuple(args[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [args]
            else:
                bucket.append(args)
        return True

    def __contains__(self, args: tuple) -> bool:
        return args in self._seen

    def __len__(self) -> int:
        return len(self.tuples)

    def lookup(self, positions: Tuple[int, ...], key) -> Optional[list]:
        """Tuples whose ``positions`` project onto ``key`` (scalar when a
        single position is covered), or None when the bucket is empty."""
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        return index.get(key)

    def _build_index(self, positions: Tuple[int, ...]) -> Dict:
        index: Dict = {}
        if len(positions) == 1:
            position = positions[0]
            for args in self.tuples:
                key = args[position]
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [args]
                else:
                    bucket.append(args)
        else:
            for args in self.tuples:
                key = tuple(args[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [args]
                else:
                    bucket.append(args)
        # publish fully built, then assign: a concurrent reader (thread
        # backend sharing a warm base) sees either no index or a complete one
        self._indexes[positions] = index
        return index

    def _unshare(self):
        self.tuples = list(self.tuples)
        self._seen = set(self._seen)
        self._indexes = {}
        self._shared = False

    def fork(self) -> "_Relation":
        other = _Relation.__new__(_Relation)
        other.tuples = self.tuples
        other._seen = self._seen
        other._indexes = self._indexes
        other._shared = True
        self._shared = True
        return other

    # indexes are derived data and the shared flag is process-local state
    def __getstate__(self):
        return {"tuples": list(self.tuples)}

    def __setstate__(self, state):
        self.tuples = state["tuples"]
        self._seen = set(self.tuples)
        self._indexes = {}
        self._shared = False


class _AtomDatabase:
    """Possible/certain atom storage keyed by (predicate name, arity)."""

    __slots__ = ("relations",)

    def __init__(self):
        self.relations: Dict[RelKey, _Relation] = {}

    def relation(self, key: RelKey) -> _Relation:
        relation = self.relations.get(key)
        if relation is None:
            relation = _Relation()
            self.relations[key] = relation
        return relation

    def add(self, key: RelKey, args: tuple) -> bool:
        return self.relation(key).add(args)

    def contains(self, key: RelKey, args: tuple) -> bool:
        relation = self.relations.get(key)
        return relation is not None and args in relation._seen

    def count_name(self, name: str) -> int:
        """Total tuples across every arity of ``name`` (choice re-expansion
        triggers match the naive grounder's by-name delta check)."""
        total = 0
        for (rel_name, _arity), relation in self.relations.items():
            if rel_name == name:
                total += len(relation.tuples)
        return total

    def fork(self) -> "_AtomDatabase":
        other = _AtomDatabase()
        other.relations = {
            key: relation.fork() for key, relation in self.relations.items()
        }
        return other

    def __getstate__(self):
        return {"relations": self.relations}

    def __setstate__(self, state):
        self.relations = state["relations"]


# ---------------------------------------------------------------------------
# compilation: terms -> value evaluators, atoms -> id-tuple builders
# ---------------------------------------------------------------------------


def _compile_value_fn(term, var_index, symbols):
    """Compile ``term`` into ``fn(env) -> ground value`` (value space).

    Mirrors :func:`repro.asp.syntax.evaluate_term` semantics: KeyError for
    unbound variables, TypeError for arithmetic over non-integers.
    """
    if isinstance(term, Number):
        value = term.value
        return lambda env: value
    if isinstance(term, String):
        value = term.value
        return lambda env: value
    if isinstance(term, Constant):
        value = term.name
        return lambda env: value
    if isinstance(term, Variable):
        if term.name == "_":
            def unbound(env, _name=term.name):
                raise KeyError(_name)
            return unbound
        slot = var_index[term.name]
        values = symbols.values

        def variable(env, _slot=slot, _values=values, _name=term.name):
            symbol = env[_slot]
            if symbol is None:
                raise KeyError(_name)
            return _values[symbol]

        return variable
    # BinaryOp (or anything exotic): rebuild a minimal substitution and defer
    # to evaluate_term so arithmetic/error semantics match the reference
    # grounder exactly.  Complex terms are rare; this path is not hot.
    names = sorted({v.name for v in term_variables(term)})
    slots = [var_index[name] for name in names]
    values = symbols.values

    def compound(env, _names=names, _slots=slots, _values=values, _term=term):
        substitution = {}
        for name, slot in zip(_names, _slots):
            symbol = env[slot]
            if symbol is None:
                raise KeyError(name)
            substitution[name] = _values[symbol]
        return evaluate_term(_term, substitution)

    return compound


def _compile_comparison_fn(comparison, var_index, symbols):
    """Compile a comparison into ``fn(env) -> bool``.

    Equality and inequality between interned symbols compare ids directly
    (the symbol table is a bijection); ordered operators materialize values
    because the order is defined over values, not ids.
    """
    left, right, op = comparison.left, comparison.right, comparison.op
    if op in ("=", "!="):
        left_id = _id_operand(left, var_index, symbols)
        right_id = _id_operand(right, var_index, symbols)
        if left_id is not None and right_id is not None:
            left_kind, left_payload = left_id
            right_kind, right_payload = right_id
            if op == "=":
                if left_kind == "const" and right_kind == "const":
                    result = left_payload == right_payload
                    return lambda env: result
                if left_kind == "const":
                    return lambda env: env[right_payload] == left_payload
                if right_kind == "const":
                    return lambda env: env[left_payload] == right_payload
                return lambda env: env[left_payload] == env[right_payload]
            if left_kind == "const" and right_kind == "const":
                result = left_payload != right_payload
                return lambda env: result
            if left_kind == "const":
                return lambda env: env[right_payload] != left_payload
            if right_kind == "const":
                return lambda env: env[left_payload] != right_payload
            return lambda env: env[left_payload] != env[right_payload]
    left_fn = _compile_value_fn(left, var_index, symbols)
    right_fn = _compile_value_fn(right, var_index, symbols)
    return lambda env: compare_ground_values(op, left_fn(env), right_fn(env))


def _id_operand(term, var_index, symbols):
    """('const', sid) / ('var', slot) for terms comparable in id space."""
    if isinstance(term, Variable) and term.name != "_":
        return ("var", var_index[term.name])
    if isinstance(term, (Number, String, Constant)) or (
        not isinstance(term, Variable) and term_is_ground(term)
    ):
        return ("const", symbols.intern(evaluate_term(term, {})))
    return None


def _codegen(parts: Sequence[str], namespace: Dict, scalar: bool = False):
    """Compile ``parts`` (env-indexing expressions) into a tuple builder.

    With ``scalar=True`` and a single part, the builder returns the bare
    value — single-position index keys avoid the tuple allocation.
    """
    if not parts:
        return lambda env: ()
    if scalar and len(parts) == 1:
        source = f"lambda env: {parts[0]}"
    else:
        source = "lambda env: (" + ",".join(parts) + ",)"
    return eval(source, namespace)  # noqa: S307 - generated from ints/slots only


class _AtomTemplate:
    """Compiled ground-atom builder: ``build(env) -> args id tuple``."""

    __slots__ = ("name", "arity", "rel_key", "pred_sid", "build")

    def __init__(self, atom: Atom, var_index, symbols):
        self.name = atom.name
        self.arity = len(atom.arguments)
        self.rel_key = (atom.name, self.arity)
        self.pred_sid = symbols.intern(atom.name)
        namespace: Dict = {"I": symbols.intern}
        parts: List[str] = []
        for argument in atom.arguments:
            if isinstance(argument, Variable) and argument.name != "_":
                parts.append(f"env[{var_index[argument.name]}]")
            elif term_is_ground(argument):
                parts.append(repr(symbols.intern(evaluate_term(argument, {}))))
            else:
                # complex or "_" term: evaluate in value space, re-intern
                index = len(namespace)
                fn = _compile_value_fn(argument, var_index, symbols)
                namespace[f"T{index}"] = fn
                parts.append(f"I(T{index}(env))")
        self.build = _codegen(parts, namespace)


class _PosLiteral:
    """A positive body literal: planning spec + materialization template."""

    __slots__ = ("atom", "template", "spec", "var_slots")

    def __init__(self, literal: Literal, var_index, symbols):
        atom = literal.atom
        self.atom = atom
        self.template = _AtomTemplate(atom, var_index, symbols)
        self.var_slots = frozenset(
            var_index[v.name] for v in atom.variables()
        )
        spec = []
        for argument in atom.arguments:
            if isinstance(argument, Variable):
                if argument.name == "_":
                    spec.append(("any",))
                else:
                    spec.append(("var", var_index[argument.name]))
            elif term_is_ground(argument):
                spec.append(
                    ("const", symbols.intern(evaluate_term(argument, {})))
                )
            else:
                fn = _compile_value_fn(argument, var_index, symbols)
                slots = frozenset(
                    var_index[v.name] for v in term_variables(argument)
                )
                message = (
                    f"argument {argument} of {atom} contains unbound variables"
                )
                spec.append(("term", fn, slots, message))
        self.spec = spec


class _Step:
    """One compiled join step (an index scan or a membership probe)."""

    __slots__ = (
        "rel_key",
        "positions",
        "key_fn",
        "binds",
        "checks",
        "comps",
        "ordered_ops",
        "member_fn",
        "use_delta",
    )

    def __init__(self):
        self.rel_key = None
        self.positions: Tuple[int, ...] = ()
        self.key_fn = None
        self.binds: Tuple[Tuple[int, int], ...] = ()
        self.checks: Tuple[Tuple[int, int], ...] = ()
        self.comps: Tuple = ()
        self.ordered_ops = None
        self.member_fn = None
        self.use_delta = False


class _Plan:
    """A compiled join: ordered steps plus comparison placement."""

    __slots__ = ("steps", "pre_comps", "unsafe_comparisons")

    def __init__(self, steps, pre_comps, unsafe_comparisons):
        self.steps = tuple(steps)
        self.pre_comps = tuple(pre_comps)
        self.unsafe_comparisons = tuple(unsafe_comparisons)


def _make_step(literal: _PosLiteral, bound: Set[int], symbols, use_delta=False):
    """Compile one scan/membership step for ``literal`` given ``bound`` slots.

    Returns ``(step, newly_bound_slots)``.  Every const/bound argument goes
    into the index key; first occurrences of free variables become binds and
    repeats become checks.  Literals containing terms over unbound variables
    fall back to an ordered per-candidate matcher that replicates the naive
    grounder's argument-order semantics (including its unbound-term error).
    """
    step = _Step()
    step.rel_key = literal.template.rel_key
    step.use_delta = use_delta
    namespace: Dict = {"I": symbols.intern}
    key_positions: List[int] = []
    key_parts: List[str] = []
    binds: List[Tuple[int, int]] = []
    checks: List[Tuple[int, int]] = []
    newly_bound: Set[int] = set()
    unsafe_term = False
    spec = literal.spec
    for position, entry in enumerate(spec):
        kind = entry[0]
        if kind == "any":
            continue
        if kind == "const":
            key_positions.append(position)
            key_parts.append(repr(entry[1]))
        elif kind == "var":
            slot = entry[1]
            if slot in bound:
                key_positions.append(position)
                key_parts.append(f"env[{slot}]")
            elif slot in newly_bound:
                checks.append((position, slot))
            else:
                newly_bound.add(slot)
                binds.append((position, slot))
        else:  # term
            _tag, fn, slots, _message = entry
            if slots <= bound:
                index = len(namespace)
                namespace[f"T{index}"] = fn
                key_positions.append(position)
                key_parts.append(f"I(T{index}(env))")
            else:
                unsafe_term = True

    if unsafe_term:
        # ordered fallback: evaluate argument patterns left to right exactly
        # like naive _match_atom, raising on the unbound term when reached
        ops: List[tuple] = []
        local_bound: Set[int] = set()
        for position, entry in enumerate(spec):
            kind = entry[0]
            if kind == "any":
                continue
            if kind == "const":
                ops.append((2, position, entry[1]))
            elif kind == "var":
                slot = entry[1]
                if slot in bound or slot in local_bound:
                    ops.append((1, position, slot))
                else:
                    local_bound.add(slot)
                    ops.append((0, position, slot))
            else:
                _tag, fn, slots, message = entry
                if slots <= (bound | local_bound):
                    intern = symbols.intern

                    def id_fn(env, _fn=fn, _intern=intern):
                        return _intern(_fn(env))

                    ops.append((3, position, (id_fn, message)))
                else:
                    ops.append((4, position, message))
        step.ordered_ops = tuple(ops)
        return step, newly_bound

    if not binds and not checks and len(key_positions) == len(spec):
        # fully bound: a membership probe, no index needed
        step.member_fn = _codegen(key_parts, namespace)
        return step, newly_bound

    if key_positions:
        step.positions = tuple(key_positions)
        step.key_fn = _codegen(key_parts, namespace, scalar=True)
    step.binds = tuple(binds)
    step.checks = tuple(checks)
    return step, newly_bound


def _build_plan(
    positives: Sequence[_PosLiteral],
    comparisons: Sequence[tuple],
    prebound: Iterable[int],
    symbols,
    seed: Optional[int] = None,
):
    """Order literals greedily by bound-argument selectivity and compile.

    ``comparisons`` is a sequence of ``(fn, slots, comparison)``; each lands
    on the earliest step after which all its variables are bound (pre-step
    for those bound up front).  ``seed`` marks the literal scanned against
    the delta database (semi-naive seeding); the remaining literals join
    against the full database.
    """
    bound: Set[int] = set(prebound)
    pre_comps: List = []
    remaining: List[tuple] = []
    for fn, slots, comparison in comparisons:
        if slots <= bound:
            pre_comps.append(fn)
        else:
            remaining.append((fn, slots, comparison))

    steps: List[_Step] = []
    available = list(range(len(positives)))

    def attach_comps(step: _Step):
        attached: List = []
        still: List[tuple] = []
        for fn, slots, comparison in remaining:
            if slots <= bound:
                attached.append(fn)
            else:
                still.append((fn, slots, comparison))
        step.comps = tuple(attached)
        remaining[:] = still

    if seed is not None:
        step, newly = _make_step(positives[seed], bound, symbols, use_delta=True)
        bound |= newly
        attach_comps(step)
        steps.append(step)
        available.remove(seed)

    def selectivity(index: int) -> int:
        score = 0
        for entry in positives[index].spec:
            kind = entry[0]
            if kind == "const":
                score += 1
            elif kind == "var":
                if entry[1] in bound:
                    score += 1
            elif kind == "term" and entry[2] <= bound:
                score += 1
        return score

    while available:
        best = max(available, key=lambda i: (selectivity(i), -i))
        available.remove(best)
        step, newly = _make_step(positives[best], bound, symbols)
        bound |= newly
        attach_comps(step)
        steps.append(step)

    unsafe = [comparison for _fn, _slots, comparison in remaining]
    return _Plan(steps, pre_comps, unsafe)


# ---------------------------------------------------------------------------
# plan execution
# ---------------------------------------------------------------------------


def _execute(plan: _Plan, env: list, db: _AtomDatabase, delta) -> Iterator[list]:
    """Enumerate bindings (the shared ``env`` list) satisfying ``plan``."""
    for fn in plan.pre_comps:
        if not fn(env):
            return
    yield from _descend(plan.steps, plan.unsafe_comparisons, 0, env, db, delta)


def _descend(steps, unsafe, depth, env, db, delta) -> Iterator[list]:
    if depth == len(steps):
        if unsafe:
            unresolved = ", ".join(str(c) for c in unsafe)
            raise GroundingError(f"unsafe comparison(s): {unresolved}")
        yield env
        return
    step = steps[depth]
    source = delta if step.use_delta else db
    relation = source.relations.get(step.rel_key)
    if relation is None:
        return
    member_fn = step.member_fn
    if member_fn is not None:
        if member_fn(env) in relation._seen:
            for fn in step.comps:
                if not fn(env):
                    return
            yield from _descend(steps, unsafe, depth + 1, env, db, delta)
        return
    key_fn = step.key_fn
    if key_fn is None:
        candidates = relation.tuples
    else:
        candidates = relation.lookup(step.positions, key_fn(env))
        if candidates is None:
            return
    ordered_ops = step.ordered_ops
    if ordered_ops is not None:
        next_depth = depth + 1
        for args in candidates:
            ok = True
            for kind, position, payload in ordered_ops:
                if kind == 0:
                    env[payload] = args[position]
                elif kind == 1:
                    if env[payload] != args[position]:
                        ok = False
                        break
                elif kind == 2:
                    if payload != args[position]:
                        ok = False
                        break
                elif kind == 3:
                    fn, message = payload
                    try:
                        expected = fn(env)
                    except KeyError:
                        raise GroundingError(message)
                    if expected != args[position]:
                        ok = False
                        break
                else:
                    raise GroundingError(payload)
            if ok:
                for fn in step.comps:
                    if not fn(env):
                        ok = False
                        break
                if ok:
                    yield from _descend(steps, unsafe, next_depth, env, db, delta)
        return
    binds = step.binds
    checks = step.checks
    comps = step.comps
    next_depth = depth + 1
    for args in candidates:
        for position, slot in binds:
            env[slot] = args[position]
        ok = True
        for position, slot in checks:
            if env[slot] != args[position]:
                ok = False
                break
        if ok:
            for fn in comps:
                if not fn(env):
                    ok = False
                    break
            if ok:
                yield from _descend(steps, unsafe, next_depth, env, db, delta)


# ---------------------------------------------------------------------------
# per-statement compilation
# ---------------------------------------------------------------------------


def _collect_variables(items: Iterable) -> Set[str]:
    names: Set[str] = set()
    for item in items:
        for variable in item.variables():
            names.add(variable.name)
    return names


class _CompiledConditional:
    """A conditional literal: local sub-join over *certain* + a template."""

    __slots__ = ("template", "negated", "plan", "negated_condition_msg")

    def __init__(self, conditional, var_index, symbols, body_slots):
        self.template = _AtomTemplate(conditional.literal.atom, var_index, symbols)
        self.negated = conditional.literal.negated
        self.negated_condition_msg = None
        positives: List[_PosLiteral] = []
        comparisons: List[tuple] = []
        for item in conditional.condition:
            if isinstance(item, Literal):
                if item.negated:
                    self.negated_condition_msg = (
                        "negated literals are not supported in conditions: "
                        f"{conditional}"
                    )
                    continue
                positives.append(_PosLiteral(item, var_index, symbols))
            elif isinstance(item, Comparison):
                fn = _compile_comparison_fn(item, var_index, symbols)
                slots = frozenset(var_index[v.name] for v in item.variables())
                comparisons.append((fn, slots, item))
        self.plan = _build_plan(positives, comparisons, body_slots, symbols)


class _CompiledElement:
    """A choice element: candidate sub-join over *certain* + a template."""

    __slots__ = ("template", "plan", "negated_condition_msg", "element")

    def __init__(self, element, var_index, symbols, body_slots):
        self.element = element
        self.template = _AtomTemplate(element.atom, var_index, symbols)
        self.negated_condition_msg = None
        positives: List[_PosLiteral] = []
        comparisons: List[tuple] = []
        for item in element.condition:
            if isinstance(item, Literal):
                if item.negated:
                    self.negated_condition_msg = (
                        f"negated condition in choice element is unsupported: {element}"
                    )
                    continue
                positives.append(_PosLiteral(item, var_index, symbols))
            elif isinstance(item, Comparison):
                fn = _compile_comparison_fn(item, var_index, symbols)
                slots = frozenset(var_index[v.name] for v in item.variables())
                comparisons.append((fn, slots, item))
        self.plan = _build_plan(positives, comparisons, body_slots, symbols)


class _CompiledStatement:
    """Everything the executor needs for one rule / constraint / element.

    Compiled once per grounder *lineage* (shared by clones, dropped on
    pickling) against the lineage's symbol table, so all embedded constant
    ids agree with the runtime databases.
    """

    def __init__(self, statement, kind: str, symbols: SymbolTable):
        self.statement = statement
        self.kind = kind
        self.label = str(statement)
        if kind == "minimize_element":
            body = statement.condition
        else:
            body = statement.body

        positives_raw: List[Literal] = []
        negatives_raw: List[Literal] = []
        comparisons_raw: List[Comparison] = []
        conditionals_raw: List[ConditionalLiteral] = []
        for element in body:
            if isinstance(element, Literal):
                (negatives_raw if element.negated else positives_raw).append(element)
            elif isinstance(element, Comparison):
                comparisons_raw.append(element)
            elif isinstance(element, ConditionalLiteral):
                conditionals_raw.append(element)
            else:
                raise GroundingError(f"unsupported body element: {element!r}")

        # variable slot assignment, first occurrence order across the whole
        # statement (body, then head/elements/objective terms)
        var_index: Dict[str, int] = {}

        def slot_of(name: str) -> int:
            slot = var_index.get(name)
            if slot is None:
                slot = len(var_index)
                var_index[name] = slot
            return slot

        def collect(term):
            for variable in term_variables(term):
                slot_of(variable.name)

        for literal in positives_raw:
            for argument in literal.atom.arguments:
                collect(argument)
        for comparison in comparisons_raw:
            collect(comparison.left)
            collect(comparison.right)
        for literal in negatives_raw:
            for argument in literal.atom.arguments:
                collect(argument)
        for conditional in conditionals_raw:
            for item in conditional.condition:
                if isinstance(item, Literal):
                    for argument in item.atom.arguments:
                        collect(argument)
                elif isinstance(item, Comparison):
                    collect(item.left)
                    collect(item.right)
            for argument in conditional.literal.atom.arguments:
                collect(argument)
        head = getattr(statement, "head", None) if kind in ("rule", "choice") else None
        if kind == "rule" and isinstance(head, Atom):
            for argument in head.arguments:
                collect(argument)
        elif kind == "choice":
            for element in head.elements:
                for item in element.condition:
                    if isinstance(item, Literal):
                        for argument in item.atom.arguments:
                            collect(argument)
                    elif isinstance(item, Comparison):
                        collect(item.left)
                        collect(item.right)
                for argument in element.atom.arguments:
                    collect(argument)
            for bound_term in (head.lower, head.upper):
                if bound_term is not None:
                    collect(bound_term)
        elif kind == "minimize_element":
            for term in (statement.weight, statement.priority) + statement.terms:
                collect(term)

        self.var_index = var_index
        self.positives = [
            _PosLiteral(literal, var_index, symbols) for literal in positives_raw
        ]
        self.comparisons = []
        for comparison in comparisons_raw:
            fn = _compile_comparison_fn(comparison, var_index, symbols)
            slots = frozenset(var_index[v.name] for v in comparison.variables())
            self.comparisons.append((fn, slots, comparison))
        self.negatives = [
            _AtomTemplate(literal.atom, var_index, symbols)
            for literal in negatives_raw
        ]

        body_slots = frozenset(
            slot for literal in self.positives for slot in literal.var_slots
        )
        self.body_slots = body_slots

        # runtime-checked unsafety, mirroring the reference grounder's
        # per-call messages (static _check_safety normally fires first)
        bound_names = _collect_variables(positives_raw)
        self.neg_unsafe_msg = None
        for literal in negatives_raw:
            unbound = {v.name for v in literal.variables()} - bound_names
            if unbound:
                self.neg_unsafe_msg = (
                    f"unsafe variables {sorted(unbound)} in negative literal {literal}"
                )
                break

        self.conditionals = [
            _CompiledConditional(conditional, var_index, symbols, body_slots)
            for conditional in conditionals_raw
        ]

        self.head_template = None
        self.head_unsafe_msg = None
        self.elements = []
        self.lower_fn = None
        self.upper_fn = None
        self.key_slots: Tuple[int, ...] = ()
        self.weight_fn = None
        self.priority_fn = None
        self.term_fns: Tuple = ()

        if kind == "rule":
            self.head_template = _AtomTemplate(head, var_index, symbols)
            unbound = {v.name for v in head.variables()} - bound_names
            if unbound:
                self.head_unsafe_msg = (
                    f"unsafe variables {sorted(unbound)} in head of rule: {statement}"
                )
        elif kind == "choice":
            self.elements = [
                _CompiledElement(element, var_index, symbols, body_slots)
                for element in head.elements
            ]
            if head.lower is not None:
                self.lower_fn = _compile_value_fn(head.lower, var_index, symbols)
            if head.upper is not None:
                self.upper_fn = _compile_value_fn(head.upper, var_index, symbols)
            # choice instance identity: body bindings ordered by variable
            # name, matching the reference grounder's substitution keys
            self.key_slots = tuple(
                var_index[name]
                for name in sorted(
                    name for name, slot in var_index.items() if slot in body_slots
                )
            )
        elif kind == "minimize_element":
            self.weight_fn = _compile_value_fn(statement.weight, var_index, symbols)
            self.priority_fn = _compile_value_fn(
                statement.priority, var_index, symbols
            )
            self.term_fns = tuple(
                _compile_value_fn(term, var_index, symbols)
                for term in statement.terms
            )

        self.n_vars = len(var_index)
        self._symbols = symbols
        self._plans: Dict[Optional[int], _Plan] = {}

    def plan(self, seed: Optional[int]) -> _Plan:
        plan = self._plans.get(seed)
        if plan is None:
            plan = _build_plan(
                self.positives, self.comparisons, (), self._symbols, seed=seed
            )
            self._plans[seed] = plan
        return plan


class Grounder:
    """Grounds a :class:`Program` (plus programmatic facts) bottom-up.

    Besides the one-shot :meth:`ground`, a grounder supports *incremental
    extra-facts layering*: after a base grounding, :meth:`clone` forks the
    whole grounding state cheaply (copy-on-write relation forks, no joins)
    and :meth:`ground_delta` grounds additional facts semi-naively — only
    rule instances touching at least one new atom are enumerated, so the
    shared base program is grounded exactly once however many layers are
    forked on top of it.  This is what makes batch concretization sessions
    fast.

    Contract for delta facts: they may introduce new atoms freely, but they
    must not extend relations that appear in conditional-literal *conditions*
    of rule bodies for bindings that were already instantiated during the
    base grounding (e.g. adding ``condition_requirement`` rows for a
    pre-existing condition id would leave stale, weaker rule instances in the
    ground program).  Fresh ids/keys are always safe — which is exactly how
    the concretizer's spec-dependent fact layer is constructed.

    Choice *elements* are exempt from that contract: choice instances are
    registered by (rule, body substitution), and when a delta layer extends a
    relation appearing in a choice-element condition (e.g. a later repository
    shard adding ``version_declared`` rows for a package whose node was
    already possible), the affected choices are re-expanded and upgraded *in
    place* with the enlarged candidate set.  Sharded repositories rely on
    this: cross-shard dependencies may point at packages whose declarations
    arrive only in a later shard layer.

    All clones of one base share a :class:`SymbolTable` (and the compiled
    join plans), so id-tuples agree across the whole lineage.  An optional
    :class:`~repro.asp.stats.ASPStats` collects per-stage (and, opt-in,
    per-rule) grounding timings.
    """

    def __init__(
        self,
        program: Program,
        extra_facts: Sequence[tuple] = (),
        possible_hints: Sequence[tuple] = (),
        symbols: Optional[SymbolTable] = None,
        stats: Optional[ASPStats] = None,
    ):
        self.program = program
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.stats = stats
        self.ground_program = GroundProgram()
        self.possible = _AtomDatabase()
        self.certain = _AtomDatabase()
        #: id-atom key ((pred symbol, *arg symbols)) -> AtomTable id; copied
        #: per clone together with the AtomTable so the bijection stays
        #: consistent (AtomTables of sibling clones diverge independently)
        self._atom_ids: Dict[tuple, int] = {}
        self._rule_keys: Set[tuple] = set()
        #: choice instances by (rule position, body binding ids) -> index
        #: into ``ground_program.choices``, so a later layer can *upgrade* an
        #: instance whose element expansion grew (see class docstring).
        self._choice_instances: Dict[tuple, int] = {}
        self._constraint_keys: Set[tuple] = set()
        self._minimize_keys: Set[tuple] = set()
        self._extra_facts = list(extra_facts)
        #: atoms marked *possible* (but not certain, and not facts) before
        #: grounding starts.  Sound over-approximation knob: hinted atoms
        #: that never gain support are forced false by completion, so extra
        #: hints cost ground-program size, never correctness.  A base layer
        #: uses them to pre-ground rules whose triggers arrive only in later
        #: delta layers (e.g. "any possible package may become a root").
        self._possible_hints = list(possible_hints)
        self._components: Optional[List[List[Rule]]] = None
        self._constraints: Optional[List[Rule]] = None
        self._delta: Optional[_AtomDatabase] = None
        #: how many times this grounder ran a full base grounding / delta layer
        self.base_groundings = 0
        self.delta_groundings = 0
        self._compiled: Dict[int, _CompiledStatement] = {}

    # -- public API ---------------------------------------------------------

    def add_possible_hints(self, hints) -> None:
        """Record extra possibility hints before :meth:`ground` runs
        (streamed-emission counterpart of the ``possible_hints`` ctor arg)."""
        self._possible_hints.extend(hints)

    def fact_writer(self):
        """A streaming fact sink for the base layer (call before :meth:`ground`).

        Returns ``write(atom)``: it normalizes the value atom
        (:func:`~repro.asp.syntax.ground_atom`), interns it straight into the
        certain/possible databases and the atom table, and records it so the
        grounder stays picklable — no intermediate fact list is materialized
        between the producer (e.g. the problem encoder) and the grounder.
        :meth:`ground` afterwards treats already-streamed facts as no-ops.
        """
        ids_of = self._ids_of
        possible_add = self.possible.add
        certain_add = self.certain.add
        facts_add = self.ground_program.facts.add
        extra_facts = self._extra_facts
        value_atom_id = self._value_atom_id

        def write(atom):
            atom = ground_atom(*atom)
            extra_facts.append(atom)
            key, args = ids_of(atom)
            possible_add(key, args)
            certain_add(key, args)
            facts_add(value_atom_id(atom, key, args))

        return write

    def ground(self) -> GroundProgram:
        stats = self.stats
        stage = stats.stage if stats is not None else _null_stage
        with stage("ground.setup"):
            facts, rules, constraints = self._split_statements()
            for rule in rules + constraints:
                self._check_safety(rule)
            for minimize in self.program.minimizes:
                self._check_minimize_safety(minimize)
        with stage("ground.facts"):
            self._add_facts(facts)
            for atom in self._possible_hints:
                key, args = self._ids_of(atom)
                self.possible.add(key, args)
        with stage("ground.setup"):
            self._components = self._stratify(rules)
            self._constraints = constraints
        with stage("ground.rules"):
            for component_rules in self._components:
                self._ground_component(component_rules)
        with stage("ground.constraints"):
            for constraint in constraints:
                self._ground_constraint(constraint)
        with stage("ground.minimize"):
            for minimize in self.program.minimizes:
                self._ground_minimize(minimize)
        self.base_groundings += 1
        if stats is not None:
            stats.count("base_groundings")
        return self.ground_program

    def clone(self) -> "Grounder":
        """Fork the complete grounding state (program objects are shared).

        The clone can be extended with :meth:`ground_delta` without touching
        this grounder, so one base grounding can serve many solves.  Cloning
        never mutates grounded data — relations fork copy-on-write and the
        immutable program/ASTs, symbol table, and compiled plans are shared —
        so concurrent clones of one base grounder are safe from threads and
        from ``os.fork()``-ed worker processes alike (the parallel session's
        workers do exactly that), and a fully grounded ``Grounder`` is
        picklable for the on-disk ground cache.
        """
        other = Grounder.__new__(Grounder)
        other.program = self.program
        other.symbols = self.symbols
        other.stats = self.stats
        other.ground_program = self.ground_program.copy()
        other.possible = self.possible.fork()
        other.certain = self.certain.fork()
        other._atom_ids = dict(self._atom_ids)
        other._rule_keys = set(self._rule_keys)
        other._choice_instances = dict(self._choice_instances)
        other._constraint_keys = set(self._constraint_keys)
        other._minimize_keys = set(self._minimize_keys)
        other._extra_facts = list(self._extra_facts)
        other._possible_hints = list(self._possible_hints)
        other._components = self._components
        other._constraints = self._constraints
        other._delta = None
        other.base_groundings = self.base_groundings
        other.delta_groundings = self.delta_groundings
        other._compiled = self._ensure_compiled()
        return other

    def ground_delta(
        self,
        extra_facts: Sequence[tuple] = (),
        possible_hints: Sequence[tuple] = (),
        fact_source=None,
    ) -> GroundProgram:
        """Ground additional facts on top of a completed :meth:`ground`.

        Rule instantiation is restricted to instances where at least one
        positive body literal matches an atom that is new in this layer
        (semi-naive evaluation); everything grounded before stays valid and
        is not re-derived.  ``possible_hints`` are additional layer-local
        possibility seeds with the same semantics as the constructor's: they
        become possible (and seed joins) without becoming facts.

        ``fact_source`` is the streaming variant of ``extra_facts``: a
        callable invoked with a ``write(atom)`` sink, so producers (the
        problem encoder) can emit straight into the delta layer with no
        intermediate list.
        """
        if self._components is None:
            self._extra_facts.extend(extra_facts)
            if fact_source is not None:
                fact_source(
                    lambda atom: self._extra_facts.append(ground_atom(*atom))
                )
            self._possible_hints.extend(possible_hints)
            return self.ground()
        stats = self.stats
        stage = stats.stage if stats is not None else _null_stage
        delta = _AtomDatabase()
        with stage("delta.facts"):
            def add_fact(atom):
                key, args = self._ids_of(atom)
                if self.possible.add(key, args):
                    delta.add(key, args)
                self.certain.add(key, args)
                atom_id = self._value_atom_id(atom, key, args)
                self.ground_program.facts.add(atom_id)

            for atom in extra_facts:
                add_fact(atom)
            if fact_source is not None:
                fact_source(lambda atom: add_fact(ground_atom(*atom)))
            for atom in possible_hints:
                self._possible_hints.append(atom)
                key, args = self._ids_of(atom)
                if self.possible.add(key, args):
                    delta.add(key, args)
        with stage("delta.rules"):
            for component_rules in self._components:
                self._ground_component(component_rules, delta)
        with stage("delta.constraints"):
            for constraint in self._constraints:
                self._ground_constraint(constraint, delta)
        with stage("delta.minimize"):
            for minimize in self.program.minimizes:
                self._ground_minimize(minimize, delta)
        self.delta_groundings += 1
        if stats is not None:
            stats.count("delta_groundings")
        return self.ground_program

    # -- interning helpers --------------------------------------------------

    def _ids_of(self, atom: tuple) -> Tuple[RelKey, tuple]:
        """Value atom tuple -> ((name, arity), interned arg ids)."""
        intern = self.symbols.intern
        return (atom[0], len(atom) - 1), tuple(intern(v) for v in atom[1:])

    def _value_atom_id(self, atom: tuple, key: RelKey, args: tuple) -> int:
        """AtomTable id for a value atom whose arg ids are already known."""
        id_key = (self.symbols.intern(atom[0]),) + args
        atom_id = self._atom_ids.get(id_key)
        if atom_id is None:
            atom_id = self.ground_program.atoms.intern(atom)
            self._atom_ids[id_key] = atom_id
        return atom_id

    def _atom_id(self, template: _AtomTemplate, args: tuple) -> int:
        """AtomTable id for (template predicate, arg ids), materializing the
        value atom only on first sight."""
        id_key = (template.pred_sid,) + args
        atom_id = self._atom_ids.get(id_key)
        if atom_id is None:
            values = self.symbols.values
            atom = (template.name,) + tuple(values[s] for s in args)
            atom_id = self.ground_program.atoms.intern(atom)
            self._atom_ids[id_key] = atom_id
        return atom_id

    def _ensure_compiled(self) -> Dict[int, _CompiledStatement]:
        compiled = self.__dict__.get("_compiled")
        if compiled is None:
            compiled = {}
            self._compiled = compiled
        return compiled

    def _compile(self, statement, kind: str) -> _CompiledStatement:
        compiled = self._ensure_compiled()
        info = compiled.get(id(statement))
        if info is None:
            info = _CompiledStatement(statement, kind, self.symbols)
            compiled[id(statement)] = info
        return info

    # -- setup ----------------------------------------------------------------

    def _split_statements(self):
        facts: List[tuple] = list(self._extra_facts)
        rules: List[Rule] = []
        constraints: List[Rule] = []
        for rule in self.program.rules:
            if rule.is_fact and rule.head.is_ground():
                facts.append(rule.head.ground({}))
            elif rule.is_constraint:
                constraints.append(rule)
            else:
                rules.append(rule)
        return facts, rules, constraints

    def _check_safety(self, rule: Rule):
        """Static safety check: every variable must be bound by a positive
        body literal (or, for conditional/choice elements, by their local
        condition)."""
        positives: List[Literal] = []
        negatives: List[Literal] = []
        comparisons: List[Comparison] = []
        conditionals: List[ConditionalLiteral] = []
        for element in rule.body:
            if isinstance(element, Literal):
                (negatives if element.negated else positives).append(element)
            elif isinstance(element, Comparison):
                comparisons.append(element)
            elif isinstance(element, ConditionalLiteral):
                conditionals.append(element)
            else:
                raise GroundingError(f"unsupported body element: {element!r}")
        bound = _collect_variables(positives)

        def require(variables: Set[str], where: str):
            unbound = variables - bound
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in {where} of rule: {rule}"
                )

        for negative in negatives:
            require({v.name for v in negative.variables()}, "negative literal")
        for comparison in comparisons:
            require({v.name for v in comparison.variables()}, "comparison")
        for conditional in conditionals:
            local = bound | _collect_variables(
                c for c in conditional.condition if isinstance(c, Literal) and not c.negated
            )
            unbound = {v.name for v in conditional.literal.variables()} - local
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in conditional literal of rule: {rule}"
                )
        if isinstance(rule.head, Atom):
            require({v.name for v in rule.head.variables()}, "head")
        elif isinstance(rule.head, Choice):
            for element in rule.head.elements:
                local = bound | _collect_variables(
                    c for c in element.condition if isinstance(c, Literal) and not c.negated
                )
                unbound = {v.name for v in element.atom.variables()} - local
                if unbound:
                    raise GroundingError(
                        f"unsafe variables {sorted(unbound)} in choice element of rule: {rule}"
                    )
            for bound_term in (rule.head.lower, rule.head.upper):
                if bound_term is not None:
                    require({v.name for v in term_variables(bound_term)}, "cardinality bound")

    def _check_minimize_safety(self, minimize: Minimize):
        for element in minimize.elements:
            positives = [
                c for c in element.condition if isinstance(c, Literal) and not c.negated
            ]
            bound = _collect_variables(positives)
            needed: Set[str] = set()
            for term in (element.weight, element.priority) + element.terms:
                needed.update(v.name for v in term_variables(term))
            for item in element.condition:
                if isinstance(item, (Comparison,)) or (
                    isinstance(item, Literal) and item.negated
                ):
                    needed.update(v.name for v in item.variables())
            unbound = needed - bound
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in minimize element: {element}"
                )

    def _add_facts(self, facts: Sequence[tuple]):
        for atom in facts:
            key, args = self._ids_of(atom)
            self.possible.add(key, args)
            self.certain.add(key, args)
            atom_id = self._value_atom_id(atom, key, args)
            self.ground_program.facts.add(atom_id)

    # -- stratification ---------------------------------------------------------

    def _head_predicates(self, rule: Rule) -> List[str]:
        if isinstance(rule.head, Atom):
            return [rule.head.name]
        if isinstance(rule.head, Choice):
            return [element.atom.name for element in rule.head.elements]
        return []

    def _body_predicates(self, rule: Rule) -> List[str]:
        names = []
        for element in rule.body:
            if isinstance(element, Literal):
                names.append(element.atom.name)
            elif isinstance(element, ConditionalLiteral):
                names.append(element.literal.atom.name)
                for condition in element.condition:
                    if isinstance(condition, Literal):
                        names.append(condition.atom.name)
        if isinstance(rule.head, Choice):
            for element in rule.head.elements:
                for condition in element.condition:
                    if isinstance(condition, Literal):
                        names.append(condition.atom.name)
        return names

    def _stratify(self, rules: List[Rule]) -> List[List[Rule]]:
        """Group rules into SCC components of the predicate dependency graph,
        ordered so that dependencies are grounded first."""
        rules_by_head: Dict[str, List[Rule]] = {}
        graph: Dict[str, Set[str]] = {}
        for rule in rules:
            heads = self._head_predicates(rule)
            bodies = self._body_predicates(rule)
            for head in heads:
                rules_by_head.setdefault(head, []).append(rule)
                graph.setdefault(head, set()).update(bodies)
                for body in bodies:
                    graph.setdefault(body, set())

        sccs = _tarjan_sccs(graph)
        # _tarjan_sccs returns components in reverse topological order of the
        # "head depends on body" graph, i.e. dependencies come first.
        components: List[List[Rule]] = []
        seen_rules: Set[int] = set()
        for component in sccs:
            component_rules: List[Rule] = []
            for predicate in component:
                for rule in rules_by_head.get(predicate, []):
                    if id(rule) not in seen_rules:
                        seen_rules.add(id(rule))
                        component_rules.append(rule)
            if component_rules:
                components.append(component_rules)
        return components

    # -- component grounding -------------------------------------------------

    def _ground_component(self, rules: List[Rule], delta: Optional[_AtomDatabase] = None):
        stats = self.stats
        per_rule = stats is not None and stats.per_rule

        def ground_rule(rule: Rule, rule_delta: Optional[_AtomDatabase]) -> bool:
            if per_rule:
                start = perf_counter()
            if isinstance(rule.head, Choice):
                result = self._ground_choice_rule(rule, rule_delta)
            else:
                result = self._ground_normal_rule(rule, rule_delta)
            if per_rule:
                stats.add_rule(self._compile(
                    rule, "choice" if isinstance(rule.head, Choice) else "rule"
                ).label, perf_counter() - start)
            return result

        if delta is None:
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    if ground_rule(rule, None):
                        changed = True
            return

        # Semi-naive: each iteration seeds joins only from the atoms derived
        # in the previous one, so the pass-wide delta is never re-scanned.
        current = delta
        while True:
            next_delta = _AtomDatabase()
            self._delta = next_delta
            try:
                for rule in rules:
                    if isinstance(rule.head, Choice) and self._choice_elements_touched(
                        rule, current
                    ):
                        # an element-condition relation grew: existing
                        # instances may be missing candidates, so re-run
                        # the rule against the full database (the
                        # instance registry upgrades them in place)
                        ground_rule(rule, None)
                    else:
                        ground_rule(rule, current)
            finally:
                self._delta = None
            new_atoms = False
            for key, relation in next_delta.relations.items():
                for args in relation.tuples:
                    delta.add(key, args)
                    new_atoms = True
            if not new_atoms:
                break
            current = next_delta

    def _choice_elements_touched(self, rule: Rule, delta: _AtomDatabase) -> bool:
        """True if ``delta`` extends a relation some choice element of
        ``rule`` ranges over (so existing instances may need re-expansion)."""
        for element in rule.head.elements:
            for item in element.condition:
                if isinstance(item, Literal) and delta.count_name(item.atom.name):
                    return True
        return False

    def _add_possible(self, rel_key: RelKey, args: tuple):
        """Record a derived atom as possible (and as delta when layering)."""
        if self.possible.add(rel_key, args) and self._delta is not None:
            self._delta.add(rel_key, args)

    # -- body instantiation --------------------------------------------------

    def _instances(self, info: _CompiledStatement, delta) -> Iterator[list]:
        """Enumerate body bindings (env lists) for a compiled statement.

        With ``delta``, each positive literal with touched relations seeds a
        semi-naive plan in turn; instances touching several delta atoms come
        out once per seed — the emit methods' dedup keys make that harmless.
        Bodies without positive literals cannot gain instances from added
        facts, so they yield nothing in delta mode (as in the reference).
        """
        env = [None] * info.n_vars
        if delta is None:
            yield from _execute(info.plan(None), env, self.possible, None)
            return
        for seed, literal in enumerate(info.positives):
            relation = delta.relations.get(literal.template.rel_key)
            if relation is None or not relation.tuples:
                continue
            yield from _execute(info.plan(seed), env, self.possible, delta)

    def _materialize_body(self, info: _CompiledStatement, env: list):
        """Build (pos_atom_ids, neg_atom_ids) for one body binding.

        Positive atoms that are certain are dropped (the instance is
        partially simplified at derivation time); instances whose negative
        literals contradict certain facts return None (infeasible).  Atom
        order matches the reference grounder: positives in body order, then
        conditional expansions in body order.
        """
        certain = self.certain
        pos_ids: List[int] = []
        neg_ids: List[int] = []
        for literal in info.positives:
            template = literal.template
            args = template.build(env)
            if certain.contains(template.rel_key, args):
                continue
            pos_ids.append(self._atom_id(template, args))
        for template in info.negatives:
            args = template.build(env)
            if certain.contains(template.rel_key, args):
                return None
            neg_ids.append(self._atom_id(template, args))
        for conditional in info.conditionals:
            if not self._expand_conditional(conditional, env, pos_ids, neg_ids):
                return None
        return pos_ids, neg_ids

    def _expand_conditional(
        self,
        conditional: _CompiledConditional,
        env: list,
        pos_ids: List[int],
        neg_ids: List[int],
    ) -> bool:
        """Expand one conditional literal in place; False = body infeasible.

        Conditions range over *certain* atoms; the sub-plan runs on the same
        env (its local variables occupy disjoint slots prebound by the body
        join).
        """
        if conditional.negated_condition_msg is not None:
            raise GroundingError(conditional.negated_condition_msg)
        certain = self.certain
        template = conditional.template
        if conditional.negated:
            for _ in _execute(conditional.plan, env, certain, None):
                args = template.build(env)
                if certain.contains(template.rel_key, args):
                    return False
                neg_ids.append(self._atom_id(template, args))
        else:
            for _ in _execute(conditional.plan, env, certain, None):
                args = template.build(env)
                if certain.contains(template.rel_key, args):
                    continue  # certainly true; drop from the conjunction
                pos_ids.append(self._atom_id(template, args))
        return True

    # -- rule emission -------------------------------------------------------

    def _ground_normal_rule(self, rule: Rule, delta: Optional[_AtomDatabase] = None) -> bool:
        info = self._compile(rule, "rule")
        if info.neg_unsafe_msg is not None:
            raise GroundingError(info.neg_unsafe_msg)
        changed = False
        head_template = info.head_template
        for env in self._instances(info, delta):
            body = self._materialize_body(info, env)
            if body is None:
                continue
            if info.head_unsafe_msg is not None:
                raise GroundingError(info.head_unsafe_msg)
            pos_ids, neg_ids = body
            head_args = head_template.build(env)
            head_id = self._atom_id(head_template, head_args)
            key = (head_id, tuple(pos_ids), tuple(neg_ids))
            if key in self._rule_keys:
                continue
            self._rule_keys.add(key)
            changed = True

            self._add_possible(head_template.rel_key, head_args)

            if not pos_ids and not neg_ids:
                # The body is certainly true: the head is a fact.
                self.certain.add(head_template.rel_key, head_args)
                self.ground_program.facts.add(head_id)
                continue

            self.ground_program.rules.append(
                GroundRule(head=head_id, pos=key[1], neg=key[2])
            )
        return changed

    def _ground_choice_rule(self, rule: Rule, delta: Optional[_AtomDatabase] = None) -> bool:
        info = self._compile(rule, "choice")
        if info.neg_unsafe_msg is not None:
            raise GroundingError(info.neg_unsafe_msg)
        rule_position = self._rule_position(rule)
        key_slots = info.key_slots
        changed = False
        for env in self._instances(info, delta):
            body = self._materialize_body(info, env)
            if body is None:
                continue
            pos_ids, neg_ids = body
            candidate_ids: List[int] = []
            seen_candidates: Set[int] = set()
            for element in info.elements:
                self._expand_element(element, env, candidate_ids, seen_candidates)
            lower = self._evaluate_bound(info.lower_fn, env)
            upper = self._evaluate_bound(info.upper_fn, env)
            pos = tuple(pos_ids)
            neg = tuple(neg_ids)

            key = (rule_position, tuple(env[slot] for slot in key_slots))
            index = self._choice_instances.get(key)
            if index is None:
                self._choice_instances[key] = len(self.ground_program.choices)
                self.ground_program.choices.append(
                    GroundChoice(
                        atoms=tuple(candidate_ids),
                        pos=pos,
                        neg=neg,
                        lower=lower,
                        upper=upper,
                    )
                )
                changed = True
                continue

            # The instance exists already.  Upgrade it in place if this
            # (re-)derivation expanded to candidates the stored instance is
            # missing (an element-condition relation grew since it was
            # instantiated); keep the stored candidate order and append.
            existing = self.ground_program.choices[index]
            known = set(existing.atoms)
            novel = [cid for cid in candidate_ids if cid not in known]
            if not novel and pos == existing.pos and neg == existing.neg:
                continue
            self.ground_program.choices[index] = GroundChoice(
                atoms=existing.atoms + tuple(novel),
                pos=pos,
                neg=neg,
                lower=lower,
                upper=upper,
            )
            if novel:
                changed = True
        return changed

    def _expand_element(
        self,
        element: _CompiledElement,
        env: list,
        candidate_ids: List[int],
        seen: Set[int],
    ):
        """Append this element's candidate atom ids (per-instance dedup)."""
        if element.negated_condition_msg is not None:
            raise GroundingError(element.negated_condition_msg)
        template = element.template
        for _ in _execute(element.plan, env, self.certain, None):
            args = template.build(env)
            atom_id = self._atom_id(template, args)
            if atom_id not in seen:
                seen.add(atom_id)
                self._add_possible(template.rel_key, args)
                candidate_ids.append(atom_id)

    def _evaluate_bound(self, bound_fn, env: list) -> Optional[int]:
        if bound_fn is None:
            return None
        value = bound_fn(env)
        if not isinstance(value, int):
            raise GroundingError(f"cardinality bound is not an integer: {value!r}")
        return value

    # -- constraints and minimize --------------------------------------------

    def _ground_constraint(self, rule: Rule, delta: Optional[_AtomDatabase] = None):
        info = self._compile(rule, "constraint")
        if info.neg_unsafe_msg is not None:
            raise GroundingError(info.neg_unsafe_msg)
        for env in self._instances(info, delta):
            body = self._materialize_body(info, env)
            if body is None:
                continue
            pos_ids, neg_ids = body
            key = (tuple(pos_ids), tuple(neg_ids))
            if key in self._constraint_keys:
                continue
            self._constraint_keys.add(key)
            self.ground_program.constraints.append(
                GroundConstraint(pos=key[0], neg=key[1])
            )

    def _ground_minimize(self, minimize: Minimize, delta: Optional[_AtomDatabase] = None):
        for element in minimize.elements:
            info = self._compile(element, "minimize_element")
            if info.neg_unsafe_msg is not None:
                raise GroundingError(info.neg_unsafe_msg)
            for env in self._instances(info, delta):
                body = self._materialize_body(info, env)
                if body is None:
                    continue
                pos_ids, neg_ids = body
                weight = info.weight_fn(env)
                priority = info.priority_fn(env)
                if not isinstance(weight, int) or not isinstance(priority, int):
                    raise GroundingError(
                        f"minimize weight/priority must be integers: {element}"
                    )
                terms = tuple(fn(env) for fn in info.term_fns)
                key = (priority, weight, terms, tuple(pos_ids), tuple(neg_ids))
                if key in self._minimize_keys:
                    continue
                self._minimize_keys.add(key)
                self.ground_program.minimize_literals.append(
                    GroundMinimizeLiteral(
                        priority=priority,
                        weight=weight,
                        key=(priority, weight) + terms,
                        pos=key[3],
                        neg=key[4],
                    )
                )

    # -- registry / pickling -------------------------------------------------

    def restore_setup(self) -> None:
        """Rebuild the stratified component plan from the program AST.

        A grounder whose ground state was restored from a flat snapshot
        (:mod:`repro.asp.snapshot`) is complete — atoms, relations, rules,
        registries — but :meth:`ground_delta` also needs ``_components`` /
        ``_constraints``, and would fall back to a *full* re-ground if they
        were still ``None``.  Stratification depends only on the (already
        safety-checked) program, so recomputing it here costs microseconds
        and never touches ground state.
        """
        _facts, rules, constraints = self._split_statements()
        self._components = self._stratify(rules)
        self._constraints = constraints

    def _rule_position(self, rule: Rule) -> int:
        """A pickle-stable identity for ``rule`` (its index in the program).

        ``id(rule)`` would not survive a pickle round trip (the persistent
        ground cache pickles grounders), so registry keys use positions.  The
        id->position memo itself is process-local and dropped on pickling.
        """
        positions = self.__dict__.get("_rule_positions")
        if positions is None or id(rule) not in positions:
            positions = {id(r): i for i, r in enumerate(self.program.rules)}
            self._rule_positions = positions
        return positions[id(rule)]

    def __getstate__(self):
        state = dict(self.__dict__)
        # process-local caches: the rule-position memo keys on id() and the
        # compiled plans embed closures; both rebuild lazily after unpickling
        state.pop("_rule_positions", None)
        state.pop("_compiled", None)
        state.pop("stats", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.stats = None
        self._compiled = {}


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC; components are returned dependencies-first."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    result: List[List[str]] = []

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                elif successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def ground_program(program: Program, extra_facts: Sequence[tuple] = ()) -> GroundProgram:
    """Convenience one-shot grounding of ``program`` plus ``extra_facts``."""
    return Grounder(program, extra_facts).ground()
