"""Ground (propositional) program representation.

The grounder (:mod:`repro.asp.grounder`) turns a first-order
:class:`repro.asp.syntax.Program` into a :class:`GroundProgram`: every atom is
interned as an integer id and rules become tuples of atom ids.  This is the
input handed to Clark completion (:mod:`repro.asp.completion`) and the CDCL
solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.asp.syntax import format_ground_atom

GroundAtom = Tuple  # (predicate, arg1, arg2, ...)


@dataclass(frozen=True)
class GroundRule:
    """``head :- pos_1, ..., not neg_1, ...`` over atom ids."""

    head: int
    pos: Tuple[int, ...]
    neg: Tuple[int, ...]


@dataclass(frozen=True)
class GroundConstraint:
    """An integrity constraint ``:- pos_1, ..., not neg_1, ...``."""

    pos: Tuple[int, ...]
    neg: Tuple[int, ...]


@dataclass(frozen=True)
class GroundChoice:
    """A choice rule ``L { a_1; ...; a_n } U :- body`` over atom ids."""

    atoms: Tuple[int, ...]
    pos: Tuple[int, ...]
    neg: Tuple[int, ...]
    lower: Optional[int] = None
    upper: Optional[int] = None


@dataclass(frozen=True)
class GroundMinimizeLiteral:
    """One ground ``#minimize`` element.

    ``key`` identifies the element: duplicate keys must be counted only once
    (clingo semantics), so the completion step merges conditions of elements
    sharing a key into a single objective variable.
    """

    priority: int
    weight: int
    key: Tuple
    pos: Tuple[int, ...]
    neg: Tuple[int, ...]


class AtomTable:
    """Bidirectional interning of ground atoms to dense integer ids.

    Atom id 0 is reserved as "invalid"; real atoms start at 1 so ids can be
    safely negated elsewhere if needed.
    """

    def __init__(self):
        self._to_id: Dict[GroundAtom, int] = {}
        self._to_atom: List[Optional[GroundAtom]] = [None]

    def __len__(self) -> int:
        return len(self._to_atom) - 1

    def __contains__(self, atom: GroundAtom) -> bool:
        return atom in self._to_id

    def intern(self, atom: GroundAtom) -> int:
        atom_id = self._to_id.get(atom)
        if atom_id is None:
            atom_id = len(self._to_atom)
            self._to_id[atom] = atom_id
            self._to_atom.append(atom)
        return atom_id

    def copy(self) -> "AtomTable":
        """An independent copy (atoms themselves are immutable tuples)."""
        table = AtomTable.__new__(AtomTable)
        table._to_id = dict(self._to_id)
        table._to_atom = list(self._to_atom)
        return table

    def lookup(self, atom: GroundAtom) -> Optional[int]:
        return self._to_id.get(atom)

    def atom(self, atom_id: int) -> GroundAtom:
        return self._to_atom[atom_id]

    def atoms(self):
        """Iterate over (id, atom) pairs."""
        for atom_id in range(1, len(self._to_atom)):
            yield atom_id, self._to_atom[atom_id]


@dataclass
class GroundProgram:
    """The complete propositional program produced by grounding."""

    atoms: AtomTable = field(default_factory=AtomTable)
    facts: Set[int] = field(default_factory=set)
    rules: List[GroundRule] = field(default_factory=list)
    constraints: List[GroundConstraint] = field(default_factory=list)
    choices: List[GroundChoice] = field(default_factory=list)
    minimize_literals: List[GroundMinimizeLiteral] = field(default_factory=list)

    def copy(self) -> "GroundProgram":
        """A fork that can be extended without touching this program.

        Rules, constraints, choices, and minimize literals are frozen
        dataclasses, so sharing the elements between the copies is safe.
        """
        return GroundProgram(
            atoms=self.atoms.copy(),
            facts=set(self.facts),
            rules=list(self.rules),
            constraints=list(self.constraints),
            choices=list(self.choices),
            minimize_literals=list(self.minimize_literals),
        )

    # -- statistics ---------------------------------------------------------

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_rules(self) -> int:
        return len(self.rules) + len(self.choices) + len(self.constraints)

    def statistics(self) -> Dict[str, int]:
        return {
            "atoms": self.num_atoms,
            "facts": len(self.facts),
            "normal_rules": len(self.rules),
            "choice_rules": len(self.choices),
            "constraints": len(self.constraints),
            "minimize_literals": len(self.minimize_literals),
        }

    # -- debugging helpers ----------------------------------------------------

    def format_atom(self, atom_id: int) -> str:
        return format_ground_atom(self.atoms.atom(atom_id))

    def pretty(self, limit: Optional[int] = None) -> str:
        """Human-readable dump of the ground program (for tests/debugging)."""
        lines = []
        for atom_id in sorted(self.facts):
            lines.append(self.format_atom(atom_id) + ".")
        for rule in self.rules:
            lines.append(self._format_rule(rule.head, rule.pos, rule.neg))
        for choice in self.choices:
            inner = "; ".join(self.format_atom(a) for a in choice.atoms)
            lower = f"{choice.lower} " if choice.lower is not None else ""
            upper = f" {choice.upper}" if choice.upper is not None else ""
            head = f"{lower}{{ {inner} }}{upper}"
            lines.append(self._format_rule_text(head, choice.pos, choice.neg))
        for constraint in self.constraints:
            lines.append(self._format_rule_text("", constraint.pos, constraint.neg))
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines)

    def _format_rule(self, head: int, pos, neg) -> str:
        return self._format_rule_text(self.format_atom(head), pos, neg)

    def _format_rule_text(self, head_text: str, pos, neg) -> str:
        body_parts = [self.format_atom(a) for a in pos]
        body_parts += ["not " + self.format_atom(a) for a in neg]
        if not body_parts:
            return f"{head_text}."
        body = ", ".join(body_parts)
        if head_text:
            return f"{head_text} :- {body}."
        return f":- {body}."
