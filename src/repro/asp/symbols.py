"""Symbol interning for the hot grounding/solving path.

The grounder's inner loops compare, hash, and copy ground terms millions of
times per solve.  Doing that over heterogeneous Python values (strings,
ints) costs a string hash + comparison per touch; doing it over *interned
symbol ids* costs a small-int hash, and lets the whole join pipeline run on
flat ``tuple[int, ...]`` keys.

:class:`SymbolTable` is an append-only bijection ``value <-> dense int id``:

* ``intern(value)`` returns the existing id or assigns the next dense one;
* ``value(id)`` / ``values`` materialize strings back for result extraction
  (the *only* place strings are needed — models, statistics, explanations);
* one table is shared per grounder **lineage** (a base grounder and every
  ``clone()`` forked from it), so id-tuples flowing between a prepared base
  and its per-spec deltas always agree.

Thread-safety: reads are lock-free (dict/list lookups are atomic under the
GIL and the table is append-only); only the intern *miss* path takes a lock,
so concurrent thread-backend solves sharing a warm base never race id
assignment.  Pickling stores just the value list (the id map is rebuilt),
and drops the lock, so prepared programs stay fork- and cache-safe.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, List, Tuple

__all__ = ["SymbolTable"]


class SymbolTable:
    """Append-only intern table mapping ground values to dense int ids."""

    __slots__ = ("_ids", "_values", "_lock")

    def __init__(self, values: Iterable[Hashable] = ()):
        self._values: List[Hashable] = list(values)
        self._ids: Dict[Hashable, int] = {
            value: index for index, value in enumerate(self._values)
        }
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value: Hashable) -> int:
        """Return the id for ``value``, assigning the next dense id on miss.

        The fast path is a single dict probe; the miss path re-checks under
        the lock so two threads interning the same new value agree on its id.
        """
        symbol = self._ids.get(value)
        if symbol is not None:
            return symbol
        with self._lock:
            symbol = self._ids.get(value)
            if symbol is None:
                symbol = len(self._values)
                self._values.append(value)
                self._ids[value] = symbol
            return symbol

    def intern_tuple(self, values: Tuple[Hashable, ...]) -> Tuple[int, ...]:
        """Intern every element of a ground value tuple."""
        intern = self.intern
        return tuple(intern(value) for value in values)

    def value(self, symbol: int) -> Hashable:
        """Materialize the value for an id (result-extraction path)."""
        return self._values[symbol]

    @property
    def values(self) -> List[Hashable]:
        """The live id -> value list (read-only by convention; hot loops
        index it directly instead of calling :meth:`value`)."""
        return self._values

    def materialize(self, symbols: Iterable[int]) -> Tuple[Hashable, ...]:
        """Map a tuple of ids back to the underlying values."""
        values = self._values
        return tuple(values[symbol] for symbol in symbols)

    def snapshot_values(self) -> List[Hashable]:
        """A consistent copy of the value list (serialization path).

        Taken under the intern lock so a concurrent intern from another
        thread cannot leave a half-appended entry in the copy.  Both the
        pickle path and the flat mmap snapshot writer
        (:mod:`repro.asp.snapshot`) use this.
        """
        with self._lock:
            return list(self._values)

    # -- pickling ------------------------------------------------------
    # Only the value list is stored (the id map is derived) and the lock is
    # dropped; the snapshot is taken under the lock so a concurrent intern
    # from another thread cannot corrupt the pickled state.

    def __getstate__(self):
        return {"values": self.snapshot_values()}

    def __setstate__(self, state):
        self._values = state["values"]
        self._ids = {value: index for index, value in enumerate(self._values)}
        self._lock = threading.Lock()
