"""clingo-like facade over the parser, grounder, completion, and optimizer.

Typical use (mirroring how the concretizer drives clingo in the paper)::

    ctl = Control(config=SolverConfig.preset("tweety"))
    ctl.load(LOGIC_PROGRAM_TEXT)          # "load" phase
    ctl.add_fact("node", "hdf5")          # facts from the problem instance
    ctl.ground()                          # "ground" phase
    result = ctl.solve()                  # "solve" phase
    if result.satisfiable:
        for atom in result.model.atoms("version"):
            ...

Phase timings (load/ground/solve) are recorded on ``ctl.timer`` so the
benchmark harness can reproduce the paper's Figure 7 measurements; the caller
(the Spack layer) accounts the fact-generation "setup" phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asp.completion import CompletedProgram, complete
from repro.asp.configs import SolverConfig, SolverPreset
from repro.asp.errors import SolveError
from repro.asp.ground import GroundProgram
from repro.asp.grounder import Grounder
from repro.asp.naive import NaiveGrounder
from repro.asp.optimization import OptimizationResult, Optimizer
from repro.asp.parser import parse_program
from repro.asp.solver import CDCLSolver
from repro.asp.stats import ASPStats, PhaseTimer
from repro.asp.syntax import Program, ground_atom

#: Parsed-program memo: the concretizer loads the same ~300-line logic program
#: for every solve, so lexing/parsing it once per process is a free win.  The
#: cached Program objects are treated as immutable by all consumers.
_PARSE_CACHE: Dict[str, Program] = {}
_PARSE_CACHE_LIMIT = 32

#: selectable grounding implementations: the indexed/planned grounder is the
#: default; the tuple-at-a-time reference stays available as an oracle and as
#: an escape hatch (sessions accept ``join_strategy="naive"``)
GROUNDER_CLASSES = {"indexed": Grounder, "naive": NaiveGrounder}


def grounder_class(join_strategy: str):
    """Resolve a join-strategy name to a grounder class (ValueError on typo)."""
    try:
        return GROUNDER_CLASSES[join_strategy]
    except KeyError:
        known = ", ".join(sorted(GROUNDER_CLASSES))
        raise ValueError(
            f"unknown join strategy {join_strategy!r} (known: {known})"
        ) from None


def parse_program_cached(text: str) -> Program:
    """Parse ASP source text with per-process memoization.

    Callers must not mutate the returned Program (extend a fresh Program
    instead, as :meth:`Control.load` does).
    """
    program = _PARSE_CACHE.get(text)
    if program is None:
        program = parse_program(text)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = program
    return program


class Model:
    """A stable model: a set of ground atoms with convenient accessors."""

    def __init__(self, atoms: Iterable[Tuple], costs: Optional[Dict[int, int]] = None):
        self._atoms: Set[Tuple] = set(atoms)
        self.costs: Dict[int, int] = dict(costs or {})
        self._by_predicate: Dict[str, List[Tuple]] = {}
        for atom in self._atoms:
            self._by_predicate.setdefault(atom[0], []).append(atom)
        for values in self._by_predicate.values():
            values.sort(key=lambda a: tuple(str(x) for x in a[1:]))

    def __contains__(self, atom: Tuple) -> bool:
        return tuple(atom) in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)

    def atoms(self, predicate: Optional[str] = None) -> List[Tuple]:
        """All atoms, or just those of one predicate."""
        if predicate is None:
            return sorted(self._atoms, key=lambda a: (a[0],) + tuple(str(x) for x in a[1:]))
        return list(self._by_predicate.get(predicate, []))

    def arguments(self, predicate: str) -> List[Tuple]:
        """Argument tuples (without the predicate name) of one predicate."""
        return [atom[1:] for atom in self._by_predicate.get(predicate, [])]

    def holds(self, predicate: str, *args) -> bool:
        return ground_atom(predicate, *args) in self._atoms

    def cost_tuple(self) -> Tuple[int, ...]:
        return tuple(self.costs[p] for p in sorted(self.costs, reverse=True))


@dataclass
class SolveResult:
    """Outcome of :meth:`Control.solve`."""

    satisfiable: bool
    optimal: bool = False
    model: Optional[Model] = None
    costs: Dict[int, int] = field(default_factory=dict)
    statistics: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.satisfiable


class Control:
    """Top-level entry point of the ASP system (the 'clingo' object)."""

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        preset: Optional[SolverPreset] = None,
        join_strategy: str = "indexed",
        stats: Optional[ASPStats] = None,
    ):
        self.config = config or SolverConfig.preset("tweety")
        #: explicit CDCL knobs override the config's (portfolio racing)
        self.preset = preset
        self.join_strategy = join_strategy
        self.stats = stats
        self.timer = PhaseTimer()
        self.program = Program()
        self.extra_facts: List[Tuple] = []
        self.ground_program: Optional[GroundProgram] = None
        self.completed: Optional[CompletedProgram] = None
        self._optimizer: Optional[Optimizer] = None

    # -- program construction ------------------------------------------------

    def load(self, text: str) -> "Control":
        """Parse ASP source text and add it to the program ("load" phase)."""
        with self.timer.phase("load"):
            parsed = parse_program_cached(text)
            self.program.extend(parsed)
        return self

    # clingo spells this `add`; keep both for familiarity.
    add = load

    def add_fact(self, name: str, *args) -> "Control":
        """Add one ground fact built from Python values (str/int/bool)."""
        self.extra_facts.append(ground_atom(name, *args))
        return self

    def add_facts(self, facts: Iterable[Tuple]) -> "Control":
        """Add many ground facts; each is ``(predicate, arg1, arg2, ...)``."""
        for atom in facts:
            self.add_fact(*atom)
        return self

    # -- grounding ------------------------------------------------------------

    def ground(self) -> GroundProgram:
        """Ground the program against the accumulated facts ("ground" phase)."""
        with self.timer.phase("ground"):
            grounder = grounder_class(self.join_strategy)(
                self.program, self.extra_facts
            )
            if self.stats is not None and isinstance(grounder, Grounder):
                grounder.stats = self.stats
            self.ground_program = grounder.ground()
        return self.ground_program

    def adopt_ground(self, ground_program: GroundProgram) -> "Control":
        """Adopt an externally produced ground program (see
        :class:`PreparedProgram`); :meth:`solve` will use it directly."""
        self.ground_program = ground_program
        return self

    # -- solving ---------------------------------------------------------------

    def _build_solver(self) -> CDCLSolver:
        preset = self.preset or SolverPreset.from_config(self.config)
        return CDCLSolver(**preset.solver_kwargs())

    def solve(self, on_model=None) -> SolveResult:
        """Complete, search, and optimize ("solve" phase)."""
        if self.ground_program is None:
            self.ground()

        stats = self.stats
        stage = stats.stage if stats is not None else None
        with self.timer.phase("solve"):
            if stage is not None:
                with stage("solve.complete"):
                    self.completed = complete(self.ground_program, self._build_solver())
            else:
                self.completed = complete(self.ground_program, self._build_solver())
            self._optimizer = Optimizer(
                self.completed,
                enforce_stability=self.config.enforce_stability,
                zero_first=self.config.zero_first,
            )
            if stage is not None:
                with stage("solve.search"):
                    outcome: OptimizationResult = self._optimizer.optimize()
            else:
                outcome = self._optimizer.optimize()

        statistics: Dict[str, object] = {
            "ground": self.ground_program.statistics(),
            "solver": self.completed.solver.statistics(),
            "optimization": self._optimizer.statistics(),
            "config": self.config.name,
        }

        if not outcome.satisfiable:
            return SolveResult(
                satisfiable=False,
                statistics=statistics,
                timings=self.timer.as_dict(),
            )

        atom_table = self.ground_program.atoms
        model = Model(
            (atom_table.atom(atom_id) for atom_id in outcome.atoms),
            costs=outcome.costs,
        )
        if on_model is not None:
            on_model(model)
        return SolveResult(
            satisfiable=True,
            optimal=outcome.optimal,
            model=model,
            costs=outcome.costs,
            statistics=statistics,
            timings=self.timer.as_dict(),
        )

    # -- convenience ---------------------------------------------------------------

    def solve_text(self, text: str, facts: Sequence[Tuple] = ()) -> SolveResult:
        """One-shot helper: load text, add facts, ground, and solve."""
        self.load(text)
        self.add_facts(facts)
        self.ground()
        return self.solve()


class PreparedProgram:
    """A logic program parsed once and grounded once against a shared base
    fact layer, from which per-solve controls are forked cheaply.

    This is the reusable-ground-program primitive behind batch
    concretization: the program text and the spec-independent facts are
    lexed/parsed/grounded exactly once, and every :meth:`fork` only clones
    the ground state and layers its extra facts incrementally
    (:meth:`repro.asp.grounder.Grounder.ground_delta`).

    The delta facts handed to :meth:`fork` must obey the layering contract
    documented on :class:`~repro.asp.grounder.Grounder` (fresh condition
    ids/keys only).

    **Fork- and pickle-safety.**  Once ``__init__`` returns, a prepared
    program is only ever *read*: :meth:`fork` clones the ground state and
    mutates the clone, never the base (the ``forks`` counter is the sole,
    benign exception).  Nothing here holds locks, file handles, threads, or
    other process-local resources — just parsed syntax trees and interned
    ground atoms.  Parallel concretization sessions rely on both
    consequences: ``os.fork()``-based worker pools inherit prepared programs
    through copy-on-write memory and fork them concurrently, and the
    persistent ground cache (:class:`repro.spack.store.PersistentGroundCache`)
    pickles them to disk for later processes.
    """

    def __init__(
        self,
        text: str,
        base_facts: Sequence[Tuple] = (),
        config: Optional[SolverConfig] = None,
        possible_hints: Sequence[Tuple] = (),
        join_strategy: str = "indexed",
        stats: Optional[ASPStats] = None,
        fact_source=None,
    ):
        """``fact_source``, when given, is a callable invoked with a
        ``write(atom)`` sink; it streams base facts straight into the
        grounder (no intermediate fact list) and may *return* extra possible
        hints computed during emission (e.g. hints that depend on what was
        encoded).  It composes with, and is ordered after, ``base_facts``.
        """
        self.config = config or SolverConfig.preset("tweety")
        self.join_strategy = join_strategy
        self.stats = stats
        self.timer = PhaseTimer()
        #: source text kept for flat snapshots (repro.asp.snapshot): an
        #: attaching process reparses it via the per-process parse memo
        #: instead of pickling the AST.
        self.text = text
        with self.timer.phase("load"):
            self.program = parse_program_cached(text)
        atoms = [ground_atom(*fact) for fact in base_facts]
        hints = [ground_atom(*hint) for hint in possible_hints]
        cls = grounder_class(join_strategy)
        with self.timer.phase("ground"):
            if cls is Grounder:
                self._base = Grounder(
                    self.program, atoms, possible_hints=hints, stats=stats
                )
                if fact_source is not None:
                    streamed_hints = fact_source(self._base.fact_writer())
                    if streamed_hints:
                        self._base.add_possible_hints(
                            ground_atom(*hint) for hint in streamed_hints
                        )
            else:
                if fact_source is not None:
                    streamed_hints = fact_source(
                        lambda atom: atoms.append(ground_atom(*atom))
                    )
                    if streamed_hints:
                        hints.extend(
                            ground_atom(*hint) for hint in streamed_hints
                        )
                self._base = cls(self.program, atoms, possible_hints=hints)
            self._base.ground()
        self.forks = 0

    @property
    def base_ground_program(self) -> GroundProgram:
        """The shared (spec-independent) ground program."""
        return self._base.ground_program

    def extend(
        self,
        extra_facts: Sequence[Tuple] = (),
        possible_hints: Sequence[Tuple] = (),
    ) -> "PreparedProgram":
        """A new prepared program layering more *base* facts onto this one.

        Where :meth:`fork` yields a throwaway per-solve :class:`Control`,
        ``extend`` yields another shareable :class:`PreparedProgram`: the
        grounding state is cloned and the new facts (plus layer-local
        possibility hints) are grounded incrementally on the clone, so
        ``self`` is never touched and both programs remain independently
        forkable and picklable.  Sharded repository sessions chain one
        ``extend`` per shard layer, caching every prefix of the chain.
        """
        layered = PreparedProgram.__new__(PreparedProgram)
        layered.config = self.config
        layered.join_strategy = self.join_strategy
        layered.stats = self.stats
        layered.timer = PhaseTimer()
        layered.text = self.text
        layered.program = self.program
        atoms = [ground_atom(*fact) for fact in extra_facts]
        hints = [ground_atom(*hint) for hint in possible_hints]
        with layered.timer.phase("ground"):
            grounder = self._base.clone()
            grounder.ground_delta(atoms, possible_hints=hints)
        layered._base = grounder
        layered.forks = 0
        return layered

    def statistics(self) -> Dict[str, object]:
        return {
            "base_groundings": self._base.base_groundings,
            "forks": self.forks,
            "base_ground": self._base.ground_program.statistics(),
            "base_timings": self.timer.as_dict(),
        }

    def fork(
        self,
        extra_facts: Sequence[Tuple] = (),
        config: Optional[SolverConfig] = None,
        preset: Optional[SolverPreset] = None,
        fact_source=None,
    ) -> Control:
        """A :class:`Control` holding base + ``extra_facts``, ready to solve.

        Only the delta facts are ground here; the shared base program is
        reused as-is.  The returned control's timer accounts the incremental
        grounding under "ground" (its "load" is zero — parsing happened once,
        in :meth:`__init__`).  ``fact_source`` streams additional delta
        facts, same contract as in :meth:`__init__` (hints it returns are
        ignored here — the delta layer derives possibility itself).
        """
        self.forks += 1
        control = Control(
            config=config or self.config,
            preset=preset,
            join_strategy=self.join_strategy,
            stats=self.stats,
        )
        with control.timer.phase("ground"):
            grounder = self._base.clone()
            atoms = [ground_atom(*fact) for fact in extra_facts]
            if isinstance(grounder, Grounder):
                grounder.ground_delta(atoms, fact_source=fact_source)
            else:
                if fact_source is not None:
                    fact_source(lambda atom: atoms.append(ground_atom(*atom)))
                grounder.ground_delta(atoms)
        control.adopt_ground(grounder.ground_program)
        return control


def solve_program(
    text: str,
    facts: Sequence[Tuple] = (),
    config: Optional[SolverConfig] = None,
) -> SolveResult:
    """Module-level convenience wrapper used widely in tests and examples."""
    control = Control(config=config)
    return control.solve_text(text, facts)
