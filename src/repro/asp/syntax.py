"""Abstract syntax tree for the ASP input language.

The grammar supported here is a practical subset of gringo's language: it is
what the paper's logic program (Section V) needs, plus a bit of headroom.

Ground values
-------------
Once grounded, terms evaluate to plain Python values: ``int`` for numerals and
``str`` for both quoted strings and symbolic constants.  Ground atoms are
interned as tuples ``(predicate_name, arg1, arg2, ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

# --------------------------------------------------------------------------
# Terms
# --------------------------------------------------------------------------

GroundValue = Union[int, str]


@dataclass(frozen=True)
class Variable:
    """A first-order variable (capitalised identifier, or ``_``)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Number:
    """An integer constant."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class String:
    """A quoted string constant, e.g. ``"hdf5"``."""

    value: str

    def __str__(self):
        return '"%s"' % self.value


@dataclass(frozen=True)
class Constant:
    """A symbolic (lowercase) constant, e.g. ``true``."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class BinaryOp:
    """An arithmetic expression over terms, evaluated during grounding."""

    op: str  # one of "+", "-", "*", "/"
    left: "Term"
    right: "Term"

    def __str__(self):
        return f"({self.left}{self.op}{self.right})"


Term = Union[Variable, Number, String, Constant, BinaryOp]


def term_variables(term: Term):
    """Yield every :class:`Variable` occurring in ``term``."""
    if isinstance(term, Variable):
        if term.name != "_":
            yield term
    elif isinstance(term, BinaryOp):
        yield from term_variables(term.left)
        yield from term_variables(term.right)


def term_is_ground(term: Term) -> bool:
    """Return True if ``term`` contains no variables."""
    if isinstance(term, Variable):
        return False
    if isinstance(term, BinaryOp):
        return term_is_ground(term.left) and term_is_ground(term.right)
    return True


def evaluate_term(term: Term, substitution) -> GroundValue:
    """Evaluate ``term`` under ``substitution`` (a dict Variable name -> value).

    Raises ``KeyError`` if a variable is unbound and ``TypeError`` when
    arithmetic is attempted on non-integers.
    """
    if isinstance(term, Number):
        return term.value
    if isinstance(term, String):
        return term.value
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Variable):
        return substitution[term.name]
    if isinstance(term, BinaryOp):
        left = evaluate_term(term.left, substitution)
        right = evaluate_term(term.right, substitution)
        if not isinstance(left, int) or not isinstance(right, int):
            raise TypeError(
                f"arithmetic on non-integer terms: {left!r} {term.op} {right!r}"
            )
        if term.op == "+":
            return left + right
        if term.op == "-":
            return left - right
        if term.op == "*":
            return left * right
        if term.op == "/":
            return left // right
        raise ValueError(f"unknown operator {term.op!r}")
    raise TypeError(f"not a term: {term!r}")


def ground_value_to_term(value: GroundValue) -> Term:
    """Convert a Python ground value back into a term (used for printing)."""
    if isinstance(value, bool):
        return Constant("true" if value else "false")
    if isinstance(value, int):
        return Number(value)
    return String(value)


def format_ground_value(value: GroundValue) -> str:
    """Render a ground value the way it would appear in ASP source."""
    if isinstance(value, int):
        return str(value)
    return '"%s"' % value


# --------------------------------------------------------------------------
# Atoms and literals
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``depends_on("hdf5", "mpi")``."""

    name: str
    arguments: Tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.arguments)

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.name, len(self.arguments))

    def variables(self):
        for argument in self.arguments:
            yield from term_variables(argument)

    def is_ground(self) -> bool:
        return all(term_is_ground(argument) for argument in self.arguments)

    def ground(self, substitution) -> Tuple[GroundValue, ...]:
        """Return the interned ground atom tuple under ``substitution``."""
        return (self.name,) + tuple(
            evaluate_term(argument, substitution) for argument in self.arguments
        )

    def __str__(self):
        if not self.arguments:
            return self.name
        args = ",".join(str(argument) for argument in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class Literal:
    """An atom or its (default) negation inside a rule body."""

    atom: Atom
    negated: bool = False

    def variables(self):
        yield from self.atom.variables()

    def __str__(self):
        prefix = "not " if self.negated else ""
        return prefix + str(self.atom)


COMPARISON_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """A builtin comparison literal such as ``V1 != V2``.

    Comparisons are evaluated during grounding: mixed int/str comparisons
    order integers before strings (a total order, like clingo's term order).
    """

    op: str
    left: Term
    right: Term

    def variables(self):
        yield from term_variables(self.left)
        yield from term_variables(self.right)

    def evaluate(self, substitution) -> bool:
        left = evaluate_term(self.left, substitution)
        right = evaluate_term(self.right, substitution)
        return compare_ground_values(self.op, left, right)

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


def _order_key(value: GroundValue):
    # Total order across types: integers sort before strings, mirroring
    # clingo's ordering of numerals before strings.
    if isinstance(value, int):
        return (0, value, "")
    return (1, 0, value)


def compare_ground_values(op: str, left: GroundValue, right: GroundValue) -> bool:
    """Evaluate a comparison operator over two ground values."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    lk, rk = _order_key(left), _order_key(right)
    if op == "<":
        return lk < rk
    if op == "<=":
        return lk <= rk
    if op == ">":
        return lk > rk
    if op == ">=":
        return lk >= rk
    raise ValueError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class ConditionalLiteral:
    """A conditional literal ``literal : cond_1, ..., cond_n``.

    In a rule body this expands, at grounding time, to the *conjunction* of
    all instances of ``literal`` for which the condition holds.  Conditions
    must range over *domain* predicates (predicates fully determined by facts),
    which is how the paper's generalized condition handling uses them.
    """

    literal: Literal
    condition: Tuple[Union[Literal, Comparison], ...] = ()

    def variables(self):
        yield from self.literal.variables()
        for item in self.condition:
            yield from item.variables()

    def __str__(self):
        cond = ", ".join(str(c) for c in self.condition)
        return f"{self.literal} : {cond}"


BodyElement = Union[Literal, Comparison, ConditionalLiteral]


# --------------------------------------------------------------------------
# Heads: plain atoms and choices
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ChoiceElement:
    """One element of a choice head: ``atom : cond_1, ..., cond_n``."""

    atom: Atom
    condition: Tuple[Union[Literal, Comparison], ...] = ()

    def __str__(self):
        if not self.condition:
            return str(self.atom)
        cond = ", ".join(str(c) for c in self.condition)
        return f"{self.atom} : {cond}"


@dataclass(frozen=True)
class Choice:
    """A choice head ``L { e_1; ...; e_n } U`` with optional bounds."""

    elements: Tuple[ChoiceElement, ...]
    lower: Optional[Term] = None
    upper: Optional[Term] = None

    def __str__(self):
        inner = "; ".join(str(e) for e in self.elements)
        lower = f"{self.lower} " if self.lower is not None else ""
        upper = f" {self.upper}" if self.upper is not None else ""
        return f"{lower}{{ {inner} }}{upper}"


Head = Union[Atom, Choice, None]


# --------------------------------------------------------------------------
# Rules and directives
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body.``  ``head is None`` means integrity constraint."""

    head: Head
    body: Tuple[BodyElement, ...] = ()

    @property
    def is_fact(self) -> bool:
        return isinstance(self.head, Atom) and not self.body

    @property
    def is_constraint(self) -> bool:
        return self.head is None

    def __str__(self):
        body = ", ".join(str(b) for b in self.body)
        if self.head is None:
            return f":- {body}."
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {body}."


@dataclass(frozen=True)
class MinimizeElement:
    """One element of a ``#minimize`` statement.

    ``weight@priority, t_1, ..., t_n : cond`` — the weight contributes to the
    objective at the given priority level whenever the condition holds; the
    tuple ``(priority, weight, terms)`` identifies the element (duplicates
    count once, per clingo semantics).
    """

    weight: Term
    priority: Term
    terms: Tuple[Term, ...] = ()
    condition: Tuple[Union[Literal, Comparison], ...] = ()

    def __str__(self):
        terms = "".join("," + str(t) for t in self.terms)
        cond = ", ".join(str(c) for c in self.condition)
        out = f"{self.weight}@{self.priority}{terms}"
        if cond:
            out += f" : {cond}"
        return out


@dataclass(frozen=True)
class Minimize:
    """A ``#minimize { ... }.`` statement."""

    elements: Tuple[MinimizeElement, ...]

    def __str__(self):
        inner = "; ".join(str(e) for e in self.elements)
        return f"#minimize {{ {inner} }}."


Statement = Union[Rule, Minimize]


@dataclass
class Program:
    """A parsed (non-ground) ASP program: rules plus minimize statements."""

    rules: list = field(default_factory=list)
    minimizes: list = field(default_factory=list)

    def add(self, statement: Statement):
        if isinstance(statement, Minimize):
            self.minimizes.append(statement)
        else:
            self.rules.append(statement)

    def extend(self, other: "Program"):
        self.rules.extend(other.rules)
        self.minimizes.extend(other.minimizes)

    def statements(self) -> Sequence[Statement]:
        return list(self.rules) + list(self.minimizes)

    def __str__(self):
        return "\n".join(str(s) for s in self.statements())


# --------------------------------------------------------------------------
# Helpers for building ground facts programmatically
# --------------------------------------------------------------------------


def fact(name: str, *args: GroundValue) -> Rule:
    """Build a ground fact ``name(args...).`` from Python values."""
    return Rule(head=Atom(name, tuple(ground_value_to_term(a) for a in args)))


def ground_atom(name: str, *args: GroundValue) -> Tuple[GroundValue, ...]:
    """Build an interned ground-atom tuple from Python values."""
    return (name,) + tuple(int(a) if isinstance(a, bool) else a for a in args)


def format_ground_atom(atom: Tuple[GroundValue, ...]) -> str:
    """Render an interned ground atom as ASP text."""
    name = atom[0]
    if len(atom) == 1:
        return str(name)
    args = ",".join(format_ground_value(a) for a in atom[1:])
    return f"{name}({args})"
