"""Solver configuration presets.

clingo ships six configuration presets (frumpy, jumpy, tweety, trendy,
crafty, handy); the paper benchmarks *tweety* (typical ASP programs),
*trendy* (industrial problems) and *handy* (large problems) and picks tweety
as Spack's default (Figure 7d).

Our CDCL solver exposes the analogous knobs — decision heuristic, default
phase, restart policy, and whether the optimizer tries the "all objective
literals false" fast path first.  The presets below give distinct performance
profiles so the Figure 7d experiment (CDF of solve times per preset) can be
reproduced in shape, even though the underlying engine differs from clasp.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class SolverConfig:
    """A named bundle of search-strategy parameters."""

    name: str = "tweety"
    heuristic: str = "vsids"  # "vsids" or "fixed"
    default_phase: bool = False
    restart_strategy: str = "luby"  # "luby", "geometric", or "none"
    restart_base: int = 100
    var_decay: float = 0.95
    zero_first: bool = True  # optimizer fast path (usc-like behaviour)
    enforce_stability: bool = True
    description: str = ""

    @classmethod
    def presets(cls) -> Dict[str, "SolverConfig"]:
        return dict(_PRESETS)

    @classmethod
    def preset(cls, name: str) -> "SolverConfig":
        try:
            return _PRESETS[name]
        except KeyError:
            known = ", ".join(sorted(_PRESETS))
            raise KeyError(f"unknown solver preset {name!r} (known: {known})") from None

    def with_overrides(self, **kwargs) -> "SolverConfig":
        return replace(self, **kwargs)


_PRESETS: Dict[str, SolverConfig] = {
    "tweety": SolverConfig(
        name="tweety",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="luby",
        restart_base=100,
        var_decay=0.95,
        zero_first=True,
        description="Geared towards typical ASP programs (the paper's default).",
    ),
    "trendy": SolverConfig(
        name="trendy",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="geometric",
        restart_base=256,
        var_decay=0.99,
        zero_first=False,
        description="Geared towards industrial problems (slower restarts, no fast path).",
    ),
    "handy": SolverConfig(
        name="handy",
        heuristic="vsids",
        default_phase=True,
        restart_strategy="luby",
        restart_base=500,
        var_decay=0.99,
        zero_first=False,
        description="Geared towards large problems (conservative restarts).",
    ),
    "frumpy": SolverConfig(
        name="frumpy",
        heuristic="fixed",
        default_phase=False,
        restart_strategy="geometric",
        restart_base=100,
        var_decay=0.95,
        zero_first=True,
        description="Conservative defaults reminiscent of older solvers.",
    ),
    "jumpy": SolverConfig(
        name="jumpy",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="luby",
        restart_base=50,
        var_decay=0.90,
        zero_first=True,
        description="Aggressive restarts.",
    ),
    "crafty": SolverConfig(
        name="crafty",
        heuristic="vsids",
        default_phase=True,
        restart_strategy="geometric",
        restart_base=128,
        var_decay=0.97,
        zero_first=True,
        description="Geared towards crafted (combinatorial) problems.",
    ),
}
