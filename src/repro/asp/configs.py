"""Solver configuration presets.

clingo ships six configuration presets (frumpy, jumpy, tweety, trendy,
crafty, handy); the paper benchmarks *tweety* (typical ASP programs),
*trendy* (industrial problems) and *handy* (large problems) and picks tweety
as Spack's default (Figure 7d).

Our CDCL solver exposes the analogous knobs — decision heuristic, default
phase, restart policy, and whether the optimizer tries the "all objective
literals false" fast path first.  The presets below give distinct performance
profiles so the Figure 7d experiment (CDF of solve times per preset) can be
reproduced in shape, even though the underlying engine differs from clasp.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class SolverConfig:
    """A named bundle of search-strategy parameters."""

    name: str = "tweety"
    heuristic: str = "vsids"  # "vsids" or "fixed"
    default_phase: bool = False
    restart_strategy: str = "luby"  # "luby", "geometric", or "none"
    restart_base: int = 100
    var_decay: float = 0.95
    zero_first: bool = True  # optimizer fast path (usc-like behaviour)
    enforce_stability: bool = True
    description: str = ""

    @classmethod
    def presets(cls) -> Dict[str, "SolverConfig"]:
        return dict(_PRESETS)

    @classmethod
    def preset(cls, name: str) -> "SolverConfig":
        try:
            return _PRESETS[name]
        except KeyError:
            known = ", ".join(sorted(_PRESETS))
            raise KeyError(f"unknown solver preset {name!r} (known: {known})") from None

    def with_overrides(self, **kwargs) -> "SolverConfig":
        return replace(self, **kwargs)


_PRESETS: Dict[str, SolverConfig] = {
    "tweety": SolverConfig(
        name="tweety",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="luby",
        restart_base=100,
        var_decay=0.95,
        zero_first=True,
        description="Geared towards typical ASP programs (the paper's default).",
    ),
    "trendy": SolverConfig(
        name="trendy",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="geometric",
        restart_base=256,
        var_decay=0.99,
        zero_first=False,
        description="Geared towards industrial problems (slower restarts, no fast path).",
    ),
    "handy": SolverConfig(
        name="handy",
        heuristic="vsids",
        default_phase=True,
        restart_strategy="luby",
        restart_base=500,
        var_decay=0.99,
        zero_first=False,
        description="Geared towards large problems (conservative restarts).",
    ),
    "frumpy": SolverConfig(
        name="frumpy",
        heuristic="fixed",
        default_phase=False,
        restart_strategy="geometric",
        restart_base=100,
        var_decay=0.95,
        zero_first=True,
        description="Conservative defaults reminiscent of older solvers.",
    ),
    "jumpy": SolverConfig(
        name="jumpy",
        heuristic="vsids",
        default_phase=False,
        restart_strategy="luby",
        restart_base=50,
        var_decay=0.90,
        zero_first=True,
        description="Aggressive restarts.",
    ),
    "crafty": SolverConfig(
        name="crafty",
        heuristic="vsids",
        default_phase=True,
        restart_strategy="geometric",
        restart_base=128,
        var_decay=0.97,
        zero_first=True,
        description="Geared towards crafted (combinatorial) problems.",
    ),
}


#: legal values for the validated :class:`SolverPreset` knobs
HEURISTICS = ("vsids", "fixed")
RESTART_STRATEGIES = ("luby", "geometric", "none")


@dataclass(frozen=True)
class SolverPreset:
    """Validated CDCL search knobs (the solver-facing slice of a config).

    :class:`SolverConfig` bundles *everything* about a named configuration
    (including optimizer behaviour); a ``SolverPreset`` is just the
    :class:`~repro.asp.solver.CDCLSolver` constructor knobs, validated at
    construction so a bad request option fails fast with a clear message
    instead of misbehaving deep inside search.  It is the unit the solver
    portfolio races, the session config accepts, and the service exposes as
    request options (``from_value`` accepts a preset name, a dict of knobs,
    or another preset).
    """

    heuristic: str = "vsids"
    default_phase: bool = False
    restart_strategy: str = "luby"
    restart_base: int = 100
    var_decay: float = 0.95
    name: str = ""

    def __post_init__(self):
        if self.heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r} (expected one of {HEURISTICS})"
            )
        if self.restart_strategy not in RESTART_STRATEGIES:
            raise ValueError(
                f"unknown restart strategy {self.restart_strategy!r} "
                f"(expected one of {RESTART_STRATEGIES})"
            )
        if not isinstance(self.restart_base, int) or self.restart_base < 1:
            raise ValueError(
                f"restart_base must be a positive integer, got {self.restart_base!r}"
            )
        if not isinstance(self.var_decay, (int, float)) or not (
            0.0 < float(self.var_decay) <= 1.0
        ):
            raise ValueError(
                f"var_decay must be in (0, 1], got {self.var_decay!r}"
            )
        if not isinstance(self.default_phase, bool):
            raise ValueError(
                f"default_phase must be a bool, got {self.default_phase!r}"
            )

    @classmethod
    def from_config(cls, config: SolverConfig) -> "SolverPreset":
        """The solver knobs of a named :class:`SolverConfig`."""
        return cls(
            heuristic=config.heuristic,
            default_phase=config.default_phase,
            restart_strategy=config.restart_strategy,
            restart_base=config.restart_base,
            var_decay=config.var_decay,
            name=config.name,
        )

    @classmethod
    def from_value(cls, value) -> "SolverPreset":
        """Coerce a preset name / knob dict / preset into a ``SolverPreset``.

        Raises ``ValueError`` on unknown names, unknown keys, and invalid
        knob values — the service maps that to a 400.
        """
        if isinstance(value, SolverPreset):
            return value
        if isinstance(value, SolverConfig):
            return cls.from_config(value)
        if isinstance(value, str):
            for preset in PORTFOLIO_PRESETS:
                if preset.name == value:
                    return preset
            try:
                return cls.from_config(SolverConfig.preset(value))
            except KeyError as error:
                lineup = ", ".join(p.name for p in PORTFOLIO_PRESETS)
                raise ValueError(
                    f"{error.args[0]} (portfolio presets: {lineup})"
                ) from None
        if isinstance(value, dict):
            known = {f.name for f in fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown solver preset option(s): {sorted(unknown)} "
                    f"(known: {sorted(known)})"
                )
            return cls(**value)
        raise ValueError(
            f"cannot build a solver preset from {type(value).__name__!r}"
        )

    def solver_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :class:`~repro.asp.solver.CDCLSolver`."""
        return {
            "heuristic": self.heuristic,
            "default_phase": self.default_phase,
            "restart_strategy": self.restart_strategy,
            "restart_base": self.restart_base,
            "var_decay": self.var_decay,
        }

    def key(self) -> tuple:
        """Deterministic identity tuple (cache keys, dedup, logging)."""
        return (
            self.heuristic,
            self.default_phase,
            self.restart_strategy,
            self.restart_base,
            round(float(self.var_decay), 6),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "heuristic": self.heuristic,
            "default_phase": self.default_phase,
            "restart_strategy": self.restart_strategy,
            "restart_base": self.restart_base,
            "var_decay": self.var_decay,
        }


#: the default racing lineup: vsids/fixed decision heuristics crossed with
#: luby/geometric restarts — four genuinely different search trajectories
#: over the same ground program (see repro.asp.portfolio)
PORTFOLIO_PRESETS: Tuple[SolverPreset, ...] = (
    SolverPreset(heuristic="vsids", restart_strategy="luby", name="vsids-luby"),
    SolverPreset(
        heuristic="vsids",
        restart_strategy="geometric",
        restart_base=256,
        var_decay=0.99,
        name="vsids-geometric",
    ),
    SolverPreset(heuristic="fixed", restart_strategy="luby", name="fixed-luby"),
    SolverPreset(
        heuristic="fixed",
        restart_strategy="geometric",
        restart_base=128,
        name="fixed-geometric",
    ),
)
