"""Recursive-descent parser for the ASP input language.

The accepted grammar (a practical subset of gringo's language)::

    program     ::= statement*
    statement   ::= rule | constraint | minimize
    rule        ::= head [ ":-" body ] "."
    constraint  ::= ":-" body "."
    head        ::= atom | choice
    choice      ::= [term] "{" choice_elem (";" choice_elem)* "}" [term]
    choice_elem ::= atom [ ":" condition ]
    body        ::= body_elem ((";" | ",") body_elem)*
    body_elem   ::= literal [ ":" condition ] | comparison
    condition   ::= cond_lit ("," cond_lit)*
    cond_lit    ::= literal | comparison
    literal     ::= ["not"] atom
    comparison  ::= term op term        (op in =, !=, <, <=, >, >=)
    minimize    ::= "#minimize" "{" min_elem (";" min_elem)* "}" "."
    min_elem    ::= term ["@" term] ("," term)* [":" condition]

Note the gringo convention for bodies: a ``,`` *after a conditional literal's
condition has started* extends the condition; use ``;`` to separate the
conditional literal from the next body element.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.asp.errors import ParseError
from repro.asp.lexer import (
    DIRECTIVE,
    IDENTIFIER,
    NUMBER,
    PUNCT,
    STRING,
    VARIABLE,
    Token,
    iter_statements,
    tokenize,
)
from repro.asp.syntax import (
    Atom,
    BinaryOp,
    Choice,
    ChoiceElement,
    Comparison,
    ConditionalLiteral,
    Constant,
    Literal,
    Minimize,
    MinimizeElement,
    Number,
    Program,
    Rule,
    String,
    Variable,
)

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _StatementParser:
    """Parses a single statement from its token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def check(self, kind: str, value: Optional[str] = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token is None or token.kind != kind:
            return False
        return value is None or token.value == value

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else None
            raise ParseError(
                "unexpected end of statement",
                line=last.line if last else None,
                column=last.column if last else None,
            )
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token is None or token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            found = f"{token.kind} {token.value!r}" if token else "end of statement"
            line = token.line if token else None
            column = token.column if token else None
            raise ParseError(f"expected {expected!r}, found {found}", line=line, column=column)
        self.pos += 1
        return token

    def error(self, message: str):
        token = self.peek()
        line = token.line if token else None
        column = token.column if token else None
        raise ParseError(message, line=line, column=column)

    # -- terms -------------------------------------------------------------

    def parse_term(self):
        return self._parse_additive()

    def _parse_additive(self):
        term = self._parse_multiplicative()
        while self.check(PUNCT, "+") or self.check(PUNCT, "-"):
            op = self.advance().value
            right = self._parse_multiplicative()
            term = BinaryOp(op, term, right)
        return term

    def _parse_multiplicative(self):
        term = self._parse_primary()
        while self.check(PUNCT, "*") or self.check(PUNCT, "/"):
            op = self.advance().value
            right = self._parse_primary()
            term = BinaryOp(op, term, right)
        return term

    def _parse_primary(self):
        token = self.peek()
        if token is None:
            self.error("expected a term")
        if token.kind == NUMBER:
            self.advance()
            return Number(int(token.value))
        if token.kind == STRING:
            self.advance()
            return String(token.value)
        if token.kind == VARIABLE:
            self.advance()
            return Variable(token.value)
        if token.kind == IDENTIFIER:
            self.advance()
            return Constant(token.value)
        if token.kind == PUNCT and token.value == "-":
            self.advance()
            inner = self._parse_primary()
            if isinstance(inner, Number):
                return Number(-inner.value)
            return BinaryOp("-", Number(0), inner)
        if token.kind == PUNCT and token.value == "(":
            self.advance()
            term = self.parse_term()
            self.expect(PUNCT, ")")
            return term
        self.error(f"expected a term, found {token.value!r}")

    # -- atoms, literals, comparisons ---------------------------------------

    def parse_atom(self) -> Atom:
        name_token = self.expect(IDENTIFIER)
        arguments: Tuple = ()
        if self.check(PUNCT, "("):
            self.advance()
            args = [self.parse_term()]
            while self.check(PUNCT, ","):
                self.advance()
                args.append(self.parse_term())
            self.expect(PUNCT, ")")
            arguments = tuple(args)
        return Atom(name_token.value, arguments)

    def _next_is_comparison_op(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token is not None and token.kind == PUNCT and token.value in _COMPARISON_OPS

    def parse_simple_literal(self) -> Union[Literal, Comparison]:
        """Parse ``[not] atom`` or a comparison."""
        if self.check(PUNCT, "not"):
            self.advance()
            atom = self.parse_atom()
            return Literal(atom, negated=True)

        token = self.peek()
        if token is None:
            self.error("expected a literal")

        # An identifier may start either an atom or a comparison whose left
        # side is a symbolic constant.
        if token.kind == IDENTIFIER:
            if self.check(PUNCT, "(", offset=1):
                atom = self.parse_atom()
                return Literal(atom)
            if self._next_is_comparison_op(offset=1):
                left = self.parse_term()
                op = self.advance().value
                right = self.parse_term()
                return Comparison(op, left, right)
            self.advance()
            return Literal(Atom(token.value))

        # Everything else (variables, numbers, strings, parens) must be the
        # left-hand side of a comparison or an arithmetic comparison.
        left = self.parse_term()
        if not self._next_is_comparison_op():
            self.error("expected a comparison operator")
        op = self.advance().value
        right = self.parse_term()
        return Comparison(op, left, right)

    def parse_condition(self) -> Tuple:
        """Parse a ``,``-separated list of condition literals."""
        condition = [self.parse_simple_literal()]
        while self.check(PUNCT, ","):
            self.advance()
            condition.append(self.parse_simple_literal())
        return tuple(condition)

    # -- bodies --------------------------------------------------------------

    def parse_body(self) -> Tuple:
        elements = []
        while True:
            element = self.parse_simple_literal()
            if self.check(PUNCT, ":"):
                self.advance()
                if not isinstance(element, Literal):
                    self.error("only literals may have a condition")
                condition = self.parse_condition()
                elements.append(ConditionalLiteral(element, condition))
                # after a conditional literal, only ';' continues the body
                if self.check(PUNCT, ";"):
                    self.advance()
                    continue
                break
            elements.append(element)
            if self.check(PUNCT, ",") or self.check(PUNCT, ";"):
                self.advance()
                continue
            break
        if not self.at_end():
            self.error("unexpected trailing tokens in body")
        return tuple(elements)

    # -- heads ----------------------------------------------------------------

    def _head_contains_choice(self) -> bool:
        depth = 0
        for offset in range(len(self.tokens) - self.pos):
            token = self.peek(offset)
            if token.kind != PUNCT:
                continue
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
            elif token.value == ":-" and depth == 0:
                return False
            elif token.value == "{" and depth == 0:
                return True
        return False

    def parse_choice(self) -> Choice:
        lower = None
        if not self.check(PUNCT, "{"):
            lower = self.parse_term()
        self.expect(PUNCT, "{")
        elements = []
        if not self.check(PUNCT, "}"):
            elements.append(self._parse_choice_element())
            while self.check(PUNCT, ";"):
                self.advance()
                elements.append(self._parse_choice_element())
        self.expect(PUNCT, "}")
        upper = None
        if not self.at_end() and not self.check(PUNCT, ":-"):
            upper = self.parse_term()
        return Choice(tuple(elements), lower=lower, upper=upper)

    def _parse_choice_element(self) -> ChoiceElement:
        atom = self.parse_atom()
        condition: Tuple = ()
        if self.check(PUNCT, ":"):
            self.advance()
            condition = self.parse_condition()
        return ChoiceElement(atom, condition)

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> Union[Rule, Minimize]:
        if self.check(DIRECTIVE):
            return self.parse_minimize()
        if self.check(PUNCT, ":-"):
            self.advance()
            body = self.parse_body()
            return Rule(head=None, body=body)

        if self._head_contains_choice():
            head: Union[Atom, Choice] = self.parse_choice()
        else:
            head = self.parse_atom()

        body: Tuple = ()
        if self.check(PUNCT, ":-"):
            self.advance()
            body = self.parse_body()
        if not self.at_end():
            self.error("unexpected trailing tokens")
        return Rule(head=head, body=body)

    def parse_minimize(self) -> Minimize:
        directive = self.expect(DIRECTIVE)
        if directive.value not in ("#minimize", "#maximize"):
            self.error(f"unsupported directive {directive.value!r}")
        maximize = directive.value == "#maximize"
        self.expect(PUNCT, "{")
        elements = []
        if not self.check(PUNCT, "}"):
            elements.append(self._parse_minimize_element(maximize))
            while self.check(PUNCT, ";"):
                self.advance()
                elements.append(self._parse_minimize_element(maximize))
        self.expect(PUNCT, "}")
        if not self.at_end():
            self.error("unexpected trailing tokens after '}'")
        return Minimize(tuple(elements))

    def _parse_minimize_element(self, maximize: bool) -> MinimizeElement:
        weight = self.parse_term()
        if maximize:
            weight = BinaryOp("-", Number(0), weight)
        priority = Number(0)
        if self.check(PUNCT, "@"):
            self.advance()
            priority = self.parse_term()
        terms = []
        while self.check(PUNCT, ","):
            self.advance()
            terms.append(self.parse_term())
        condition: Tuple = ()
        if self.check(PUNCT, ":"):
            self.advance()
            condition = self.parse_condition()
        return MinimizeElement(weight, priority, tuple(terms), condition)


def parse_program(text: str) -> Program:
    """Parse ASP source text into a :class:`Program`."""
    program = Program()
    tokens = tokenize(text)
    for statement_tokens in iter_statements(tokens):
        parser = _StatementParser(statement_tokens)
        program.add(parser.parse_statement())
    return program


def parse_statement(text: str) -> Union[Rule, Minimize]:
    """Parse a single statement (mostly useful in tests)."""
    program = parse_program(text)
    statements = program.statements()
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]
