"""Flat, mmap-able snapshots of grounded :class:`PreparedProgram` bases.

The persistent ground cache pickles prepared programs, which is compact but
forces every process to rebuild the whole object graph before it can serve a
single solve.  Since the grounder runs entirely over interned symbols
(:mod:`repro.asp.symbols`), the ground state is really a handful of integer
tables — so this module serializes it as one: a tagged symbol-value blob plus
contiguous ``int64`` buffers for the atom table, fact set, rule/constraint/
choice/minimize streams, possible/certain relations, and the grounder's
incremental-layering registries.

A reader *attaches* the file read-only via :func:`mmap.mmap` — O(1), no
parsing beyond the small JSON header — and *materializes* a fully functional
:class:`~repro.asp.control.PreparedProgram` lazily on first use, decoding the
buffers in a few C-speed passes (``memoryview.cast('q')``, bulk ``set`` /
``zip`` construction) instead of a general pickle walk.  The derived
registries that guard incremental grounding (rule/constraint/minimize dedup
keys) are rebuilt from the decoded ground program, and the stratified
component plan is recomputed from the reparsed source text
(:meth:`~repro.asp.grounder.Grounder.restore_setup`), so forking per-spec
deltas off a snapshot-restored base does *zero* base grounding work.

File layout::

    magic (8 bytes)  |  header length (uint64 LE)  |  JSON header
    symbol blob (JSON list, or pickle for exotic values)
    padding to 8-byte alignment
    int64 payload (native byte order; sections indexed by the header)

The header carries a caller-chosen ``key`` (the cache token, which already
encodes content hash and cache format version) and a payload SHA-256 that is
verified on materialize — attach stays O(1), while truncation or bit rot
surfaces as :class:`SnapshotError` and the caller degrades to a cold ground.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import pickle
import struct
import sys
from array import array
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro.asp.configs import SolverConfig
from repro.asp.control import PreparedProgram, parse_program_cached
from repro.asp.ground import (
    GroundChoice,
    GroundConstraint,
    GroundMinimizeLiteral,
    GroundProgram,
    GroundRule,
)
from repro.asp.grounder import Grounder, _AtomDatabase, _Relation
from repro.asp.stats import PhaseTimer
from repro.asp.symbols import SymbolTable

__all__ = ["GroundSnapshot", "SnapshotError", "snapshot_bytes", "SNAPSHOT_FORMAT"]

SNAPSHOT_MAGIC = b"RASNAP01"
#: version of the binary layout itself; bump together with
#: ``repro.spack.store.CACHE_FORMAT_VERSION`` when the encoding changes
SNAPSHOT_FORMAT = 1

_HEADER_LEN = struct.Struct("<Q")
_SCALAR_TYPES = (str, int, bool)


class SnapshotError(Exception):
    """The prepared program cannot be snapshotted, or the file is unusable
    (wrong magic/version/key, truncated, checksum mismatch).  Callers treat
    this exactly like a cache miss and fall back to grounding cold.

    ``kind`` mirrors the disk-cache load classification: ``"miss"`` for
    expected situations (absent file, version skew, foreign key/byte order)
    and ``"corrupt"`` for damaged files, so cache layers can keep their
    miss vs load-error counters honest.
    """

    def __init__(self, message: str, kind: str = "corrupt"):
        super().__init__(message)
        self.kind = kind


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def snapshot_bytes(prepared: PreparedProgram, *, key: str = "") -> bytes:
    """Encode a grounded prepared program into the flat snapshot form.

    ``key`` is an opaque caller token (the ground-cache key) echoed in the
    header and checked by :meth:`GroundSnapshot.attach`, so a snapshot can
    never be applied to the wrong catalog or cache format version.

    Raises :class:`SnapshotError` when the program is not snapshot-capable:
    only the indexed :class:`~repro.asp.grounder.Grounder` is supported (the
    naive oracle pickles fine and is not a production path), and the source
    text must be available for the attaching process to reparse.
    """
    grounder = getattr(prepared, "_base", None)
    if type(grounder) is not Grounder:
        raise SnapshotError("only indexed-grounder programs are snapshottable")
    text = getattr(prepared, "text", None)
    if not isinstance(text, str):
        raise SnapshotError("prepared program has no source text")
    if array("q").itemsize != 8:
        raise SnapshotError("platform has no 64-bit array type")

    symbols = grounder.symbols
    intern = symbols.intern
    ground = grounder.ground_program

    out: List[int] = []
    sections: Dict[str, List[int]] = {}
    counts: Dict[str, int] = {}

    def section(name: str, count: int, body) -> None:
        start = len(out)
        body()
        sections[name] = [start, len(out)]
        counts[name] = count

    # atom table: per-atom interned id-keys ((pred sid, *arg sids)), stored
    # as an offsets array plus one flat data array.  Every atom enters the
    # table through _value_atom_id/_atom_id, so the _atom_ids registry is a
    # bijection onto it; anything else means the state is not ours to encode.
    num_atoms = len(ground.atoms)
    id_keys: List[Optional[tuple]] = [None] * (num_atoms + 1)
    if len(grounder._atom_ids) != num_atoms:
        raise SnapshotError("atom table and id registry disagree")
    for id_key, atom_id in grounder._atom_ids.items():
        id_keys[atom_id] = id_key

    def write_atoms() -> None:
        data: List[int] = []
        out.append(0)
        for atom_id in range(1, num_atoms + 1):
            id_key = id_keys[atom_id]
            if id_key is None:
                raise SnapshotError(f"atom {atom_id} missing from id registry")
            data.extend(id_key)
            out.append(len(data))
        sections["atom_data"] = [len(out), len(out) + len(data)]
        out.extend(data)

    section("atom_offsets", num_atoms, write_atoms)

    section(
        "facts", len(ground.facts), lambda: out.extend(sorted(ground.facts))
    )

    def write_rules() -> None:
        for rule in ground.rules:
            out.append(rule.head)
            out.append(len(rule.pos))
            out.append(len(rule.neg))
            out.extend(rule.pos)
            out.extend(rule.neg)

    section("rules", len(ground.rules), write_rules)

    def write_constraints() -> None:
        for constraint in ground.constraints:
            out.append(len(constraint.pos))
            out.append(len(constraint.neg))
            out.extend(constraint.pos)
            out.extend(constraint.neg)

    section("constraints", len(ground.constraints), write_constraints)

    def write_choices() -> None:
        for choice in ground.choices:
            out.append(len(choice.atoms))
            out.append(len(choice.pos))
            out.append(len(choice.neg))
            for bound in (choice.lower, choice.upper):
                out.append(0 if bound is None else 1)
                out.append(0 if bound is None else bound)
            out.extend(choice.atoms)
            out.extend(choice.pos)
            out.extend(choice.neg)

    section("choices", len(ground.choices), write_choices)

    def write_minimize() -> None:
        for literal in ground.minimize_literals:
            terms = literal.key[2:]
            out.append(literal.priority)
            out.append(literal.weight)
            out.append(len(terms))
            out.append(len(literal.pos))
            out.append(len(literal.neg))
            out.extend(intern(term) for term in terms)
            out.extend(literal.pos)
            out.extend(literal.neg)

    section("minimize", len(ground.minimize_literals), write_minimize)

    def write_database(name: str, database: _AtomDatabase) -> None:
        def body() -> None:
            for (rel_name, arity), relation in database.relations.items():
                out.append(intern(rel_name))
                out.append(arity)
                out.append(len(relation.tuples))
                for args in relation.tuples:
                    out.extend(args)

        section(name, len(database.relations), body)

    write_database("possible", grounder.possible)
    write_database("certain", grounder.certain)

    def write_choice_instances() -> None:
        for (rule_position, binding), index in grounder._choice_instances.items():
            out.append(rule_position)
            out.append(index)
            out.append(len(binding))
            out.extend(-1 if sid is None else sid for sid in binding)

    section(
        "choice_instances", len(grounder._choice_instances), write_choice_instances
    )

    def write_value_atoms(name: str, atoms: List[tuple]) -> None:
        def body() -> None:
            for atom in atoms:
                out.append(len(atom))
                out.extend(intern(value) for value in atom)

        section(name, len(atoms), body)

    write_value_atoms("extra_facts", grounder._extra_facts)
    write_value_atoms("possible_hints", grounder._possible_hints)

    try:
        int_data = array("q", out)
    except OverflowError as exc:  # a ground integer outside int64
        raise SnapshotError(f"value does not fit the int64 payload: {exc}") from None

    # symbol values last: the writers above may have interned minimize terms
    # or relation names that were not in the table yet
    values = symbols.snapshot_values()
    if all(type(value) in _SCALAR_TYPES for value in values):
        sym_encoding = "json"
        sym_blob = json.dumps(
            values, ensure_ascii=False, check_circular=False
        ).encode("utf-8")
    else:
        sym_encoding = "pickle"
        sym_blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)

    int_bytes = int_data.tobytes()
    digest = hashlib.sha256()
    digest.update(sym_blob)
    digest.update(int_bytes)

    header = json.dumps(
        {
            "format": SNAPSHOT_FORMAT,
            "key": key,
            "byteorder": sys.byteorder,
            "program": text,
            "config": asdict(prepared.config),
            "join_strategy": prepared.join_strategy,
            "base_groundings": grounder.base_groundings,
            "delta_groundings": grounder.delta_groundings,
            "symbols": {"encoding": sym_encoding, "bytes": len(sym_blob)},
            "int_count": len(int_data),
            "sections": sections,
            "counts": counts,
            "payload_sha256": digest.hexdigest(),
        },
        ensure_ascii=False,
    ).encode("utf-8")

    prefix_len = len(SNAPSHOT_MAGIC) + _HEADER_LEN.size + len(header) + len(sym_blob)
    padding = b"\0" * (-prefix_len % 8)
    return b"".join(
        (
            SNAPSHOT_MAGIC,
            _HEADER_LEN.pack(len(header)),
            header,
            sym_blob,
            padding,
            int_bytes,
        )
    )


# ---------------------------------------------------------------------------
# attaching + materializing
# ---------------------------------------------------------------------------


class GroundSnapshot:
    """A snapshot file attached read-only via mmap.

    :meth:`attach` validates only the magic, header, key, and declared
    sizes — O(header), no payload reads, so N worker processes can attach
    the same file with near-zero-copy startup.  :meth:`materialize` decodes
    the payload (verifying its checksum) into a live
    :class:`~repro.asp.control.PreparedProgram`; the result is memoized on
    the handle.
    """

    def __init__(self, mm: mmap.mmap, header: dict, header_len: int, path: str):
        self._mm = mm
        self.header = header
        self._header_len = header_len
        self.path = path
        self._prepared: Optional[PreparedProgram] = None

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def attach(cls, path, *, expected_key: Optional[str] = None) -> "GroundSnapshot":
        """Open + mmap + validate ``path``; raises :class:`SnapshotError`
        on any mismatch (wrong magic/format/byte order, key skew, size)."""
        try:
            with open(path, "rb") as handle:
                mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except OSError as exc:
            kind = "miss" if isinstance(exc, FileNotFoundError) else "corrupt"
            raise SnapshotError(
                f"cannot attach snapshot {path}: {exc}", kind=kind
            ) from exc
        except ValueError as exc:  # empty file cannot be mapped
            raise SnapshotError(f"cannot attach snapshot {path}: {exc}") from exc
        try:
            magic_len = len(SNAPSHOT_MAGIC)
            if mm[:magic_len] != SNAPSHOT_MAGIC:
                raise SnapshotError(f"{path}: not a ground snapshot")
            (header_len,) = _HEADER_LEN.unpack_from(mm, magic_len)
            header_off = magic_len + _HEADER_LEN.size
            if header_off + header_len > len(mm):
                raise SnapshotError(f"{path}: truncated header")
            try:
                header = json.loads(mm[header_off : header_off + header_len])
            except ValueError as exc:
                raise SnapshotError(f"{path}: corrupt header: {exc}") from None
            if header.get("format") != SNAPSHOT_FORMAT:
                raise SnapshotError(
                    f"{path}: snapshot format {header.get('format')!r}, "
                    f"expected {SNAPSHOT_FORMAT}",
                    kind="miss",
                )
            if header.get("byteorder") != sys.byteorder:
                raise SnapshotError(f"{path}: foreign byte order", kind="miss")
            if expected_key is not None and header.get("key") != expected_key:
                raise SnapshotError(f"{path}: key mismatch", kind="miss")
            sym_end = header_off + header_len + header["symbols"]["bytes"]
            int_off = sym_end + (-sym_end % 8)
            if int_off + 8 * header["int_count"] != len(mm):
                raise SnapshotError(f"{path}: payload size mismatch")
        except SnapshotError:
            mm.close()
            raise
        except Exception as exc:  # malformed header fields
            mm.close()
            raise SnapshotError(f"{path}: invalid snapshot: {exc}") from exc
        return cls(mm, header, header_len, str(path))

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None

    def __enter__(self) -> "GroundSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def nbytes(self) -> int:
        return len(self._mm) if self._mm is not None else 0

    @property
    def key(self) -> str:
        return self.header.get("key", "")

    # -- materialization -----------------------------------------------

    def materialize(self, stats=None) -> PreparedProgram:
        """Decode the payload into a live prepared program (memoized)."""
        if self._prepared is not None:
            return self._prepared
        if self._mm is None:
            raise SnapshotError(f"{self.path}: snapshot is closed")
        try:
            prepared = self._materialize(stats)
        except SnapshotError:
            raise
        except Exception as exc:  # any decode failure degrades to cold
            raise SnapshotError(f"{self.path}: corrupt payload: {exc}") from exc
        self._prepared = prepared
        return prepared

    def _materialize(self, stats) -> PreparedProgram:
        mm = self._mm
        header = self.header
        sym_off = len(SNAPSHOT_MAGIC) + _HEADER_LEN.size + self._header_len
        sym_len = header["symbols"]["bytes"]
        sym_blob = mm[sym_off : sym_off + sym_len]
        int_off = sym_off + sym_len
        int_off += -int_off % 8

        # the views must be released before any close(): an mmap with live
        # exported buffers refuses to close (BufferError)
        int_view = memoryview(mm)[int_off:]
        try:
            digest = hashlib.sha256()
            digest.update(sym_blob)
            digest.update(int_view)
            if digest.hexdigest() != header["payload_sha256"]:
                raise SnapshotError(f"{self.path}: payload checksum mismatch")
            # one C-speed pass from the mapped page cache to Python ints;
            # every decode below slices this list
            cast = int_view.cast("q")
            try:
                data = cast.tolist()
            finally:
                cast.release()
        finally:
            int_view.release()

        if header["symbols"]["encoding"] == "json":
            values = json.loads(sym_blob)
        else:
            values = pickle.loads(sym_blob)

        prepared = PreparedProgram.__new__(PreparedProgram)
        prepared.config = SolverConfig(**header["config"])
        prepared.join_strategy = header["join_strategy"]
        prepared.stats = stats
        prepared.timer = PhaseTimer()
        prepared.text = header["program"]
        with prepared.timer.phase("load"):
            prepared.program = parse_program_cached(prepared.text)
        with prepared.timer.phase("attach"):
            prepared._base = self._decode_grounder(
                header, values, data, prepared.program, stats
            )
        prepared.forks = 0
        return prepared

    def _decode_grounder(
        self, header: dict, values: list, data: List[int], program, stats
    ) -> Grounder:
        sections = header["sections"]
        counts = header["counts"]

        grounder = Grounder.__new__(Grounder)
        grounder.program = program
        grounder.symbols = SymbolTable(values)
        grounder.stats = stats
        ground = GroundProgram()
        grounder.ground_program = ground

        # atom table + id registry
        num_atoms = counts["atom_offsets"]
        start, end = sections["atom_offsets"]
        offsets = data[start:end]
        start, end = sections["atom_data"]
        atom_data = data[start:end]
        to_atom = ground.atoms._to_atom
        atom_ids: Dict[tuple, int] = {}
        for index in range(num_atoms):
            id_key = tuple(atom_data[offsets[index] : offsets[index + 1]])
            to_atom.append((values[id_key[0]],) + tuple(values[s] for s in id_key[1:]))
            atom_ids[id_key] = index + 1
        ground.atoms._to_id = dict(zip(to_atom[1:], range(1, num_atoms + 1)))
        grounder._atom_ids = atom_ids

        start, end = sections["facts"]
        ground.facts.update(data[start:end])

        # frozen-dataclass elements are restored through __new__ + an in-place
        # __dict__ update — the same shape pickle uses — because __init__'s
        # object.__setattr__ calls dominate decode time otherwise
        start, end = sections["rules"]
        i = start
        new_rule = GroundRule.__new__
        rules = ground.rules
        for _ in range(counts["rules"]):
            head, npos, nneg = data[i], data[i + 1], data[i + 2]
            i += 3
            rule = new_rule(GroundRule)
            rule.__dict__.update({
                "head": head,
                "pos": tuple(data[i : i + npos]),
                "neg": tuple(data[i + npos : i + npos + nneg]),
            })
            i += npos + nneg
            rules.append(rule)

        start, end = sections["constraints"]
        i = start
        new_constraint = GroundConstraint.__new__
        constraints = ground.constraints
        for _ in range(counts["constraints"]):
            npos, nneg = data[i], data[i + 1]
            i += 2
            constraint = new_constraint(GroundConstraint)
            constraint.__dict__.update({
                "pos": tuple(data[i : i + npos]),
                "neg": tuple(data[i + npos : i + npos + nneg]),
            })
            i += npos + nneg
            constraints.append(constraint)

        start, end = sections["choices"]
        i = start
        new_choice = GroundChoice.__new__
        choices = ground.choices
        for _ in range(counts["choices"]):
            natoms, npos, nneg = data[i], data[i + 1], data[i + 2]
            lower = data[i + 4] if data[i + 3] else None
            upper = data[i + 6] if data[i + 5] else None
            i += 7
            choice = new_choice(GroundChoice)
            choice.__dict__.update({
                "atoms": tuple(data[i : i + natoms]),
                "pos": tuple(data[i + natoms : i + natoms + npos]),
                "neg": tuple(data[i + natoms + npos : i + natoms + npos + nneg]),
                "lower": lower,
                "upper": upper,
            })
            i += natoms + npos + nneg
            choices.append(choice)

        start, end = sections["minimize"]
        i = start
        new_minimize = GroundMinimizeLiteral.__new__
        minimize_literals = ground.minimize_literals
        for _ in range(counts["minimize"]):
            priority, weight, nterms, npos, nneg = data[i : i + 5]
            i += 5
            terms = tuple(values[s] for s in data[i : i + nterms])
            i += nterms
            literal = new_minimize(GroundMinimizeLiteral)
            literal.__dict__.update({
                "priority": priority,
                "weight": weight,
                "key": (priority, weight) + terms,
                "pos": tuple(data[i : i + npos]),
                "neg": tuple(data[i + npos : i + npos + nneg]),
            })
            i += npos + nneg
            minimize_literals.append(literal)

        grounder.possible = self._decode_database(
            data, sections["possible"], counts["possible"], values
        )
        grounder.certain = self._decode_database(
            data, sections["certain"], counts["certain"], values
        )

        start, end = sections["choice_instances"]
        i = start
        choice_instances: Dict[tuple, int] = {}
        for _ in range(counts["choice_instances"]):
            rule_position, index, nbind = data[i], data[i + 1], data[i + 2]
            i += 3
            binding = tuple(
                None if sid < 0 else sid for sid in data[i : i + nbind]
            )
            i += nbind
            choice_instances[(rule_position, binding)] = index
        grounder._choice_instances = choice_instances

        grounder._extra_facts = self._decode_value_atoms(
            data, sections["extra_facts"], counts["extra_facts"], values
        )
        grounder._possible_hints = self._decode_value_atoms(
            data, sections["possible_hints"], counts["possible_hints"], values
        )

        # derived dedup registries: rebuilt from the decoded elements rather
        # than stored (they are pure functions of the ground program)
        grounder._rule_keys = {(r.head, r.pos, r.neg) for r in rules}
        grounder._constraint_keys = {(c.pos, c.neg) for c in constraints}
        grounder._minimize_keys = {
            (m.priority, m.weight, m.key[2:], m.pos, m.neg)
            for m in minimize_literals
        }

        grounder._delta = None
        grounder.base_groundings = header["base_groundings"]
        grounder.delta_groundings = header["delta_groundings"]
        grounder._compiled = {}
        grounder.restore_setup()
        return grounder

    @staticmethod
    def _decode_database(
        data: List[int], span: List[int], count: int, values: list
    ) -> _AtomDatabase:
        database = _AtomDatabase()
        relations = database.relations
        i = span[0]
        for _ in range(count):
            name_sid, arity, ntuples = data[i], data[i + 1], data[i + 2]
            i += 3
            if arity:
                flat = data[i : i + ntuples * arity]
                i += ntuples * arity
                tuples = list(zip(*[iter(flat)] * arity))
            else:
                tuples = [()] * ntuples
            relation = _Relation.__new__(_Relation)
            relation.tuples = tuples
            relation._seen = set(tuples)
            relation._indexes = {}
            relation._shared = False
            relations[(values[name_sid], arity)] = relation
        return database

    @staticmethod
    def _decode_value_atoms(
        data: List[int], span: List[int], count: int, values: list
    ) -> List[tuple]:
        atoms: List[tuple] = []
        i = span[0]
        for _ in range(count):
            length = data[i]
            i += 1
            atoms.append(tuple(values[s] for s in data[i : i + length]))
            i += length
        return atoms
