"""Reference (naive-join) grounder, kept verbatim as the equivalence oracle.

This module preserves the pre-indexed-join grounder: tuple-at-a-time joins
over dict substitutions with only a first-column index.  It exists for two
reasons:

* **oracle** — property tests assert that the fast grounder in
  :mod:`repro.asp.grounder` (interned symbols, compiled join plans,
  argument-position hash indexes) derives exactly the same certain facts,
  possible atoms, and stable models (``tests/asp/test_join_equivalence.py``);
* **baseline** — benchmarks measure the indexed grounder against this
  implementation (``join_strategy="naive"``) to quantify the speedup.

The grounder instantiates safe rules by joining positive body literals against
the database of *possible* atoms (an over-approximation of everything that can
become true), processing predicates in dependency (SCC) order and iterating
each component to a fixpoint.  Conditional literals and choice-element
conditions are expanded over *certain* atoms (facts and atoms derived purely
from facts), which is exactly how the paper's generalized condition handling
(``condition_requirement`` / ``imposed_constraint``) uses them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.asp.errors import GroundingError
from repro.asp.ground import (
    GroundChoice,
    GroundConstraint,
    GroundMinimizeLiteral,
    GroundProgram,
    GroundRule,
)
from repro.asp.syntax import (
    Atom,
    BinaryOp,
    Choice,
    Comparison,
    ConditionalLiteral,
    Constant,
    Literal,
    Minimize,
    Number,
    Program,
    Rule,
    String,
    Variable,
    evaluate_term,
    term_is_ground,
    term_variables,
)

Substitution = Dict[str, object]


class _Relation:
    """All known argument tuples for one predicate, with a first-column index."""

    __slots__ = ("tuples", "_seen", "index0")

    def __init__(self):
        self.tuples: List[tuple] = []
        self._seen: Set[tuple] = set()
        self.index0: Dict[object, List[tuple]] = {}

    def add(self, args: tuple) -> bool:
        if args in self._seen:
            return False
        self._seen.add(args)
        self.tuples.append(args)
        if args:
            self.index0.setdefault(args[0], []).append(args)
        return True

    def __contains__(self, args: tuple) -> bool:
        return args in self._seen

    def __len__(self) -> int:
        return len(self.tuples)

    def candidates(self, first_value=None) -> List[tuple]:
        if first_value is None:
            return self.tuples
        return self.index0.get(first_value, [])

    def copy(self) -> "_Relation":
        relation = _Relation.__new__(_Relation)
        relation.tuples = list(self.tuples)
        relation._seen = set(self._seen)
        relation.index0 = {key: list(values) for key, values in self.index0.items()}
        return relation


class _AtomDatabase:
    """Possible/certain atom storage keyed by predicate name."""

    def __init__(self):
        self.relations: Dict[str, _Relation] = {}

    def relation(self, name: str) -> _Relation:
        relation = self.relations.get(name)
        if relation is None:
            relation = _Relation()
            self.relations[name] = relation
        return relation

    def add(self, name: str, args: tuple) -> bool:
        return self.relation(name).add(args)

    def contains(self, name: str, args: tuple) -> bool:
        relation = self.relations.get(name)
        return relation is not None and args in relation

    def count(self, name: str) -> int:
        relation = self.relations.get(name)
        return len(relation) if relation else 0

    def candidates(self, name: str, first_value=None) -> List[tuple]:
        relation = self.relations.get(name)
        if relation is None:
            return []
        return relation.candidates(first_value)

    def copy(self) -> "_AtomDatabase":
        database = _AtomDatabase()
        database.relations = {
            name: relation.copy() for name, relation in self.relations.items()
        }
        return database


def _pattern_first_value(atom: Atom, substitution: Substitution):
    """If the first argument of ``atom`` is bound/ground, return its value."""
    if not atom.arguments:
        return None
    first = atom.arguments[0]
    if isinstance(first, Variable):
        if first.name == "_":
            return None
        return substitution.get(first.name)
    if term_is_ground(first):
        return evaluate_term(first, substitution)
    return None


def _match_atom(atom: Atom, args: tuple, substitution: Substitution) -> Optional[Substitution]:
    """Try to unify ``atom``'s argument patterns against a ground tuple.

    Returns an extended substitution, or None if the match fails.  The input
    substitution is not modified.
    """
    if len(atom.arguments) != len(args):
        return None
    result = substitution
    copied = False
    for pattern, value in zip(atom.arguments, args):
        if isinstance(pattern, Variable):
            if pattern.name == "_":
                continue
            bound = result.get(pattern.name, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    result = dict(result)
                    copied = True
                result[pattern.name] = value
            elif bound != value:
                return None
        else:
            try:
                expected = evaluate_term(pattern, result)
            except KeyError:
                raise GroundingError(
                    f"argument {pattern} of {atom} contains unbound variables"
                )
            if expected != value:
                return None
    return result


class _UnboundType:
    __repr__ = lambda self: "<unbound>"  # noqa: E731


_UNBOUND = _UnboundType()


def _collect_variables(items: Iterable) -> Set[str]:
    names: Set[str] = set()
    for item in items:
        for variable in item.variables():
            names.add(variable.name)
    return names


class NaiveGrounder:
    """Naive-join grounder (the pre-optimization reference implementation).

    Besides the one-shot :meth:`ground`, a grounder supports *incremental
    extra-facts layering*: after a base grounding, :meth:`clone` forks the
    whole grounding state cheaply (no joins, just data-structure copies) and
    :meth:`ground_delta` grounds additional facts semi-naively — only rule
    instances touching at least one new atom are enumerated, so the shared
    base program is grounded exactly once however many layers are forked on
    top of it.  This is what makes batch concretization sessions fast.

    Contract for delta facts: they may introduce new atoms freely, but they
    must not extend relations that appear in conditional-literal *conditions*
    of rule bodies for bindings that were already instantiated during the
    base grounding (e.g. adding ``condition_requirement`` rows for a
    pre-existing condition id would leave stale, weaker rule instances in the
    ground program).  Fresh ids/keys are always safe — which is exactly how
    the concretizer's spec-dependent fact layer is constructed.

    Choice *elements* are exempt from that contract: choice instances are
    registered by (rule, body substitution), and when a delta layer extends a
    relation appearing in a choice-element condition (e.g. a later repository
    shard adding ``version_declared`` rows for a package whose node was
    already possible), the affected choices are re-expanded and upgraded *in
    place* with the enlarged candidate set.  Sharded repositories rely on
    this: cross-shard dependencies may point at packages whose declarations
    arrive only in a later shard layer.
    """

    def __init__(
        self,
        program: Program,
        extra_facts: Sequence[tuple] = (),
        possible_hints: Sequence[tuple] = (),
    ):
        self.program = program
        self.ground_program = GroundProgram()
        self.possible = _AtomDatabase()
        self.certain = _AtomDatabase()
        self._rule_keys: Set[tuple] = set()
        #: choice instances by (rule position, body substitution) -> index
        #: into ``ground_program.choices``, so a later layer can *upgrade* an
        #: instance whose element expansion grew (see class docstring).
        self._choice_instances: Dict[tuple, int] = {}
        self._constraint_keys: Set[tuple] = set()
        self._minimize_keys: Set[tuple] = set()
        self._extra_facts = list(extra_facts)
        #: atoms marked *possible* (but not certain, and not facts) before
        #: grounding starts.  Sound over-approximation knob: hinted atoms
        #: that never gain support are forced false by completion, so extra
        #: hints cost ground-program size, never correctness.  A base layer
        #: uses them to pre-ground rules whose triggers arrive only in later
        #: delta layers (e.g. "any possible package may become a root").
        self._possible_hints = list(possible_hints)
        self._components: Optional[List[List[Rule]]] = None
        self._constraints: Optional[List[Rule]] = None
        self._delta: Optional[_AtomDatabase] = None
        #: how many times this grounder ran a full base grounding / delta layer
        self.base_groundings = 0
        self.delta_groundings = 0

    # -- public API ---------------------------------------------------------

    def ground(self) -> GroundProgram:
        facts, rules, constraints = self._split_statements()
        for rule in rules + constraints:
            self._check_safety(rule)
        for minimize in self.program.minimizes:
            self._check_minimize_safety(minimize)
        self._add_facts(facts)
        for atom in self._possible_hints:
            self.possible.add(atom[0], tuple(atom[1:]))
        self._components = self._stratify(rules)
        self._constraints = constraints
        for component_rules in self._components:
            self._ground_component(component_rules)
        for constraint in constraints:
            self._ground_constraint(constraint)
        for minimize in self.program.minimizes:
            self._ground_minimize(minimize)
        self.base_groundings += 1
        return self.ground_program

    def clone(self) -> "Grounder":
        """Fork the complete grounding state (program objects are shared).

        The clone can be extended with :meth:`ground_delta` without touching
        this grounder, so one base grounding can serve many solves.  Cloning
        never mutates ``self`` — only plain data structures are copied and
        the immutable program/ASTs are shared — so concurrent clones of one
        base grounder are safe from threads and from ``os.fork()``-ed worker
        processes alike (the parallel session's workers do exactly that),
        and a fully grounded ``Grounder`` is picklable for the on-disk
        ground cache.
        """
        other = NaiveGrounder.__new__(NaiveGrounder)
        other.program = self.program
        other.ground_program = self.ground_program.copy()
        other.possible = self.possible.copy()
        other.certain = self.certain.copy()
        other._rule_keys = set(self._rule_keys)
        other._choice_instances = dict(self._choice_instances)
        other._constraint_keys = set(self._constraint_keys)
        other._minimize_keys = set(self._minimize_keys)
        other._extra_facts = list(self._extra_facts)
        other._possible_hints = list(self._possible_hints)
        other._components = self._components
        other._constraints = self._constraints
        other._delta = None
        other.base_groundings = self.base_groundings
        other.delta_groundings = self.delta_groundings
        return other

    def ground_delta(
        self,
        extra_facts: Sequence[tuple],
        possible_hints: Sequence[tuple] = (),
    ) -> GroundProgram:
        """Ground additional facts on top of a completed :meth:`ground`.

        Rule instantiation is restricted to instances where at least one
        positive body literal matches an atom that is new in this layer
        (semi-naive evaluation); everything grounded before stays valid and
        is not re-derived.  ``possible_hints`` are additional layer-local
        possibility seeds with the same semantics as the constructor's: they
        become possible (and seed joins) without becoming facts.
        """
        if self._components is None:
            self._extra_facts.extend(extra_facts)
            self._possible_hints.extend(possible_hints)
            return self.ground()
        delta = _AtomDatabase()
        for atom in extra_facts:
            name, args = atom[0], tuple(atom[1:])
            if self.possible.add(name, args):
                delta.add(name, args)
            self.certain.add(name, args)
            atom_id = self.ground_program.atoms.intern(atom)
            self.ground_program.facts.add(atom_id)
        for atom in possible_hints:
            self._possible_hints.append(atom)
            name, args = atom[0], tuple(atom[1:])
            if self.possible.add(name, args):
                delta.add(name, args)
        for component_rules in self._components:
            self._ground_component(component_rules, delta)
        for constraint in self._constraints:
            self._ground_constraint(constraint, delta)
        for minimize in self.program.minimizes:
            self._ground_minimize(minimize, delta)
        self.delta_groundings += 1
        return self.ground_program

    # -- setup ----------------------------------------------------------------

    def _split_statements(self):
        facts: List[tuple] = list(self._extra_facts)
        rules: List[Rule] = []
        constraints: List[Rule] = []
        for rule in self.program.rules:
            if rule.is_fact and rule.head.is_ground():
                facts.append(rule.head.ground({}))
            elif rule.is_constraint:
                constraints.append(rule)
            else:
                rules.append(rule)
        return facts, rules, constraints

    def _check_safety(self, rule: Rule):
        """Static safety check: every variable must be bound by a positive
        body literal (or, for conditional/choice elements, by their local
        condition)."""
        positives, negatives, comparisons, conditionals = self._split_body(rule.body)
        bound = _collect_variables(positives)

        def require(variables: Set[str], where: str):
            unbound = variables - bound
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in {where} of rule: {rule}"
                )

        for negative in negatives:
            require({v.name for v in negative.variables()}, "negative literal")
        for comparison in comparisons:
            require({v.name for v in comparison.variables()}, "comparison")
        for conditional in conditionals:
            local = bound | _collect_variables(
                c for c in conditional.condition if isinstance(c, Literal) and not c.negated
            )
            unbound = {v.name for v in conditional.literal.variables()} - local
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in conditional literal of rule: {rule}"
                )
        if isinstance(rule.head, Atom):
            require({v.name for v in rule.head.variables()}, "head")
        elif isinstance(rule.head, Choice):
            for element in rule.head.elements:
                local = bound | _collect_variables(
                    c for c in element.condition if isinstance(c, Literal) and not c.negated
                )
                unbound = {v.name for v in element.atom.variables()} - local
                if unbound:
                    raise GroundingError(
                        f"unsafe variables {sorted(unbound)} in choice element of rule: {rule}"
                    )
            for bound_term in (rule.head.lower, rule.head.upper):
                if bound_term is not None:
                    require({v.name for v in term_variables(bound_term)}, "cardinality bound")

    def _check_minimize_safety(self, minimize: Minimize):
        for element in minimize.elements:
            positives = [
                c for c in element.condition if isinstance(c, Literal) and not c.negated
            ]
            bound = _collect_variables(positives)
            needed: Set[str] = set()
            for term in (element.weight, element.priority) + element.terms:
                needed.update(v.name for v in term_variables(term))
            for item in element.condition:
                if isinstance(item, (Comparison,)) or (
                    isinstance(item, Literal) and item.negated
                ):
                    needed.update(v.name for v in item.variables())
            unbound = needed - bound
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in minimize element: {element}"
                )

    def _add_facts(self, facts: Sequence[tuple]):
        for atom in facts:
            name, args = atom[0], tuple(atom[1:])
            self.possible.add(name, args)
            self.certain.add(name, args)
            atom_id = self.ground_program.atoms.intern(atom)
            self.ground_program.facts.add(atom_id)

    # -- stratification ---------------------------------------------------------

    def _head_predicates(self, rule: Rule) -> List[str]:
        if isinstance(rule.head, Atom):
            return [rule.head.name]
        if isinstance(rule.head, Choice):
            return [element.atom.name for element in rule.head.elements]
        return []

    def _body_predicates(self, rule: Rule) -> List[str]:
        names = []
        for element in rule.body:
            if isinstance(element, Literal):
                names.append(element.atom.name)
            elif isinstance(element, ConditionalLiteral):
                names.append(element.literal.atom.name)
                for condition in element.condition:
                    if isinstance(condition, Literal):
                        names.append(condition.atom.name)
        if isinstance(rule.head, Choice):
            for element in rule.head.elements:
                for condition in element.condition:
                    if isinstance(condition, Literal):
                        names.append(condition.atom.name)
        return names

    def _stratify(self, rules: List[Rule]) -> List[List[Rule]]:
        """Group rules into SCC components of the predicate dependency graph,
        ordered so that dependencies are grounded first."""
        rules_by_head: Dict[str, List[Rule]] = {}
        graph: Dict[str, Set[str]] = {}
        for rule in rules:
            heads = self._head_predicates(rule)
            bodies = self._body_predicates(rule)
            for head in heads:
                rules_by_head.setdefault(head, []).append(rule)
                graph.setdefault(head, set()).update(bodies)
                for body in bodies:
                    graph.setdefault(body, set())

        sccs = _tarjan_sccs(graph)
        # _tarjan_sccs returns components in reverse topological order of the
        # "head depends on body" graph, i.e. dependencies come first.
        components: List[List[Rule]] = []
        seen_rules: Set[int] = set()
        for component in sccs:
            component_rules: List[Rule] = []
            for predicate in component:
                for rule in rules_by_head.get(predicate, []):
                    if id(rule) not in seen_rules:
                        seen_rules.add(id(rule))
                        component_rules.append(rule)
            if component_rules:
                components.append(component_rules)
        return components

    # -- joining ---------------------------------------------------------------

    def _join(
        self,
        positives: List[Literal],
        comparisons: List[Comparison],
        substitution: Substitution,
        database: _AtomDatabase,
    ) -> Iterator[Substitution]:
        """Enumerate substitutions satisfying all positive literals (against
        ``database``) and all comparisons."""
        yield from self._join_step(list(positives), list(comparisons), substitution, database)

    def _join_step(self, positives, comparisons, substitution, database):
        # Evaluate any comparison whose variables are all bound.
        remaining_comparisons = []
        for comparison in comparisons:
            if all(v.name in substitution for v in comparison.variables()):
                if not comparison.evaluate(substitution):
                    return
            else:
                remaining_comparisons.append(comparison)

        if not positives:
            if remaining_comparisons:
                unresolved = ", ".join(str(c) for c in remaining_comparisons)
                raise GroundingError(f"unsafe comparison(s): {unresolved}")
            yield substitution
            return

        # Pick the cheapest literal next (fewest current candidates).
        best_index = 0
        best_cost = None
        for index, literal in enumerate(positives):
            first = _pattern_first_value(literal.atom, substitution)
            if first is not None:
                cost = len(database.candidates(literal.atom.name, first))
            else:
                cost = database.count(literal.atom.name)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
            if cost == 0:
                break

        literal = positives[best_index]
        rest = positives[:best_index] + positives[best_index + 1 :]
        first = _pattern_first_value(literal.atom, substitution)
        for args in database.candidates(literal.atom.name, first):
            extended = _match_atom(literal.atom, args, substitution)
            if extended is not None:
                yield from self._join_step(rest, remaining_comparisons, extended, database)

    def _join_delta(
        self,
        positives: List[Literal],
        comparisons: List[Comparison],
        delta: _AtomDatabase,
        database: _AtomDatabase,
    ) -> Iterator[Substitution]:
        """Enumerate substitutions where >= 1 positive literal matches a
        *delta* atom (the rest join against the full database).

        Instances touching several delta atoms are found once per seed; the
        caller's dedup keys make that harmless.  Bodies without positive
        literals cannot gain new instances from added facts, so they yield
        nothing here.
        """
        for index, literal in enumerate(positives):
            name = literal.atom.name
            if delta.count(name) == 0:
                continue
            rest = positives[:index] + positives[index + 1 :]
            first = _pattern_first_value(literal.atom, {})
            for args in delta.candidates(name, first):
                substitution = _match_atom(literal.atom, args, {})
                if substitution is not None:
                    yield from self._join_step(
                        rest, list(comparisons), substitution, database
                    )

    # -- body grounding -----------------------------------------------------------

    def _split_body(self, body):
        positives: List[Literal] = []
        negatives: List[Literal] = []
        comparisons: List[Comparison] = []
        conditionals: List[ConditionalLiteral] = []
        for element in body:
            if isinstance(element, Literal):
                (negatives if element.negated else positives).append(element)
            elif isinstance(element, Comparison):
                comparisons.append(element)
            elif isinstance(element, ConditionalLiteral):
                conditionals.append(element)
            else:
                raise GroundingError(f"unsupported body element: {element!r}")
        return positives, negatives, comparisons, conditionals

    def _expand_conditional(
        self, conditional: ConditionalLiteral, substitution: Substitution
    ) -> Optional[Tuple[List[tuple], List[tuple]]]:
        """Expand a conditional literal into (positive, negative) ground atoms.

        Conditions range over *certain* atoms.  Returns None if the expansion
        makes the body unsatisfiable (an instance is certainly violated).
        """
        cond_positives: List[Literal] = []
        cond_comparisons: List[Comparison] = []
        for item in conditional.condition:
            if isinstance(item, Literal):
                if item.negated:
                    raise GroundingError(
                        "negated literals are not supported in conditions: "
                        f"{conditional}"
                    )
                cond_positives.append(item)
            elif isinstance(item, Comparison):
                cond_comparisons.append(item)

        pos_atoms: List[tuple] = []
        neg_atoms: List[tuple] = []
        for local in self._join(cond_positives, cond_comparisons, substitution, self.certain):
            atom = conditional.literal.atom.ground(local)
            name, args = atom[0], tuple(atom[1:])
            if conditional.literal.negated:
                if self.certain.contains(name, args):
                    return None
                neg_atoms.append(atom)
            else:
                if self.certain.contains(name, args):
                    continue  # certainly true; drop from the conjunction
                pos_atoms.append(atom)
        return pos_atoms, neg_atoms

    def _ground_body(
        self, body, database: _AtomDatabase, delta: Optional[_AtomDatabase] = None
    ) -> Iterator[Optional[Tuple[Substitution, List[tuple], List[tuple]]]]:
        """Yield (substitution, pos_atoms, neg_atoms) for every body instance.

        Positive atoms that are certain facts are dropped; instances whose
        negative literals contradict certain facts are skipped.  With
        ``delta``, only instances touching at least one delta atom through a
        positive literal are produced (incremental grounding).
        """
        positives, negatives, comparisons, conditionals = self._split_body(body)

        bound_by_positives = _collect_variables(positives)
        for negative in negatives:
            unbound = set(v.name for v in negative.variables()) - bound_by_positives
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in negative literal {negative}"
                )

        if delta is None:
            substitutions = self._join(positives, comparisons, {}, database)
        else:
            substitutions = self._join_delta(positives, comparisons, delta, database)
        for substitution in substitutions:
            pos_atoms: List[tuple] = []
            neg_atoms: List[tuple] = []
            feasible = True

            for literal in positives:
                atom = literal.atom.ground(substitution)
                name, args = atom[0], tuple(atom[1:])
                if self.certain.contains(name, args):
                    continue
                pos_atoms.append(atom)

            for literal in negatives:
                atom = literal.atom.ground(substitution)
                name, args = atom[0], tuple(atom[1:])
                if self.certain.contains(name, args):
                    feasible = False
                    break
                neg_atoms.append(atom)
            if not feasible:
                continue

            for conditional in conditionals:
                expansion = self._expand_conditional(conditional, substitution)
                if expansion is None:
                    feasible = False
                    break
                cond_pos, cond_neg = expansion
                pos_atoms.extend(cond_pos)
                neg_atoms.extend(cond_neg)
            if not feasible:
                continue

            yield substitution, pos_atoms, neg_atoms

    # -- component grounding ---------------------------------------------------------

    def _ground_component(self, rules: List[Rule], delta: Optional[_AtomDatabase] = None):
        if delta is None:
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    if isinstance(rule.head, Choice):
                        if self._ground_choice_rule(rule):
                            changed = True
                    else:
                        if self._ground_normal_rule(rule):
                            changed = True
            return

        # Semi-naive: each iteration seeds joins only from the atoms derived
        # in the previous one, so the pass-wide delta is never re-scanned.
        current = delta
        while True:
            next_delta = _AtomDatabase()
            self._delta = next_delta
            try:
                for rule in rules:
                    if isinstance(rule.head, Choice):
                        if self._choice_elements_touched(rule, current):
                            # an element-condition relation grew: existing
                            # instances may be missing candidates, so re-run
                            # the rule against the full database (the
                            # instance registry upgrades them in place)
                            self._ground_choice_rule(rule)
                        else:
                            self._ground_choice_rule(rule, current)
                    else:
                        self._ground_normal_rule(rule, current)
            finally:
                self._delta = None
            new_atoms = False
            for name, relation in next_delta.relations.items():
                for args in relation.tuples:
                    delta.add(name, args)
                    new_atoms = True
            if not new_atoms:
                break
            current = next_delta

    def _intern(self, atom: tuple) -> int:
        return self.ground_program.atoms.intern(atom)

    # -- choice instance registry -------------------------------------------

    def _rule_position(self, rule: Rule) -> int:
        """A pickle-stable identity for ``rule`` (its index in the program).

        ``id(rule)`` would not survive a pickle round trip (the persistent
        ground cache pickles grounders), so registry keys use positions.  The
        id->position memo itself is process-local and dropped on pickling.
        """
        positions = self.__dict__.get("_rule_positions")
        if positions is None or id(rule) not in positions:
            positions = {id(r): i for i, r in enumerate(self.program.rules)}
            self._rule_positions = positions
        return positions[id(rule)]

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_rule_positions", None)
        return state

    @staticmethod
    def _substitution_key(substitution: Substitution) -> tuple:
        return tuple(sorted(substitution.items(), key=lambda kv: kv[0]))

    def _choice_elements_touched(self, rule: Rule, delta: _AtomDatabase) -> bool:
        """True if ``delta`` extends a relation some choice element of
        ``rule`` ranges over (so existing instances may need re-expansion)."""
        for element in rule.head.elements:
            for item in element.condition:
                if isinstance(item, Literal) and delta.count(item.atom.name):
                    return True
        return False

    def _add_possible(self, name: str, args: tuple):
        """Record a derived atom as possible (and as delta when layering)."""
        if self.possible.add(name, args) and self._delta is not None:
            self._delta.add(name, args)

    def _ground_normal_rule(self, rule: Rule, delta: Optional[_AtomDatabase] = None) -> bool:
        head: Atom = rule.head
        changed = False
        head_variables = set(v.name for v in head.variables())
        for substitution, pos_atoms, neg_atoms in self._ground_body(
            rule.body, self.possible, delta
        ):
            unbound = head_variables - set(substitution)
            if unbound:
                raise GroundingError(
                    f"unsafe variables {sorted(unbound)} in head of rule: {rule}"
                )
            head_atom = head.ground(substitution)
            key = (head_atom, tuple(pos_atoms), tuple(neg_atoms))
            if key in self._rule_keys:
                continue
            self._rule_keys.add(key)
            changed = True

            name, args = head_atom[0], tuple(head_atom[1:])
            head_id = self._intern(head_atom)
            self._add_possible(name, args)

            if not pos_atoms and not neg_atoms:
                # The body is certainly true: the head is a fact.
                if self.certain.add(name, args):
                    pass
                self.ground_program.facts.add(head_id)
                continue

            self.ground_program.rules.append(
                GroundRule(
                    head=head_id,
                    pos=tuple(self._intern(a) for a in pos_atoms),
                    neg=tuple(self._intern(a) for a in neg_atoms),
                )
            )
        return changed

    def _ground_choice_rule(self, rule: Rule, delta: Optional[_AtomDatabase] = None) -> bool:
        choice: Choice = rule.head
        rule_position = self._rule_position(rule)
        changed = False
        for substitution, pos_atoms, neg_atoms in self._ground_body(
            rule.body, self.possible, delta
        ):
            candidates: List[tuple] = []
            for element in choice.elements:
                candidates.extend(self._expand_choice_element(element, substitution))
            lower = self._evaluate_bound(choice.lower, substitution)
            upper = self._evaluate_bound(choice.upper, substitution)

            candidate_ids = []
            for atom in candidates:
                name, args = atom[0], tuple(atom[1:])
                self._add_possible(name, args)
                candidate_ids.append(self._intern(atom))
            pos = tuple(self._intern(a) for a in pos_atoms)
            neg = tuple(self._intern(a) for a in neg_atoms)

            key = (rule_position, self._substitution_key(substitution))
            index = self._choice_instances.get(key)
            if index is None:
                self._choice_instances[key] = len(self.ground_program.choices)
                self.ground_program.choices.append(
                    GroundChoice(
                        atoms=tuple(candidate_ids),
                        pos=pos,
                        neg=neg,
                        lower=lower,
                        upper=upper,
                    )
                )
                changed = True
                continue

            # The instance exists already.  Upgrade it in place if this
            # (re-)derivation expanded to candidates the stored instance is
            # missing (an element-condition relation grew since it was
            # instantiated); keep the stored candidate order and append.
            existing = self.ground_program.choices[index]
            known = set(existing.atoms)
            novel = [cid for cid in candidate_ids if cid not in known]
            if not novel and pos == existing.pos and neg == existing.neg:
                continue
            self.ground_program.choices[index] = GroundChoice(
                atoms=existing.atoms + tuple(novel),
                pos=pos,
                neg=neg,
                lower=lower,
                upper=upper,
            )
            if novel:
                changed = True
        return changed

    def _expand_choice_element(self, element, substitution: Substitution) -> List[tuple]:
        positives: List[Literal] = []
        comparisons: List[Comparison] = []
        for item in element.condition:
            if isinstance(item, Literal):
                if item.negated:
                    raise GroundingError(
                        f"negated condition in choice element is unsupported: {element}"
                    )
                positives.append(item)
            elif isinstance(item, Comparison):
                comparisons.append(item)
        atoms: List[tuple] = []
        seen: Set[tuple] = set()
        for local in self._join(positives, comparisons, substitution, self.certain):
            atom = element.atom.ground(local)
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
        return atoms

    def _evaluate_bound(self, bound, substitution: Substitution) -> Optional[int]:
        if bound is None:
            return None
        value = evaluate_term(bound, substitution)
        if not isinstance(value, int):
            raise GroundingError(f"cardinality bound is not an integer: {value!r}")
        return value

    # -- constraints and minimize ----------------------------------------------------

    def _ground_constraint(self, rule: Rule, delta: Optional[_AtomDatabase] = None):
        for _, pos_atoms, neg_atoms in self._ground_body(rule.body, self.possible, delta):
            key = (tuple(pos_atoms), tuple(neg_atoms))
            if key in self._constraint_keys:
                continue
            self._constraint_keys.add(key)
            self.ground_program.constraints.append(
                GroundConstraint(
                    pos=tuple(self._intern(a) for a in pos_atoms),
                    neg=tuple(self._intern(a) for a in neg_atoms),
                )
            )

    def _ground_minimize(self, minimize: Minimize, delta: Optional[_AtomDatabase] = None):
        for element in minimize.elements:
            for substitution, pos_atoms, neg_atoms in self._ground_body(
                element.condition, self.possible, delta
            ):
                weight = evaluate_term(element.weight, substitution)
                priority = evaluate_term(element.priority, substitution)
                if not isinstance(weight, int) or not isinstance(priority, int):
                    raise GroundingError(
                        f"minimize weight/priority must be integers: {element}"
                    )
                terms = tuple(evaluate_term(t, substitution) for t in element.terms)
                key = (priority, weight, terms, tuple(pos_atoms), tuple(neg_atoms))
                if key in self._minimize_keys:
                    continue
                self._minimize_keys.add(key)
                self.ground_program.minimize_literals.append(
                    GroundMinimizeLiteral(
                        priority=priority,
                        weight=weight,
                        key=(priority, weight) + terms,
                        pos=tuple(self._intern(a) for a in pos_atoms),
                        neg=tuple(self._intern(a) for a in neg_atoms),
                    )
                )


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC; components are returned dependencies-first."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[List[str]] = []

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(sorted(graph.get(start, ()))))]
        index[start] = lowlink[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    # Tarjan emits components in reverse topological order of the condensation
    # for edges "node -> successor"; since edges point head -> body, that means
    # dependencies (bodies) come first, which is the grounding order we want.
    return components


