"""Timing utilities mirroring the paper's per-phase measurement.

The paper instruments the concretizer into four phases (Section VII):

* **setup** — generating the facts for a given spec (done by the Spack layer),
* **load**  — loading/parsing the logic program,
* **ground** — grounding the logic program against the facts,
* **solve** — the actual search plus optimization.

:class:`PhaseTimer` accumulates wall-clock durations per named phase and is
shared between :class:`repro.asp.control.Control` and the concretizer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

PHASES = ("setup", "load", "ground", "solve")


class PhaseTimer:
    """Accumulates wall-clock time per named phase."""

    def __init__(self):
        self._durations: Dict[str, float] = {}
        self._starts: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one phase (durations accumulate)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._durations[name] = self._durations.get(name, 0.0) + elapsed

    def start(self, name: str):
        self._starts[name] = time.perf_counter()

    def stop(self, name: str):
        start = self._starts.pop(name, None)
        if start is None:
            return
        elapsed = time.perf_counter() - start
        self._durations[name] = self._durations.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float):
        self._durations[name] = self._durations.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self._durations.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._durations.values())

    def as_dict(self) -> Dict[str, float]:
        result = {name: self._durations.get(name, 0.0) for name in PHASES}
        for name, value in self._durations.items():
            result[name] = value
        result["total"] = self.total
        return result

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        merged = PhaseTimer()
        for name, value in self._durations.items():
            merged.add(name, value)
        for name, value in other._durations.items():
            merged.add(name, value)
        return merged

    def __repr__(self):
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self._durations.items()))
        return f"PhaseTimer({parts})"


class Timer:
    """Simple one-shot timer (used by benchmarks and the original concretizer)."""

    def __init__(self):
        self.start_time: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self.elapsed = time.perf_counter() - self.start_time
        return False
