"""Timing utilities mirroring the paper's per-phase measurement.

The paper instruments the concretizer into four phases (Section VII):

* **setup** — generating the facts for a given spec (done by the Spack layer),
* **load**  — loading/parsing the logic program,
* **ground** — grounding the logic program against the facts,
* **solve** — the actual search plus optimization.

:class:`PhaseTimer` accumulates wall-clock durations per named phase and is
shared between :class:`repro.asp.control.Control` and the concretizer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

PHASES = ("setup", "load", "ground", "solve")


class PhaseTimer:
    """Accumulates wall-clock time per named phase."""

    def __init__(self):
        self._durations: Dict[str, float] = {}
        self._starts: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one phase (durations accumulate)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._durations[name] = self._durations.get(name, 0.0) + elapsed

    def start(self, name: str):
        self._starts[name] = time.perf_counter()

    def stop(self, name: str):
        start = self._starts.pop(name, None)
        if start is None:
            return
        elapsed = time.perf_counter() - start
        self._durations[name] = self._durations.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float):
        self._durations[name] = self._durations.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self._durations.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._durations.values())

    def as_dict(self) -> Dict[str, float]:
        result = {name: self._durations.get(name, 0.0) for name in PHASES}
        for name, value in self._durations.items():
            result[name] = value
        result["total"] = self.total
        return result

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        merged = PhaseTimer()
        for name, value in self._durations.items():
            merged.add(name, value)
        for name, value in other._durations.items():
            merged.add(name, value)
        return merged

    def __repr__(self):
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self._durations.items()))
        return f"PhaseTimer({parts})"


class Timer:
    """Simple one-shot timer (used by benchmarks and the original concretizer)."""

    def __init__(self):
        self.start_time: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self.elapsed = time.perf_counter() - self.start_time
        return False


class ASPStats:
    """Opt-in fine-grained grounding/solving profile.

    Where :class:`PhaseTimer` mirrors the paper's four coarse phases, an
    ``ASPStats`` breaks the *ground* and *solve* phases down further: named
    stages (``ground.rules``, ``delta.facts``, ``solve.search`` ...), event
    counters (groundings run, portfolio races won ...), and — when
    ``per_rule=True`` — per-rule wall-clock attribution so a grounding
    regression can be pinned to the rule that caused it.

    The object is cheap when unused (plain dict upserts) and entirely opt-in:
    the grounder/control take ``stats=None`` by default and skip all timing
    calls.  ``merge`` folds a worker's stats into a session-wide aggregate;
    ``as_dict`` is the JSON-friendly form served by ``/v1/stats`` and dumped
    by the bench-profile CI step.
    """

    def __init__(self, per_rule: bool = False):
        self.per_rule = per_rule
        self.stages: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self.rules: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    def add_stage(self, name: str, seconds: float):
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def count(self, name: str, amount: int = 1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_rule(self, label: str, seconds: float):
        self.rules[label] = self.rules.get(label, 0.0) + seconds

    def merge(self, other: "ASPStats"):
        """Fold ``other`` into this instance (sums everywhere)."""
        for name, value in other.stages.items():
            self.add_stage(name, value)
        for name, value in other.counters.items():
            self.count(name, value)
        for label, value in other.rules.items():
            self.add_rule(label, value)

    def as_dict(self, top_rules: int = 20) -> Dict[str, object]:
        """JSON-friendly snapshot; rules truncated to the ``top_rules``
        most expensive (pass ``top_rules=0`` for all of them)."""
        rules = sorted(self.rules.items(), key=lambda kv: -kv[1])
        if top_rules:
            rules = rules[:top_rules]
        return {
            "stages": dict(sorted(self.stages.items())),
            "counters": dict(sorted(self.counters.items())),
            "rules": {label: seconds for label, seconds in rules},
        }

    def __repr__(self):
        stages = ", ".join(
            f"{name}={seconds:.3f}s" for name, seconds in sorted(self.stages.items())
        )
        return f"ASPStats({stages})"
