"""Exception hierarchy for the ASP subsystem."""


class ASPError(Exception):
    """Base class for all errors raised by :mod:`repro.asp`."""


class ParseError(ASPError):
    """Raised when the ASP input language cannot be parsed.

    Carries the offending line/column when available so error messages can
    point at the source location inside a logic program.
    """

    def __init__(self, message, line=None, column=None, text=None):
        self.line = line
        self.column = column
        self.text = text
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class GroundingError(ASPError):
    """Raised when a rule cannot be grounded (e.g. unsafe variables)."""


class SolveError(ASPError):
    """Raised when the solver is used incorrectly (e.g. before grounding)."""
