"""Tokenizer for the ASP input language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.asp.errors import ParseError


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


# Token kinds
IDENTIFIER = "IDENTIFIER"  # lowercase identifier (predicate / constant)
VARIABLE = "VARIABLE"  # Capitalised identifier or "_"
NUMBER = "NUMBER"
STRING = "STRING"
DIRECTIVE = "DIRECTIVE"  # "#minimize", "#maximize", "#const", ...
PUNCT = "PUNCT"
END = "END"

_PUNCTUATION = (
    ":-",
    "!=",
    "<=",
    ">=",
    "==",
    ".",
    ",",
    ";",
    ":",
    "(",
    ")",
    "{",
    "}",
    "@",
    "+",
    "-",
    "*",
    "/",
    "=",
    "<",
    ">",
)


def tokenize(text: str) -> List[Token]:
    """Tokenize ASP source text into a list of tokens (ending with END)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def error(message):
        raise ParseError(message, line=line, column=column)

    while i < n:
        ch = text[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        # comments: '%' to end of line (but not '%*' block comments, which we
        # also accept for completeness)
        if ch == "%":
            if i + 1 < n and text[i + 1] == "*":
                end = text.find("*%", i + 2)
                if end == -1:
                    error("unterminated block comment")
                skipped = text[i : end + 2]
                line += skipped.count("\n")
                i = end + 2
                column = 1
                continue
            end = text.find("\n", i)
            if end == -1:
                break
            i = end
            continue
        # strings
        if ch == '"':
            j = i + 1
            parts = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                else:
                    parts.append(text[j])
                    j += 1
            if j >= n:
                error("unterminated string literal")
            tokens.append(Token(STRING, "".join(parts), line, column))
            column += j + 1 - i
            i = j + 1
            continue
        # numbers
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token(NUMBER, text[i:j], line, column))
            column += j - i
            i = j
            continue
        # directives
        if ch == "#":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(DIRECTIVE, text[i:j], line, column))
            column += j - i
            i = j
            continue
        # identifiers and variables
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word == "not":
                tokens.append(Token(PUNCT, "not", line, column))
            elif word[0] == "_" or word[0].isupper():
                tokens.append(Token(VARIABLE, word, line, column))
            else:
                tokens.append(Token(IDENTIFIER, word, line, column))
            column += j - i
            i = j
            continue
        # punctuation (longest match first)
        matched = False
        for punct in _PUNCTUATION:
            if text.startswith(punct, i):
                value = "=" if punct == "==" else punct
                tokens.append(Token(PUNCT, value, line, column))
                i += len(punct)
                column += len(punct)
                matched = True
                break
        if matched:
            continue
        error(f"unexpected character {ch!r}")

    tokens.append(Token(END, "", line, column))
    return tokens


def iter_statements(tokens: List[Token]) -> Iterator[List[Token]]:
    """Split a token stream into statements terminated by '.'."""
    current: List[Token] = []
    for token in tokens:
        if token.kind == END:
            break
        if token.kind == PUNCT and token.value == ".":
            if current:
                yield current
                current = []
            continue
        current.append(token)
    if current:
        raise ParseError(
            "unexpected end of input (missing '.')",
            line=current[-1].line,
            column=current[-1].column,
        )
