"""A self-contained Answer Set Programming (ASP) system.

This subpackage replaces *clingo* in the paper's architecture.  It provides:

* an input language (a large, practical subset of the gringo language):
  facts, normal rules, integrity constraints, choice rules with cardinality
  bounds, conditional literals, comparison builtins, arithmetic terms, and
  multi-level ``#minimize`` statements;
* a safe-rule, bottom-up grounder (:mod:`repro.asp.grounder`);
* a CDCL solver with watched literals, clause learning, restarts, and
  linear (cardinality / pseudo-Boolean) constraint propagation
  (:mod:`repro.asp.solver`);
* stable-model enforcement via lazy unfounded-set (loop nogood) checking
  (:mod:`repro.asp.unfounded`);
* lexicographic multi-level optimization (:mod:`repro.asp.optimization`);
* a clingo-like facade (:class:`repro.asp.control.Control`) with per-phase
  timing statistics matching the paper's setup/load/ground/solve breakdown.
"""

from repro.asp.configs import SolverConfig
from repro.asp.control import Control, Model, SolveResult
from repro.asp.errors import ASPError, GroundingError, ParseError, SolveError

__all__ = [
    "ASPError",
    "Control",
    "GroundingError",
    "Model",
    "ParseError",
    "SolveError",
    "SolveResult",
    "SolverConfig",
]
