"""The installed-package database (store / buildcache).

Every concrete spec installed into the store is identified by its DAG hash
(Figure 4 in the paper).  The database is what the reuse encoding of Section
VI draws its ``installed_hash`` / ``imposed_constraint`` facts from, and what
the Figure 7e–7g experiments grow to tens of thousands of entries.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.spack.errors import SpackError
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec


class Database:
    """An in-memory installed-package database keyed by DAG hash."""

    def __init__(self, specs: Iterable[Spec] = ()):
        self._by_hash: Dict[str, Spec] = {}
        self._generation = 0
        self._content_hash_cache: Optional[Tuple[int, str]] = None
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, spec: Spec) -> str:
        """Record one concrete spec (its dependencies are *not* added)."""
        if not spec.concrete:
            raise SpackError(f"only concrete specs can be installed: {spec}")
        digest = spec.dag_hash()
        if digest not in self._by_hash:
            self._generation += 1
        self._by_hash[digest] = spec
        return digest

    def install(self, spec: Spec) -> List[str]:
        """Install a concrete spec and its whole dependency subtree."""
        digests = []
        for node in spec.traverse():
            digests.append(self.add(node))
        return digests

    def remove(self, digest: str):
        if self._by_hash.pop(digest, None) is not None:
            self._generation += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every effective add/remove (cheap
        in-process invalidation token for caches layered on this store)."""
        return self._generation

    def content_hash(self) -> str:
        """A digest of the installed set, stable across processes.

        Two databases holding the same concrete specs hash identically, so
        solve caches keyed on it survive serialization round-trips.  The
        digest is memoized against :attr:`generation`, so callers may hash
        on every solve for free.
        """
        cached = self._content_hash_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        digest = hashlib.sha256()
        for dag_hash in sorted(self._by_hash):
            digest.update(dag_hash.encode("utf-8"))
        value = digest.hexdigest()[:32]
        self._content_hash_cache = (self._generation, value)
        return value

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, digest: str) -> bool:
        return digest in self._by_hash

    def lookup(self, digest: str) -> Optional[Spec]:
        return self._by_hash.get(digest)

    def all_specs(self) -> List[Spec]:
        return [self._by_hash[d] for d in sorted(self._by_hash)]

    def all_hashes(self) -> List[str]:
        return sorted(self._by_hash)

    def query(self, constraint: Union[str, Spec, None] = None) -> List[Spec]:
        """All installed specs satisfying ``constraint`` (all of them if None)."""
        if constraint is None:
            return self.all_specs()
        if isinstance(constraint, str):
            constraint = parse_spec(constraint)
        return [spec for spec in self.all_specs() if spec.satisfies(constraint)]

    def installed_names(self) -> List[str]:
        return sorted({spec.name for spec in self._by_hash.values()})

    # ------------------------------------------------------------------
    # Serialization (so buildcaches can be saved/restored in benchmarks)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"database": {digest: spec.to_dict() for digest, spec in self._by_hash.items()}}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Database":
        database = cls()
        for _digest, payload in data.get("database", {}).items():
            spec = Spec.from_dict(payload)
            spec.mark_concrete()
            database.add(spec)
        return database

    @classmethod
    def from_json(cls, text: str) -> "Database":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------

    def filtered(self, predicate) -> "Database":
        """A new database containing only the specs matching ``predicate``.

        Used by the Figure 7e–7g experiment to restrict the buildcache to one
        architecture and/or operating system.
        """
        subset = Database()
        for spec in self.all_specs():
            if predicate(spec):
                subset.add(spec)
        return subset

    def __repr__(self):
        return f"<Database with {len(self)} installed specs>"


class SolveCache:
    """An LRU memo of concretization results.

    Keys are built by the batch concretization session from the content hash
    of (repository, compiler registry, platform, solver/criteria preset), the
    store state, and the canonical root spec — so a hit is only possible when
    the whole problem is identical and the cached result can be replayed
    without touching the grounder or solver (the Figure 6 / Figure 7e–g
    repeated-solve scenarios).
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """The cached value for ``key`` (bumped to most-recent), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def statistics(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self):
        return (
            f"<SolveCache {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )
