"""The installed-package database (store / buildcache).

Every concrete spec installed into the store is identified by its DAG hash
(Figure 4 in the paper).  The database is what the reuse encoding of Section
VI draws its ``installed_hash`` / ``imposed_constraint`` facts from, and what
the Figure 7e–7g experiments grow to tens of thousands of entries.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union

from repro.spack.errors import SpackError
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec


class Database:
    """An in-memory installed-package database keyed by DAG hash."""

    def __init__(self, specs: Iterable[Spec] = ()):
        self._by_hash: Dict[str, Spec] = {}
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, spec: Spec) -> str:
        """Record one concrete spec (its dependencies are *not* added)."""
        if not spec.concrete:
            raise SpackError(f"only concrete specs can be installed: {spec}")
        digest = spec.dag_hash()
        self._by_hash[digest] = spec
        return digest

    def install(self, spec: Spec) -> List[str]:
        """Install a concrete spec and its whole dependency subtree."""
        digests = []
        for node in spec.traverse():
            digests.append(self.add(node))
        return digests

    def remove(self, digest: str):
        self._by_hash.pop(digest, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, digest: str) -> bool:
        return digest in self._by_hash

    def lookup(self, digest: str) -> Optional[Spec]:
        return self._by_hash.get(digest)

    def all_specs(self) -> List[Spec]:
        return [self._by_hash[d] for d in sorted(self._by_hash)]

    def all_hashes(self) -> List[str]:
        return sorted(self._by_hash)

    def query(self, constraint: Union[str, Spec, None] = None) -> List[Spec]:
        """All installed specs satisfying ``constraint`` (all of them if None)."""
        if constraint is None:
            return self.all_specs()
        if isinstance(constraint, str):
            constraint = parse_spec(constraint)
        return [spec for spec in self.all_specs() if spec.satisfies(constraint)]

    def installed_names(self) -> List[str]:
        return sorted({spec.name for spec in self._by_hash.values()})

    # ------------------------------------------------------------------
    # Serialization (so buildcaches can be saved/restored in benchmarks)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"database": {digest: spec.to_dict() for digest, spec in self._by_hash.items()}}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Database":
        database = cls()
        for _digest, payload in data.get("database", {}).items():
            spec = Spec.from_dict(payload)
            spec.mark_concrete()
            database.add(spec)
        return database

    @classmethod
    def from_json(cls, text: str) -> "Database":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------

    def filtered(self, predicate) -> "Database":
        """A new database containing only the specs matching ``predicate``.

        Used by the Figure 7e–7g experiment to restrict the buildcache to one
        architecture and/or operating system.
        """
        subset = Database()
        for spec in self.all_specs():
            if predicate(spec):
                subset.add(spec)
        return subset

    def __repr__(self):
        return f"<Database with {len(self)} installed specs>"
