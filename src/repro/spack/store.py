"""The installed-package database (store / buildcache) and the cache layers
built on top of it.

Every concrete spec installed into the store is identified by its DAG hash
(Figure 4 in the paper).  The :class:`Database` is what the reuse encoding of
Section VI draws its ``installed_hash`` / ``imposed_constraint`` facts from,
and what the Figure 7e–7g experiments grow to tens of thousands of entries.

This module also hosts the cache subsystem the batch/parallel concretization
sessions (:mod:`repro.spack.concretize.session`) layer on top of the store:

* :class:`SolveCache` — an in-memory LRU memo of
  :class:`~repro.spack.concretize.concretizer.ConcretizationResult` objects,
  keyed by content hashes so a hit can be replayed without touching the
  grounder or solver;
* :class:`PersistentSolveCache` — the same interface, spilled to a cache
  directory as versioned JSON so a *second process* can replay an entire
  batch with zero solver calls;
* :class:`PersistentGroundCache` — an on-disk (pickle) cache of grounded
  base programs, so warm processes skip re-grounding the shared
  spec-independent fact layer;
* :class:`SnapshotStore` — flat, mmap-able ground snapshots
  (:mod:`repro.asp.snapshot`) written beside the pickle entries, so N
  service processes *attach* one shared warm base with near-zero-copy
  startup instead of each unpickling its own object graph.

All persistent layers share the invariants documented in ``docs/CACHING.md``:
content-hash keys (never mtimes), a :data:`CACHE_FORMAT_VERSION` field in
every file, atomic single-file writes (safe under concurrent writers), and
corruption-tolerant loads — a damaged, truncated, foreign, or version-skewed
cache file is treated as a miss (a cold solve), never an error and never a
stale result.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.spack.errors import SpackError
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec

#: Version stamp written into every on-disk cache file.  Bump it whenever the
#: serialized layout (or the semantics of what is cached) changes; readers
#: treat any other version as a miss, so old and new code can share one cache
#: directory without ever exchanging garbage.
CACHE_FORMAT_VERSION = 4

#: Age after which an orphaned ``.tmp`` file (an interrupted writer's
#: leftover) may be reaped by budgeted pruning; generous enough that no
#: live writer can still own it.
_STALE_TMP_SECONDS = 3600


class Database:
    """An in-memory installed-package database keyed by DAG hash."""

    def __init__(self, specs: Iterable[Spec] = ()):
        self._by_hash: Dict[str, Spec] = {}
        self._generation = 0
        self._content_hash_cache: Optional[Tuple[int, str]] = None
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, spec: Spec) -> str:
        """Record one concrete spec (its dependencies are *not* added)."""
        if not spec.concrete:
            raise SpackError(f"only concrete specs can be installed: {spec}")
        digest = spec.dag_hash()
        if digest not in self._by_hash:
            self._generation += 1
        self._by_hash[digest] = spec
        return digest

    def install(self, spec: Spec) -> List[str]:
        """Install a concrete spec and its whole dependency subtree."""
        digests = []
        for node in spec.traverse():
            digests.append(self.add(node))
        return digests

    def remove(self, digest: str):
        if self._by_hash.pop(digest, None) is not None:
            self._generation += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every effective add/remove (cheap
        in-process invalidation token for caches layered on this store)."""
        return self._generation

    def content_hash(self) -> str:
        """A digest of the installed set, stable across processes.

        Two databases holding the same concrete specs hash identically, so
        solve caches keyed on it survive serialization round-trips.  The
        digest is memoized against :attr:`generation`, so callers may hash
        on every solve for free.
        """
        cached = self._content_hash_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        digest = hashlib.sha256()
        for dag_hash in sorted(self._by_hash):
            digest.update(dag_hash.encode("utf-8"))
        value = digest.hexdigest()[:32]
        self._content_hash_cache = (self._generation, value)
        return value

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, digest: str) -> bool:
        return digest in self._by_hash

    def lookup(self, digest: str) -> Optional[Spec]:
        return self._by_hash.get(digest)

    def all_specs(self) -> List[Spec]:
        return [self._by_hash[d] for d in sorted(self._by_hash)]

    def all_hashes(self) -> List[str]:
        return sorted(self._by_hash)

    def query(self, constraint: Union[str, Spec, None] = None) -> List[Spec]:
        """All installed specs satisfying ``constraint`` (all of them if None)."""
        if constraint is None:
            return self.all_specs()
        if isinstance(constraint, str):
            constraint = parse_spec(constraint)
        return [spec for spec in self.all_specs() if spec.satisfies(constraint)]

    def installed_names(self) -> List[str]:
        return sorted({spec.name for spec in self._by_hash.values()})

    # ------------------------------------------------------------------
    # Serialization (so buildcaches can be saved/restored in benchmarks)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"database": {digest: spec.to_dict() for digest, spec in self._by_hash.items()}}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Database":
        database = cls()
        for _digest, payload in data.get("database", {}).items():
            spec = Spec.from_dict(payload)
            spec.mark_concrete()
            database.add(spec)
        return database

    @classmethod
    def from_json(cls, text: str) -> "Database":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------

    def filtered(self, predicate) -> "Database":
        """A new database containing only the specs matching ``predicate``.

        Used by the Figure 7e–7g experiment to restrict the buildcache to one
        architecture and/or operating system.
        """
        subset = Database()
        for spec in self.all_specs():
            if predicate(spec):
                subset.add(spec)
        return subset

    def __repr__(self):
        return f"<Database with {len(self)} installed specs>"


class SolveCache:
    """An LRU memo of concretization results.

    Keys are built by the batch concretization session from the content hash
    of (repository, compiler registry, platform, solver/criteria preset), the
    store state, and the canonical root spec — so a hit is only possible when
    the whole problem is identical and the cached result can be replayed
    without touching the grounder or solver (the Figure 6 / Figure 7e–g
    repeated-solve scenarios).
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        # Guards the LRU dict and counters: concretization sessions may be
        # driven from several threads at once (thread workers, the async
        # session's executor threads), and an OrderedDict ``move_to_end``
        # racing a ``popitem`` corrupts the dict.  Critical sections are
        # memory-only — disk I/O in the persistent flavors happens outside
        # the lock — so the lock is cheap and (nearly) fork-safe.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable):
        """The cached value for ``key`` (bumped to most-recent), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self):
        return (
            f"<SolveCache {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )


# ---------------------------------------------------------------------------
# Persistent (on-disk) caches
# ---------------------------------------------------------------------------


def cache_key_token(key: Hashable) -> str:
    """A deterministic string rendering of a cache key.

    Used both to derive the on-disk filename (through a SHA-256 digest) and
    as an integrity check *inside* the file: a load only counts as a hit if
    the stored token matches, so digest collisions or foreign files in the
    cache directory can never surface someone else's result.  Unordered
    collections are sorted first — ``repr`` of a frozenset depends on the
    per-process hash seed and would break cross-process key equality.
    """
    if isinstance(key, (frozenset, set)):
        return "{" + ",".join(sorted(cache_key_token(item) for item in key)) + "}"
    if isinstance(key, tuple):
        return "(" + ",".join(cache_key_token(item) for item in key) + ")"
    return repr(key)


def _cache_file_digest(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + rename).

    Concurrent writers to the same key are safe: each writes its own
    temporary file and the final ``os.replace`` is atomic, so readers only
    ever observe a complete file (last writer wins — entries for one key are
    deterministic, so the race is benign).
    """
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class _DiskCacheLayer:
    """The envelope logic shared by every on-disk cache flavor.

    One file per key under ``<cache_dir>/<subdir>/<sha256(token)><suffix>``,
    each holding ``{"version", "key", "payload"}`` through a pluggable codec
    (JSON for results, pickle for ground programs).  :meth:`load` classifies
    every outcome so callers count uniformly:

    * ``("hit", payload)`` — complete, current-version, matching-key entry;
    * ``("miss", None)`` — absent, version-skewed, or foreign-key file
      (expected situations, not corruption);
    * ``("error", None)`` — unreadable or undecodable file (corruption).

    With ``max_entries`` / ``max_bytes`` set, every successful write prunes
    the directory back under both budgets in least-recently-used order
    (recency is file mtime, refreshed on every hit).  The entry just written
    is never pruned — even alone over ``max_bytes`` — so a put followed by a
    get can never miss; each eviction is a single atomic unlink and every
    filesystem hiccup (concurrent pruners, vanished files) is tolerated.
    """

    def __init__(
        self,
        cache_dir: str,
        subdir: str,
        suffix: str,
        codec,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.directory = os.path.join(cache_dir, subdir)
        self.suffix = suffix
        self.codec = codec
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    def path_for(self, token: str) -> str:
        return os.path.join(self.directory, _cache_file_digest(token) + self.suffix)

    #: ``errno`` values meaning "the file is gone", not "the file is bad":
    #: a concurrent pruner (this process or another one pointed at the same
    #: directory) can unlink an entry at any moment, which surfaces as
    #: ``ENOENT`` — or ``ESTALE`` on NFS, where the unlinked file's handle
    #: goes stale *between* ``open`` and ``read``.  Both classify as a miss.
    _VANISHED_ERRNOS = frozenset({errno.ENOENT, errno.ESTALE})

    def load(self, token: str) -> Tuple[str, object]:
        path = self.path_for(token)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            if exc.errno in self._VANISHED_ERRNOS:
                return ("miss", None)  # pruned concurrently: an ordinary miss
            return ("error", None)
        try:
            envelope = self.codec.loads(data)
        except Exception:
            return ("error", None)
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != CACHE_FORMAT_VERSION
            or envelope.get("key") != token
        ):
            return ("miss", None)
        self._touch(path)
        return ("hit", envelope.get("payload"))

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh LRU recency after a hit (best effort).

        Runs *after* the payload was fully read, so a concurrent pruner
        unlinking the entry between ``read`` and here costs nothing: the hit
        stands on the bytes already in hand, and the vanished file simply
        keeps its old recency until the next write re-creates it.
        """
        try:
            os.utime(path)
        except OSError:
            pass

    def store(self, token: str, payload) -> Tuple[bool, int]:
        """Best-effort write; (True on success, entries pruned)."""
        try:
            data = self.codec.dumps(
                {"version": CACHE_FORMAT_VERSION, "key": token, "payload": payload}
            )
            path = self.path_for(token)
            _atomic_write_bytes(path, data)
        except Exception:
            return (False, 0)
        return (True, self._prune(keep=path))

    def _prune(self, keep: str) -> int:
        """Evict least-recently-used entries beyond the configured budgets.

        ``keep`` (the entry just written) is exempt: it always survives and
        its size still counts against ``max_bytes``, so everything *else*
        shrinks around it.  Races with concurrent writers/pruners are benign
        — unlinking is atomic and already-gone files are skipped.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        stale_tmp_before = time.time() - _STALE_TMP_SECONDS
        entries = []  # (mtime, size, path), oldest first after sorting
        total_bytes = 0
        count = 0
        try:
            with os.scandir(self.directory) as scan:
                for entry in scan:
                    if not entry.name.endswith(self.suffix):
                        # a .tmp file is an interrupted writer's leftover; it
                        # is invisible to the budgets, so reap it once it is
                        # old enough that no live writer can still own it
                        if entry.name.endswith(".tmp"):
                            try:
                                if entry.stat().st_mtime < stale_tmp_before:
                                    os.unlink(entry.path)
                            except OSError:
                                pass
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    count += 1
                    total_bytes += stat.st_size
                    if entry.path != keep:
                        entries.append((stat.st_mtime, stat.st_size, entry.path))
        except OSError:
            return 0
        entries.sort()
        evicted = 0
        for mtime, size, path in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total_bytes > self.max_bytes
            if not over_entries and not over_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            evicted += 1
            count -= 1
            total_bytes -= size
        return evicted


class _JsonCodec:
    @staticmethod
    def dumps(envelope: Dict) -> bytes:
        return json.dumps(envelope, sort_keys=True).encode("utf-8")

    @staticmethod
    def loads(data: bytes) -> Dict:
        return json.loads(data.decode("utf-8"))


class _PickleCodec:
    @staticmethod
    def dumps(envelope: Dict) -> bytes:
        return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def loads(data: bytes) -> Dict:
        return pickle.loads(data)


class PersistentSolveCache(SolveCache):
    """A :class:`SolveCache` that spills solved results to a cache directory.

    The in-memory LRU stays the first-level cache; on a memory miss the key
    is looked up under ``<cache_dir>/solve/<sha256(key)>.json``.  Entries are
    written through on :meth:`put` as versioned JSON
    (:meth:`ConcretizationResult.to_dict
    <repro.spack.concretize.concretizer.ConcretizationResult.to_dict>`), so a
    *different process* pointed at the same directory replays the same batch
    without a single grounding or solver call.  Unsatisfiable outcomes
    (:class:`~repro.spack.concretize.concretizer.UnsatOutcome`, carrying the
    minimal conflict core) are cached under the same keys — a warm replay
    raises the identical explanation without re-running MUS extraction.

    Degradation contract (exercised in
    ``tests/concretize/test_persistent_cache.py``): corrupted files, version
    mismatches, key-token mismatches, unreadable directories, and failed
    writes all degrade to cache misses (cold solves) and are tallied in
    :meth:`statistics` under ``load_errors`` / ``write_errors``; they never
    raise and can never return a stale or foreign result, because keys embed
    the content hash of every relevant input (see ``docs/CACHING.md``).

    Set ``persist=False`` (or construct a plain :class:`SolveCache`) to
    disable the disk layer while keeping the interface.

    ``max_disk_entries`` / ``max_disk_bytes`` bound the *on-disk* store
    (``max_entries`` remains the in-memory LRU size): every write prunes
    least-recently-used files beyond the budgets, never the entry just
    written, so long-lived cache directories stop growing without bound.
    Evictions are tallied under ``evictions`` in :meth:`statistics`.
    """

    def __init__(
        self,
        cache_dir: str,
        max_entries: int = 1024,
        persist: bool = True,
        max_disk_entries: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
    ):
        super().__init__(max_entries)
        self.cache_dir = cache_dir
        self.persist = persist
        self._disk = _DiskCacheLayer(
            cache_dir,
            "solve",
            ".json",
            _JsonCodec,
            max_entries=max_disk_entries,
            max_bytes=max_disk_bytes,
        )
        self.disk_hits = 0
        self.disk_misses = 0
        self.load_errors = 0
        self.writes = 0
        self.write_errors = 0
        self.evictions = 0

    # -- SolveCache interface ------------------------------------------

    def get(self, key: Hashable):
        """Memory first, then disk; a disk hit is promoted into memory."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        # the disk probe runs outside the lock (file I/O must not serialize
        # concurrent readers or leak a held lock across fork)
        value = self._load(key) if self.persist else None
        with self._lock:
            if value is not None:
                self.hits += 1
                self.disk_hits += 1
                super().put(key, value)  # RLock: reentrant
                return value
            self.misses += 1
            if self.persist:
                self.disk_misses += 1
            return None

    def put(self, key: Hashable, value) -> None:
        """Insert into memory and write through to disk (best effort)."""
        super().put(key, value)
        if self.persist:
            self._dump(key, value)

    # -- disk layer ----------------------------------------------------

    def _load(self, key: Hashable):
        from repro.spack.concretize.concretizer import (
            ConcretizationResult,
            UnsatOutcome,
        )

        status, payload = self._disk.load(cache_key_token(key))
        if status == "error":
            with self._lock:
                self.load_errors += 1
            return None
        if status != "hit":
            return None
        try:
            if isinstance(payload, dict) and payload.get("unsat"):
                return UnsatOutcome.from_dict(payload)
            return ConcretizationResult.from_dict(payload)
        except Exception:
            with self._lock:
                self.load_errors += 1
            return None

    def _dump(self, key: Hashable, value) -> None:
        try:
            payload = value.to_dict()
        except Exception:
            self.write_errors += 1
            return
        ok, evicted = self._disk.store(cache_key_token(key), payload)
        with self._lock:
            if ok:
                self.writes += 1
                self.evictions += evicted
            else:
                self.write_errors += 1

    # -- introspection -------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        stats = super().statistics()
        stats.update(
            {
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "load_errors": self.load_errors,
                "writes": self.writes,
                "write_errors": self.write_errors,
                "evictions": self.evictions,
            }
        )
        return stats

    def __repr__(self):
        return (
            f"<PersistentSolveCache {len(self)} entries at {self.cache_dir!r}, "
            f"{self.hits} hits ({self.disk_hits} disk) / {self.misses} misses>"
        )


class PersistentGroundCache:
    """An on-disk cache of grounded base programs (pickle, trusted-local).

    Sessions use it to persist the expensive artifact behind
    :class:`~repro.asp.control.PreparedProgram`: the shared spec-independent
    grounding that every solve forks.  Keys embed the session content hash
    (repository + platform + compilers + solver preset + logic program), the
    store token, and the possible-package family, so any input change makes a
    new key and old entries simply stop being read.

    Values are arbitrary picklable objects; files live under
    ``<cache_dir>/ground/<sha256(key)>.pkl`` with the same version field,
    atomic-write, and corruption-tolerance rules as
    :class:`PersistentSolveCache`.  Pickle is used because ground programs
    are large graphs of interned atoms — treat the cache directory as
    trusted local state (it is written and read only by this machine's own
    sessions), not as an interchange format.

    With ``max_entries`` / ``max_bytes`` set, every write prunes the ground
    store back under the budgets in least-recently-used order (never the
    entry just written); evictions are tallied in :meth:`statistics`.
    """

    def __init__(
        self,
        cache_dir: str,
        persist: bool = True,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.cache_dir = cache_dir
        self.persist = persist
        self._disk = _DiskCacheLayer(
            cache_dir,
            "ground",
            ".pkl",
            _PickleCodec,
            max_entries=max_entries,
            max_bytes=max_bytes,
        )
        self.hits = 0
        self.misses = 0
        self.load_errors = 0
        self.writes = 0
        self.write_errors = 0
        self.evictions = 0
        # counters only (the disk layer itself is concurrency-safe through
        # atomic writes); memory-only critical sections, like SolveCache
        self._lock = threading.RLock()

    def get(self, key: Hashable):
        """The cached object for ``key``, or None (on any miss or error)."""
        if not self.persist:
            return None
        status, payload = self._disk.load(cache_key_token(key))
        with self._lock:
            if status == "hit":
                self.hits += 1
                return payload
            if status == "error":
                self.load_errors += 1
            self.misses += 1
            return None

    def put(self, key: Hashable, value) -> None:
        """Persist ``value`` under ``key`` (best effort; never raises)."""
        if not self.persist:
            return
        ok, evicted = self._disk.store(cache_key_token(key), value)
        with self._lock:
            if ok:
                self.writes += 1
                self.evictions += evicted
            else:
                self.write_errors += 1

    def statistics(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "load_errors": self.load_errors,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "evictions": self.evictions,
        }

    def __repr__(self):
        return (
            f"<PersistentGroundCache at {self.cache_dir!r}, "
            f"{self.hits} hits / {self.misses} misses>"
        )


class SnapshotStore:
    """On-disk, mmap-able ground snapshots beside the pickle ground cache.

    Where :class:`PersistentGroundCache` pickles whole prepared-program
    object graphs, this store writes the flat binary form produced by
    :func:`repro.asp.snapshot.snapshot_bytes` under
    ``<cache_dir>/snapshot/<sha256(token)>.snap`` — one file per base, safe
    for any number of concurrent readers because attaching maps it
    read-only.  :meth:`load` returns an *attached*
    :class:`~repro.asp.snapshot.GroundSnapshot` handle (O(1): header
    validation only); the caller materializes it lazily.

    The envelope invariants match the other persistent layers: the key
    token (which embeds :data:`CACHE_FORMAT_VERSION`) is echoed inside the
    file and checked on attach, writes are atomic, every write prunes
    least-recently-used entries beyond ``max_entries`` / ``max_bytes``
    (never the file just written), and any damaged, truncated,
    version-skewed, or foreign file degrades to a miss — tallied under
    ``load_errors`` when the file was actually corrupt.
    """

    def __init__(
        self,
        cache_dir: str,
        persist: bool = True,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.cache_dir = cache_dir
        self.persist = persist
        # no codec: the snapshot module owns the byte layout; this layer
        # reuses only the path mapping and LRU pruning machinery
        self._disk = _DiskCacheLayer(
            cache_dir,
            "snapshot",
            ".snap",
            None,
            max_entries=max_entries,
            max_bytes=max_bytes,
        )
        self.attaches = 0
        self.misses = 0
        self.load_errors = 0
        self.writes = 0
        self.write_errors = 0
        self.evictions = 0
        self._lock = threading.RLock()

    def _token(self, key: Hashable) -> str:
        # the format version is part of the token (not just the envelope):
        # a version bump changes the filename, so skewed readers see a
        # plain miss without even opening old files
        return f"v{CACHE_FORMAT_VERSION}:" + cache_key_token(key)

    def path_for(self, key: Hashable) -> str:
        return self._disk.path_for(self._token(key))

    def load(self, key: Hashable):
        """Attach the snapshot for ``key`` read-only, or None on any miss.

        The returned :class:`~repro.asp.snapshot.GroundSnapshot` has only
        had its header validated; corruption in the payload surfaces when
        the caller materializes it (and must be treated as a cold ground —
        sessions do, via :meth:`note_load_error`).
        """
        if not self.persist:
            return None
        from repro.asp.snapshot import GroundSnapshot, SnapshotError

        token = self._token(key)
        path = self._disk.path_for(token)
        try:
            snapshot = GroundSnapshot.attach(path, expected_key=token)
        except SnapshotError as exc:
            with self._lock:
                if exc.kind != "miss":
                    self.load_errors += 1
                self.misses += 1
            return None
        with self._lock:
            self.attaches += 1
        self._disk._touch(path)
        return snapshot

    def has_valid(self, key: Hashable) -> bool:
        """Whether a validated snapshot exists for ``key`` (a silent attach
        probe: no counters move, so write-through existence checks do not
        skew the attach/miss statistics that ``/v1/stats`` reports)."""
        if not self.persist:
            return False
        from repro.asp.snapshot import GroundSnapshot, SnapshotError

        token = self._token(key)
        try:
            snapshot = GroundSnapshot.attach(
                self._disk.path_for(token), expected_key=token
            )
        except SnapshotError:
            return False
        snapshot.close()
        return True

    def note_load_error(self, key: Hashable = None) -> None:
        """Record a snapshot that attached but failed to materialize
        (payload corruption found during the lazy decode).  When the key is
        given, the damaged file is removed so the caller's write-through —
        which probes :meth:`has_valid` and would otherwise be fooled by the
        file's intact *header* — rewrites it."""
        with self._lock:
            self.load_errors += 1
            self.attaches -= 1
            self.misses += 1
        if key is not None:
            try:
                os.unlink(self._disk.path_for(self._token(key)))
            except OSError:
                pass

    def put(self, key: Hashable, prepared) -> bool:
        """Encode and persist ``prepared`` under ``key`` (best effort)."""
        if not self.persist:
            return False
        from repro.asp.snapshot import SnapshotError, snapshot_bytes

        token = self._token(key)
        try:
            payload = snapshot_bytes(prepared, key=token)
        except SnapshotError:
            # not snapshot-capable (naive grounder, exotic state): not an
            # I/O failure, so it does not count against write_errors
            return False
        try:
            path = self._disk.path_for(token)
            _atomic_write_bytes(path, payload)
        except Exception:
            with self._lock:
                self.write_errors += 1
            return False
        evicted = self._disk._prune(keep=path)
        with self._lock:
            self.writes += 1
            self.evictions += evicted
        return True

    def statistics(self) -> Dict[str, int]:
        return {
            "attaches": self.attaches,
            "misses": self.misses,
            "load_errors": self.load_errors,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "evictions": self.evictions,
        }

    def __repr__(self):
        return (
            f"<SnapshotStore at {self.cache_dir!r}, "
            f"{self.attaches} attaches / {self.misses} misses>"
        )
