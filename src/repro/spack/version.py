"""Version semantics: versions, ranges, and lists of ranges.

Spack's version syntax (Table I):

* ``@1.10.2``      — a single version.  As a *constraint* it matches any
  version that equals it or extends it (``1.10.2.1`` satisfies ``1.10.2``),
  mirroring Spack's prefix semantics.
* ``@1.0.7:``      — version 1.0.7 or higher (open upper bound).
* ``@:1.2``        — up to version 1.2 (open lower bound).
* ``@1.2:1.4``     — an inclusive range.
* ``@1.2,2.0:``    — a union (comma-separated list of ranges).

Versions compare component-wise; numeric components compare numerically and
alphanumeric components lexicographically (numbers sort before letters, so
``1.2 < 1.2a``... actually in Spack letters denote pre/post releases — here we
keep the simple rule "shorter prefix is smaller when equal so far").
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.spack.errors import VersionError

_SEGMENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")
_VALID_VERSION_RE = re.compile(r"^[A-Za-z0-9_.\-]+$")


@total_ordering
class Version:
    """A single software version such as ``1.10.2`` or ``2021.4.0``."""

    __slots__ = ("string", "components")

    def __init__(self, string: Union[str, int, float, "Version"]):
        if isinstance(string, Version):
            string = string.string
        string = str(string)
        if not string or not _VALID_VERSION_RE.match(string):
            raise VersionError(f"invalid version string: {string!r}")
        self.string = string
        self.components: Tuple = tuple(
            int(part) if part.isdigit() else part
            for part in _SEGMENT_RE.findall(string)
        )
        if not self.components:
            raise VersionError(f"version has no components: {string!r}")

    # -- ordering -------------------------------------------------------------

    @staticmethod
    def _component_key(component) -> Tuple[int, int, str]:
        if isinstance(component, int):
            return (1, component, "")
        return (0, 0, component)  # letters sort before numbers (pre-releases)

    def _key(self) -> Tuple:
        return tuple(self._component_key(c) for c in self.components)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self) -> int:
        return hash(self.components)

    # -- semantics ----------------------------------------------------------------

    def is_prefix_of(self, other: "Version") -> bool:
        """True when ``other`` extends this version (1.10 is a prefix of 1.10.2)."""
        return other.components[: len(self.components)] == self.components

    def satisfies(self, constraint: "VersionConstraint") -> bool:
        """True when this version lies within ``constraint``."""
        return constraint_includes(constraint, self)

    def up_to(self, index: int) -> "Version":
        """The version truncated to ``index`` components (``Version('1.2.3').up_to(2)`` is 1.2)."""
        parts = self.string.replace("-", ".").split(".")
        return Version(".".join(parts[:index]))

    def __str__(self) -> str:
        return self.string

    def __repr__(self) -> str:
        return f"Version('{self.string}')"


@total_ordering
class VersionRange:
    """An inclusive version range with optionally open ends (``1.2:1.4``)."""

    __slots__ = ("low", "high")

    def __init__(self, low: Optional[Version], high: Optional[Version]):
        self.low = Version(low) if low is not None and not isinstance(low, Version) else low
        self.high = Version(high) if high is not None and not isinstance(high, Version) else high
        if self.low is not None and self.high is not None and self.high < self.low:
            raise VersionError(f"empty version range: {self}")

    def includes(self, version: Version) -> bool:
        if self.low is not None:
            # the lower bound is inclusive, and a prefix-extension of the
            # bound (1.0.7.1 for bound 1.0.7) is above it
            if version < self.low and not self.low.is_prefix_of(version):
                return False
        if self.high is not None:
            # the upper bound is inclusive *including* prefix extensions:
            # 1.4.9 satisfies ":1.4" (Spack semantics)
            if version > self.high and not self.high.is_prefix_of(version):
                return False
        return True

    def intersects(self, other: "VersionRange") -> bool:
        lows = [r for r in (self.low, other.low) if r is not None]
        highs = [r for r in (self.high, other.high) if r is not None]
        low = max(lows) if lows else None
        high = min(highs) if highs else None
        if low is None or high is None:
            return True
        return low <= high or low.is_prefix_of(high) or high.is_prefix_of(low)

    def _key(self):
        low_key = self.low._key() if self.low is not None else ()
        high_key = self.high._key() if self.high is not None else ((2, 0, ""),)
        return (low_key, high_key)

    def __eq__(self, other):
        if not isinstance(other, VersionRange):
            return NotImplemented
        return (self.low, self.high) == (other.low, other.high)

    def __lt__(self, other):
        if not isinstance(other, VersionRange):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self):
        return hash((self.low, self.high))

    def __str__(self):
        low = str(self.low) if self.low is not None else ""
        high = str(self.high) if self.high is not None else ""
        return f"{low}:{high}"

    def __repr__(self):
        return f"VersionRange('{self}')"


VersionConstraint = Union[Version, VersionRange, "VersionList"]


def constraint_includes(constraint: VersionConstraint, version: Version) -> bool:
    """Does ``version`` satisfy ``constraint``?

    A plain :class:`Version` used as a constraint matches itself and any
    version it is a prefix of (Spack's ``@1.10`` semantics).
    """
    if isinstance(constraint, Version):
        return version == constraint or constraint.is_prefix_of(version)
    if isinstance(constraint, VersionRange):
        return constraint.includes(version)
    if isinstance(constraint, VersionList):
        return constraint.includes(version)
    raise TypeError(f"not a version constraint: {constraint!r}")


class VersionList:
    """A union of versions and ranges, e.g. ``1.2,2.0:2.4``.

    An empty :class:`VersionList` places no constraint ("any version").
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Iterable[Union[Version, VersionRange, str]] = ()):
        parsed: List[Union[Version, VersionRange]] = []
        for constraint in constraints:
            if isinstance(constraint, (Version, VersionRange)):
                parsed.append(constraint)
            else:
                parsed.append(parse_single_constraint(str(constraint)))
        self.constraints: Tuple[Union[Version, VersionRange], ...] = tuple(parsed)

    # -- classification -----------------------------------------------------------

    @property
    def is_any(self) -> bool:
        return not self.constraints

    @property
    def concrete(self) -> Optional[Version]:
        """The single exact version, if this list pins one."""
        if len(self.constraints) == 1 and isinstance(self.constraints[0], Version):
            return self.constraints[0]
        return None

    # -- semantics ----------------------------------------------------------------

    def includes(self, version: Version) -> bool:
        if not self.constraints:
            return True
        return any(constraint_includes(c, version) for c in self.constraints)

    def satisfies(self, other: "VersionList") -> bool:
        """Rough subset check used by abstract-spec satisfaction.

        A concrete version list satisfies ``other`` iff its version is
        included; for non-concrete lists we fall back to an intersection
        check (sound for the way the original concretizer uses it).
        """
        if other.is_any:
            return True
        concrete = self.concrete
        if concrete is not None:
            return other.includes(concrete)
        return self.intersects(other)

    def intersects(self, other: "VersionList") -> bool:
        if self.is_any or other.is_any:
            return True
        for mine in self.constraints:
            for theirs in other.constraints:
                if _constraints_intersect(mine, theirs):
                    return True
        return False

    def constrain(self, other: "VersionList") -> "VersionList":
        """The conjunction of two constraints (kept as a concatenated list)."""
        if self.is_any:
            return VersionList(other.constraints)
        if other.is_any:
            return VersionList(self.constraints)
        if not self.intersects(other):
            raise VersionError(f"inconsistent version constraints: {self} and {other}")
        merged = list(self.constraints)
        for constraint in other.constraints:
            if constraint not in merged:
                merged.append(constraint)
        return VersionList(merged)

    def copy(self) -> "VersionList":
        return VersionList(self.constraints)

    # -- misc ----------------------------------------------------------------------

    def __bool__(self):
        return bool(self.constraints)

    def __eq__(self, other):
        if not isinstance(other, VersionList):
            return NotImplemented
        return set(map(str, self.constraints)) == set(map(str, other.constraints))

    def __hash__(self):
        return hash(frozenset(map(str, self.constraints)))

    def __iter__(self):
        return iter(self.constraints)

    def __str__(self):
        return ",".join(str(c) for c in self.constraints)

    def __repr__(self):
        return f"VersionList('{self}')"


def _constraints_intersect(a, b) -> bool:
    if isinstance(a, Version) and isinstance(b, Version):
        return a == b or a.is_prefix_of(b) or b.is_prefix_of(a)
    if isinstance(a, Version):
        return constraint_includes(b, a)
    if isinstance(b, Version):
        return constraint_includes(a, b)
    return a.intersects(b)


def parse_single_constraint(text: str) -> Union[Version, VersionRange]:
    """Parse one constraint item: ``1.2``, ``1.2:``, ``:1.4``, or ``1.2:1.4``."""
    text = text.strip()
    if not text:
        raise VersionError("empty version constraint")
    if ":" in text:
        low_text, _, high_text = text.partition(":")
        low = Version(low_text) if low_text else None
        high = Version(high_text) if high_text else None
        return VersionRange(low, high)
    return Version(text)


def parse_version_constraint(text: str) -> VersionList:
    """Parse a comma-separated union of version constraints."""
    text = text.strip()
    if not text:
        return VersionList()
    return VersionList(parse_single_constraint(part) for part in text.split(","))


def ver(text: Union[str, int, float]) -> Union[Version, VersionRange, VersionList]:
    """Spack-style convenience constructor: ``ver('1.2:1.4')`` etc."""
    text = str(text)
    if "," in text:
        return parse_version_constraint(text)
    return parse_single_constraint(text)
