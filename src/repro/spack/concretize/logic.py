"""The declarative logic program encoding Spack's software model (Section V).

This is the analogue of Spack's ``concretize.lp``: a first-order ASP program
(~300 lines of rules, integrity constraints and optimization directives) that,
together with the per-solve facts produced by
:mod:`repro.spack.concretize.encoder`, fully describes what a *valid* and
*optimal* concretization is.

Major sections (mirroring the paper):

* generalized condition handling (``condition`` / ``condition_requirement`` /
  ``imposed_constraint``) — Section V-A;
* node/dependency derivation and DAG acyclicity — Section V;
* virtual packages and provider selection — Sections III-B and VI-B.3;
* version / variant / compiler / OS / target choices and compatibility
  constraints — Section V;
* reuse of installed packages via hash selection — Section VI;
* the optimization criteria of Table II, split into the build / number of
  builds / reuse buckets of Figure 5.
"""

LOGIC_PROGRAM = r"""
% =============================================================================
% Roots and nodes
% =============================================================================

attr("node", P) :- root(P).
attr("root", P) :- root(P).
node(P) :- attr("node", P).

% Every non-root node must be depended upon by something: nodes cannot float
% free of the DAG.  Combined with acyclicity this means every node is
% reachable from a root.
node_has_parent(P) :- depends_on(Parent, P), node(Parent).
:- node(P), not attr("root", P), not node_has_parent(P).

% =============================================================================
% Generalized condition handling (Section V-A)
% =============================================================================

condition_holds(ID) :-
    condition(ID);
    attr(N, A1)         : condition_requirement(ID, N, A1);
    attr(N, A1, A2)     : condition_requirement(ID, N, A1, A2);
    attr(N, A1, A2, A3) : condition_requirement(ID, N, A1, A2, A3).

impose(ID) :- condition_holds(ID).

attr(N, A1)         :- impose(ID), imposed_constraint(ID, N, A1).
attr(N, A1, A2)     :- impose(ID), imposed_constraint(ID, N, A1, A2).
attr(N, A1, A2, A3) :- impose(ID), imposed_constraint(ID, N, A1, A2, A3).

% =============================================================================
% Dependencies
% =============================================================================

% A dependency condition that holds creates an edge to a real package ...
depends_on(P, D) :-
    dependency_condition(ID, P, D), condition_holds(ID), not virtual(D).

% ... or requires a virtual that must be provided by some package.
virtual_node(V) :-
    dependency_condition(ID, P, V), condition_holds(ID), virtual(V), node(P).

% Exactly one provider is chosen for every virtual in the graph.
1 { provider(Provider, V) : possible_provider(V, Provider, W) } 1 :- virtual_node(V).

% The chosen provider becomes the dependency of everything that needed the virtual.
depends_on(P, Provider) :-
    dependency_condition(ID, P, V), condition_holds(ID), virtual(V),
    provider(Provider, V).

% A chosen provider must satisfy at least one of its provides() conditions.
provider_ok(Provider, V) :-
    provider_condition(ID, Provider, V), condition_holds(ID).
:- provider(Provider, V), not provider_ok(Provider, V).

% Dependency edges (also those imposed by reused installations) put the
% dependency in the graph.
depends_on(P, D) :- attr("depends_on", P, D), node(P).
attr("node", D) :- depends_on(P, D), node(P).

% Version constraints flowing through a virtual apply to its chosen provider.
attr("version_satisfies", Provider, Constraint) :-
    attr("provider_version_satisfies", V, Constraint), provider(Provider, V).

% The dependency DAG must be acyclic (Section V).
path(A, B) :- depends_on(A, B).
path(A, C) :- path(A, B), depends_on(B, C).
:- path(A, B), path(B, A).
attr("path", A, B) :- path(A, B).

% =============================================================================
% Reuse of installed packages (Section VI)
% =============================================================================

{ hash(P, Hash) : installed_hash(P, Hash) } 1 :- node(P).
chosen_hash(P) :- hash(P, Hash).
build(P) :- node(P), not chosen_hash(P).

% Imposing a hash (e.g. because a reused parent was built against it) selects it.
hash(P, Hash) :- attr("hash", P, Hash), node(P), installed_hash(P, Hash).

% All metadata of a chosen installation is imposed on the node.
impose(Hash) :- hash(P, Hash).

build_priority(P, 200) :- build(P), node(P).
build_priority(P, 0)   :- not build(P), node(P).

% =============================================================================
% Versions
% =============================================================================

% Built nodes pick exactly one declared version; reused nodes get theirs from
% the imposed constraints of their hash.
1 { attr("version", P, V) : version_declared(P, V, W) } 1 :- node(P), build(P).

% Every node ends up with exactly one version.
node_has_version(P) :- attr("version", P, V).
:- node(P), not node_has_version(P).
:- attr("version", P, V1), attr("version", P, V2), V1 < V2.

% A version constraint is satisfied by the chosen version ...
attr("version_satisfies", P, Constraint) :-
    attr("version", P, V), version_possible(P, Constraint, V).

% ... and an *imposed* version constraint rules out versions outside it.
:- attr("version_satisfies", P, Constraint), attr("version", P, V),
   not version_possible(P, Constraint, V).

version_weight(P, W) :- attr("version", P, V), version_declared(P, V, W), node(P).
deprecated(P) :- attr("version", P, V), version_deprecated(P, V), node(P).

% =============================================================================
% Variants
% =============================================================================

% Built nodes choose a value for every one of their variants.
1 { attr("variant_value", P, Variant, Value) : variant_possible_value(P, Variant, Value) } 1 :-
    node(P), build(P), variant(P, Variant), variant_single(P, Variant).

1 { attr("variant_value", P, Variant, Value) : variant_possible_value(P, Variant, Value) } :-
    node(P), build(P), variant(P, Variant), variant_multi(P, Variant).

% Single-valued variants can hold only one value, however it was derived.
:- attr("variant_value", P, Variant, V1), attr("variant_value", P, Variant, V2),
   variant_single(P, Variant), V1 < V2.

% A value must be allowed by the package definition (only checked for values
% the package actually declares a domain for).
:- attr("variant_value", P, Variant, Value), variant(P, Variant), build(P),
   not variant_possible_value(P, Variant, Value).

variant_not_default(P, Variant) :-
    attr("variant_value", P, Variant, Value),
    variant_default(P, Variant, Default),
    variant(P, Variant), node(P), Value != Default.

% "Unused default variant value": the default value of a multi-valued variant
% is not among the chosen values (Table II criteria 5 and 12).
variant_default_used(P, Variant) :-
    attr("variant_value", P, Variant, Value), variant_default(P, Variant, Value).
unused_default(P, Variant) :-
    variant_multi(P, Variant), variant_default(P, Variant, Default),
    node(P), build(P), not variant_default_used(P, Variant).

% =============================================================================
% Compilers
% =============================================================================

1 { node_compiler(P, C, V) : compiler(C, V) } 1 :- node(P), build(P).

attr("node_compiler", P, C) :- node_compiler(P, C, V).
attr("node_compiler_version", P, C, V) :- node_compiler(P, C, V).

% Imposed compiler constraints must agree with the node's compiler.
:- attr("node_compiler", P, C1), attr("node_compiler", P, C2), C1 < C2.
:- attr("node_compiler_version", P, C, V1), attr("node_compiler_version", P, C, V2), V1 < V2.

% A compiler-version constraint is satisfied by the chosen compiler version
% (used both by conditions, e.g. conflicts("%gcc@:8"), and by impositions).
attr("node_compiler_version_satisfies", P, C, Constraint) :-
    attr("node_compiler_version", P, C, V), compiler_version_possible(C, Constraint, V).
:- attr("node_compiler_version_satisfies", P, C, Constraint),
   attr("node_compiler_version", P, C, V),
   not compiler_version_possible(C, Constraint, V).
:- attr("node_compiler_version_satisfies", P, C1, Constraint),
   attr("node_compiler", P, C2), C1 != C2.

compiler_weight(P, W) :-
    node_compiler(P, C, V), compiler_weight(C, V, W).

compiler_mismatch(P, D) :-
    depends_on(P, D),
    attr("node_compiler", P, C1), attr("node_compiler", D, C2), C1 != C2.
compiler_mismatch(P, D) :-
    depends_on(P, D),
    attr("node_compiler_version", P, C, V1), attr("node_compiler_version", D, C, V2),
    V1 != V2.

% =============================================================================
% Operating system
% =============================================================================

1 { attr("node_os", P, O) : os(O) } 1 :- node(P), build(P).
:- attr("node_os", P, O1), attr("node_os", P, O2), O1 < O2.

node_os_weight(P, W) :- attr("node_os", P, O), os_weight(O, W), node(P).
os_mismatch(P, D) :-
    depends_on(P, D), attr("node_os", P, O1), attr("node_os", D, O2), O1 != O2.

% =============================================================================
% Targets (microarchitectures)
% =============================================================================

1 { attr("node_target", P, T) : target(T) } 1 :- node(P), build(P).
:- attr("node_target", P, T1), attr("node_target", P, T2), T1 < T2.

% The chosen compiler must be able to generate code for the chosen target
% (e.g. gcc 4.8.3 cannot target skylake) -- only for things we build.
:- attr("node_target", P, T), node_compiler(P, C, V), build(P),
   not compiler_supports_target(C, V, T).

attr("node_target_family", P, Family) :-
    attr("node_target", P, T), target_family(T, Family).
:- attr("node_target_family", P, F1), attr("node_target", P, T), target_family(T, F2), F1 != F2.

node_target_weight(P, W) :- attr("node_target", P, T), target_weight(T, W), node(P).
target_mismatch(P, D) :-
    depends_on(P, D), attr("node_target", P, T1), attr("node_target", D, T2), T1 != T2.

% =============================================================================
% Conflicts (Section VI-B.2): integrity constraints, not post-hoc validation
% =============================================================================

:- conflict(ID, P), condition_holds(ID), node(P), build(P).

% =============================================================================
% Optimization (Table II + Figure 5 reuse buckets)
% =============================================================================

% The total number of builds sits between the two buckets.
#minimize { 1@100,P : build(P) }.

% 1. Deprecated versions used.
#minimize { 1@15+Priority,P : deprecated(P), build_priority(P, Priority) }.

% 2. Version oldness (roots).
#minimize { W@14+Priority,P : version_weight(P, W), attr("root", P), build_priority(P, Priority) }.

% 3. Non-default variant values (roots).
#minimize { 1@13+Priority,P,Variant : variant_not_default(P, Variant), attr("root", P), build_priority(P, Priority) }.

% 4. Non-preferred providers (roots).
#minimize { W@12+Priority,Provider,V : provider_weight_root(Provider, V, W), build_priority(Provider, Priority) }.

% 5. Unused default variant values (roots).
#minimize { 1@11+Priority,P,Variant : unused_default(P, Variant), attr("root", P), build_priority(P, Priority) }.

% 6. Non-default variant values (non-roots).
#minimize { 1@10+Priority,P,Variant : variant_not_default(P, Variant), not attr("root", P), build_priority(P, Priority) }.

% 7. Non-preferred providers (non-roots).
#minimize { W@9+Priority,Provider,V : provider_weight_nonroot(Provider, V, W), build_priority(Provider, Priority) }.

% 8. Compiler mismatches.
#minimize { 1@8+Priority,P,D : compiler_mismatch(P, D), build_priority(D, Priority) }.

% 9. OS mismatches.
#minimize { 1@7+Priority,P,D : os_mismatch(P, D), build_priority(D, Priority) }.

% 10. Non-preferred OS's.
#minimize { W@6+Priority,P : node_os_weight(P, W), build_priority(P, Priority) }.

% 11. Version oldness (non-roots).
#minimize { W@5+Priority,P : version_weight(P, W), not attr("root", P), build_priority(P, Priority) }.

% 12. Unused default variant values (non-roots).
#minimize { 1@4+Priority,P,Variant : unused_default(P, Variant), not attr("root", P), build_priority(P, Priority) }.

% 13. Non-preferred compilers.
#minimize { W@3+Priority,P : compiler_weight(P, W), build_priority(P, Priority) }.

% 14. Target mismatches.
#minimize { 1@2+Priority,P,D : target_mismatch(P, D), build_priority(D, Priority) }.

% 15. Non-preferred targets.
#minimize { W@1+Priority,P : node_target_weight(P, W), build_priority(P, Priority) }.

% Provider preference weights, split by whether a root requested the virtual.
provider_weight_root(Provider, V, W) :-
    provider(Provider, V), possible_provider(V, Provider, W),
    depends_on(R, Provider), attr("root", R).
provider_weight_nonroot(Provider, V, W) :-
    provider(Provider, V), possible_provider(V, Provider, W),
    depends_on(D, Provider), not attr("root", D), node(D).
"""


def logic_program() -> str:
    """The logic program text (kept behind a function for API symmetry)."""
    return LOGIC_PROGRAM


def logic_program_size() -> int:
    """Number of non-empty, non-comment lines (the paper quotes ~800 for Spack)."""
    count = 0
    for line in LOGIC_PROGRAM.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            count += 1
    return count
