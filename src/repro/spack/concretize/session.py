"""Batch concretization with shared grounding and solve caching.

The paper frames concretization as one ASP solve per root spec, but its
evaluation (the Figure 6 reuse study, the Figure 7e–7g build-cache sweeps)
really solves *many related* specs — and most of the grounded program is
identical across those solves: everything derived from the package
repository, the compiler registry, the platform, and the installed-package
store.  A :class:`ConcretizationSession` exploits that:

* the fact layer is split into a **spec-independent base**
  (:meth:`~repro.spack.concretize.encoder.ProblemEncoder.encode_base`) and a
  **spec-dependent delta**
  (:meth:`~repro.spack.concretize.encoder.ProblemEncoder.encode_delta`);
* the base is parsed and grounded exactly once per content hash (a digest of
  repository + compiler registry + platform + solver/criteria preset) via
  :class:`repro.asp.control.PreparedProgram`, and memoized process-wide so
  later sessions over the same inputs skip straight to forking;
* every solve forks the base grounding and grounds only its delta facts
  (semi-naive incremental grounding, see
  :meth:`repro.asp.grounder.Grounder.ground_delta`);
* results are memoized in a :class:`repro.spack.store.SolveCache`, so
  repeated specs — the dominant case in build-cache population runs — skip
  encode/ground/solve entirely and replay the extracted DAG.

Mutating the repository (a new package version), swapping compiler
registries, or switching presets changes the content hash, which transparently
bypasses every stale cache layer.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.asp.configs import SolverConfig
from repro.asp.control import PreparedProgram
from repro.asp.stats import Timer
from repro.spack.architecture import Platform, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.concretize.concretizer import (
    ConcretizationResult,
    result_from_solve,
)
from repro.spack.concretize.criteria import (
    BUILD_PRIORITY_OFFSET,
    CRITERIA,
    NUMBER_OF_BUILDS_LEVEL,
)
from repro.spack.concretize.encoder import ProblemEncoder
from repro.spack.concretize.logic import logic_program
from repro.spack.repo import Repository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.store import SolveCache


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def _describe_package(cls) -> Tuple:
    """A stable, hashable description of one package class."""
    versions = tuple(
        (str(version), decl.deprecated, decl.preferred)
        for version, decl in sorted(cls.versions.items(), key=lambda kv: str(kv[0]))
    )
    variants = tuple(
        (name, str(decl.default), tuple(decl.values), decl.multi, str(decl.when))
        for name, decl in sorted(cls.variants.items())
    )
    dependencies = tuple(
        sorted((str(dep.spec), str(dep.when)) for dep in cls.dependencies)
    )
    conflicts = tuple(
        sorted((str(c.spec), str(c.when)) for c in cls.conflict_decls)
    )
    provided = tuple(
        sorted((str(p.virtual), str(p.when)) for p in cls.provided)
    )
    return (cls.name, versions, variants, dependencies, conflicts, provided)


def _describe_repository(repo: Repository) -> Tuple:
    packages = tuple(
        _describe_package(repo.get(name)) for name in sorted(repo.all_package_names())
    )
    preferences = tuple(
        (virtual, tuple(sorted(repo.provider_weights(virtual).items())))
        for virtual in sorted(repo.virtuals())
    )
    return (packages, preferences)


def _describe_compilers(compilers: CompilerRegistry) -> Tuple:
    return tuple(
        sorted((compiler.name, str(compiler.version)) for compiler in compilers)
    )


def _describe_platform(platform: Platform) -> Tuple:
    return (
        platform.name,
        platform.family,
        platform.default_target,
        platform.default_os,
        tuple(platform.operating_systems),
    )


def _describe_criteria() -> Tuple:
    return (
        BUILD_PRIORITY_OFFSET,
        NUMBER_OF_BUILDS_LEVEL,
        tuple((c.number, c.name, c.scope) for c in CRITERIA),
    )


def compute_content_hash(
    repo: Repository,
    platform: Platform,
    compilers: CompilerRegistry,
    config: SolverConfig,
    reuse: bool = False,
) -> str:
    """Digest of everything the shared (spec-independent) program depends on.

    Two sessions with equal content hashes may share grounded programs and
    solve-cache entries; any difference — a new package version, another
    compiler, a different solver/criteria preset — changes the hash and
    bypasses every cached artifact derived from the old inputs.  (Installed
    stores are hashed separately, per solve, since they mutate mid-session.)
    """
    description = (
        _describe_repository(repo),
        _describe_platform(platform),
        _describe_compilers(compilers),
        repr(config),
        _describe_criteria(),
        logic_program(),
        bool(reuse),
    )
    digest = hashlib.sha256(repr(description).encode("utf-8"))
    return digest.hexdigest()[:32]


def _canonical_spec(spec: Spec) -> str:
    """A canonical rendering of an abstract spec for cache keys (stable under
    variant/dependency declaration order)."""
    parts = [spec.name or ""]
    if not spec.versions.is_any:
        parts.append(f"@{spec.versions}")
    for variant in sorted(spec.variants):
        value = spec.variants[variant]
        if isinstance(value, tuple):
            value = ",".join(str(v) for v in sorted(value))
        parts.append(f" {variant}={value}")
    if spec.compiler:
        parts.append(f" %{spec.compiler}")
        if not spec.compiler_versions.is_any:
            parts.append(f"@{spec.compiler_versions}")
    if spec.os:
        parts.append(f" os={spec.os}")
    if spec.target:
        parts.append(f" target={spec.target}")
    for dep_name in sorted(spec.dependencies):
        parts.append(f" ^{_canonical_spec(spec.dependencies[dep_name])}")
    return "".join(parts)


# ---------------------------------------------------------------------------
# Shared grounded bases
# ---------------------------------------------------------------------------


class _GroundedBase:
    """One spec-independent fact layer, encoded and grounded once.

    Holds the base :class:`ProblemEncoder` (forked per solve to continue its
    condition-id sequence) and the :class:`PreparedProgram` whose grounding is
    forked per solve.
    """

    def __init__(self, session: "ConcretizationSession", abstract: Sequence[Spec]):
        self.encoder = ProblemEncoder(
            session.repo,
            platform=session.platform,
            compilers=session.compilers,
            store=session.store,
            reuse=session.reuse,
        )
        base_facts = self.encoder.encode_base(abstract)
        # Ground the base as if any possible package could be a root: the
        # `root(P)` possibility seeds let every node/version/variant rule
        # instantiate once, up front, so per-spec deltas only ground the
        # input conditions themselves.  Hinted-but-unsupported atoms are
        # forced false by completion, so solves stay exact.
        hints = [("root", name) for name in sorted(self.encoder.possible_packages)]
        self.prepared = PreparedProgram(
            logic_program(), base_facts, config=session.config, possible_hints=hints
        )

    def statistics(self) -> Dict[str, object]:
        return self.prepared.statistics()


#: Process-wide memo of grounded bases, keyed by
#: (content hash, frozenset of possible packages).
_SHARED_BASES: "OrderedDict[Tuple, _GroundedBase]" = OrderedDict()
_SHARED_BASES_LIMIT = 8


def clear_shared_bases() -> None:
    """Drop all memoized grounded bases (mainly for tests and benchmarks)."""
    _SHARED_BASES.clear()


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


@dataclass
class SessionStatistics:
    """Counters proving (or disproving) that work was shared."""

    #: how many spec-independent layers this session encoded+grounded itself
    base_groundings: int = 0
    #: how many times a memoized grounded base was reused instead
    base_cache_hits: int = 0
    #: solves that forked the base and ground only their delta facts
    delta_groundings: int = 0
    #: solves answered straight from the solve cache (no grounding at all)
    solve_cache_hits: int = 0
    solve_cache_misses: int = 0
    #: total specs concretized through this session
    specs_solved: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "base_groundings": self.base_groundings,
            "base_cache_hits": self.base_cache_hits,
            "delta_groundings": self.delta_groundings,
            "solve_cache_hits": self.solve_cache_hits,
            "solve_cache_misses": self.solve_cache_misses,
            "specs_solved": self.specs_solved,
        }


class ConcretizationSession:
    """Concretize many root specs while sharing everything shareable.

    Drop-in relationship to :class:`~repro.spack.concretize.Concretizer`:
    ``session.solve(specs)`` returns one :class:`ConcretizationResult` per
    input spec, element-wise identical to running a fresh concretizer per
    spec — just without re-lexing, re-grounding, and re-solving the shared
    portion of the problem every time.

    Parameters mirror :class:`Concretizer`, plus:

    * ``solve_cache`` — a :class:`repro.spack.store.SolveCache` to share
      across sessions (defaults to a private one);
    * ``share_ground_cache`` — set False to opt out of the process-wide
      grounded-base memo (each session then grounds its own base once).
    """

    def __init__(
        self,
        repo: Optional[Repository] = None,
        platform: Optional[Platform] = None,
        compilers: Optional[CompilerRegistry] = None,
        store=None,
        reuse: bool = False,
        config: Optional[SolverConfig] = None,
        solve_cache: Optional[SolveCache] = None,
        share_ground_cache: bool = True,
    ):
        self.repo = repo or builtin_repository()
        self.platform = platform or default_platform()
        self.compilers = compilers or CompilerRegistry()
        self.store = store
        self.reuse = reuse
        self.config = config or SolverConfig.preset("tweety")
        self.solve_cache = solve_cache if solve_cache is not None else SolveCache()
        self.share_ground_cache = share_ground_cache
        self.stats = SessionStatistics()
        self._content_hash: Optional[str] = None
        self._last_base: Optional[_GroundedBase] = None
        self._local_bases: "OrderedDict[Tuple, _GroundedBase]" = OrderedDict()

    # ------------------------------------------------------------------

    def content_hash(self) -> str:
        """Digest of (repository, platform, compilers, solver/criteria preset).

        Computed once per session — mutate those inputs through a *new*
        session.  The installed-package store is deliberately *not* part of
        this hash: it may legitimately grow mid-session (install, then
        re-solve), so its state is tracked per solve via
        :meth:`Database.content_hash` instead.
        """
        if self._content_hash is None:
            self._content_hash = compute_content_hash(
                self.repo,
                self.platform,
                self.compilers,
                self.config,
                self.reuse,
            )
        return self._content_hash

    def _store_token(self) -> Optional[str]:
        if self.reuse and self.store is not None:
            return self.store.content_hash()
        return None

    def statistics(self) -> Dict[str, object]:
        """Session counters plus the active base's grounder statistics."""
        result: Dict[str, object] = dict(self.stats.as_dict())
        result["solve_cache"] = self.solve_cache.statistics()
        if self._last_base is not None:
            result["base"] = self._last_base.statistics()
        return result

    # ------------------------------------------------------------------

    def _as_specs(self, specs: Sequence[Union[str, Spec]]) -> List[Spec]:
        parsed: List[Spec] = []
        for spec in specs:
            parsed.append(parse_spec(spec) if isinstance(spec, str) else spec.copy())
        return parsed

    def _possible_packages(self, abstract: Sequence[Spec]) -> frozenset:
        # the exact computation the encoder itself performs, so base-cache
        # keys can never diverge from what was actually encoded
        return frozenset(ProblemEncoder.possible_packages_for(self.repo, abstract))

    def _base_for(self, abstract: Sequence[Spec]) -> _GroundedBase:
        """The grounded base for one spec's reachable package set.

        Specs over the same possible-package family (the overwhelmingly
        common case in batch/build-cache runs: variants, versions, compilers
        of the same roots) share one base; each solve then runs on a program
        exactly as large as a standalone concretizer's, so sharing never
        slows the search down.
        """
        key = (self.content_hash(), self._store_token(), self._possible_packages(abstract))
        base = self._local_bases.get(key)
        if base is not None:
            self._local_bases.move_to_end(key)
            self.stats.base_cache_hits += 1
            self._last_base = base
            return base
        if self.share_ground_cache:
            base = _SHARED_BASES.get(key)
            if base is not None:
                _SHARED_BASES.move_to_end(key)
                self.stats.base_cache_hits += 1
        if base is None:
            base = _GroundedBase(self, abstract)
            self.stats.base_groundings += 1
            if self.share_ground_cache:
                _SHARED_BASES[key] = base
                while len(_SHARED_BASES) > _SHARED_BASES_LIMIT:
                    _SHARED_BASES.popitem(last=False)
        self._local_bases[key] = base
        while len(self._local_bases) > _SHARED_BASES_LIMIT:
            self._local_bases.popitem(last=False)
        self._last_base = base
        return base

    def _solve_key(self, spec: Spec) -> Tuple:
        return (self.content_hash(), self._store_token(), _canonical_spec(spec))

    # ------------------------------------------------------------------

    def solve(self, specs: Sequence[Union[str, Spec]]) -> List[ConcretizationResult]:
        """Concretize every spec (one independent solve each), sharing the
        grounded base across the batch and replaying cached solves."""
        abstract = self._as_specs(specs)
        return [self._solve_one(spec) for spec in abstract]

    def concretize(self, spec: Union[str, Spec]) -> ConcretizationResult:
        """Concretize a single abstract spec through the session caches."""
        return self.solve([spec])[0]

    # ------------------------------------------------------------------

    def _solve_one(self, spec: Spec) -> ConcretizationResult:
        self.stats.specs_solved += 1
        key = self._solve_key(spec)
        cached = self.solve_cache.get(key)
        if cached is not None:
            # cache first, base lazily: a fully-cached batch never encodes
            # or grounds anything at all
            self.stats.solve_cache_hits += 1
            return self._replay(cached)
        self.stats.solve_cache_misses += 1

        base = self._base_for([spec])
        encoder = base.encoder.fork()
        with Timer() as setup_timer:
            delta_facts = encoder.encode_delta([spec])
        control = base.prepared.fork(delta_facts, config=self.config)
        control.timer.add("setup", setup_timer.elapsed)
        self.stats.delta_groundings += 1

        result = control.solve()
        statistics: Dict[str, object] = {
            "encoding": encoder.stats.as_dict(),
            **result.statistics,
            "session": {
                "solve_cache": "miss",
                "shared_base": True,
                **base.statistics(),
            },
        }
        concretization = result_from_solve([spec], result, statistics)
        # cache a pristine copy: callers may freely mutate the returned DAG
        self.solve_cache.put(key, self._copy_result(concretization))
        return concretization

    @staticmethod
    def _copy_specs(result: ConcretizationResult) -> Tuple[List[Spec], Dict[str, Spec]]:
        specs: Dict[str, Spec] = {}
        roots: List[Spec] = []
        for root in result.roots:
            copy = root.copy()
            roots.append(copy)
            for node in copy.traverse():
                specs[node.name] = node
        for name, spec in result.specs.items():
            if name not in specs:
                specs[name] = spec.copy()
        return roots, specs

    def _copy_result(
        self,
        result: ConcretizationResult,
        statistics: Optional[Dict[str, object]] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> ConcretizationResult:
        roots, specs = self._copy_specs(result)
        return ConcretizationResult(
            roots=roots,
            specs=specs,
            costs=dict(result.costs),
            timings=dict(result.timings) if timings is None else timings,
            statistics=dict(result.statistics) if statistics is None else statistics,
            built=set(result.built),
            reused=set(result.reused),
            model=result.model,
        )

    def _replay(self, cached: ConcretizationResult) -> ConcretizationResult:
        """An independent copy of a cached result (callers may mutate specs)."""
        statistics: Dict[str, object] = dict(cached.statistics)
        statistics["session"] = {
            **(cached.statistics.get("session") or {}),
            "solve_cache": "hit",
        }
        timings = {"setup": 0.0, "load": 0.0, "ground": 0.0, "solve": 0.0, "total": 0.0}
        return self._copy_result(cached, statistics=statistics, timings=timings)
