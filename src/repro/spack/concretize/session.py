"""Batch concretization with shared grounding and solve caching.

The paper frames concretization as one ASP solve per root spec, but its
evaluation (the Figure 6 reuse study, the Figure 7e–7g build-cache sweeps)
really solves *many related* specs — and most of the grounded program is
identical across those solves: everything derived from the package
repository, the compiler registry, the platform, and the installed-package
store.  A :class:`ConcretizationSession` exploits that:

* the fact layer is split into a **spec-independent base**
  (:meth:`~repro.spack.concretize.encoder.ProblemEncoder.encode_base`) and a
  **spec-dependent delta**
  (:meth:`~repro.spack.concretize.encoder.ProblemEncoder.encode_delta`);
* the base is parsed and grounded exactly once per content hash (a digest of
  repository + compiler registry + platform + solver/criteria preset) via
  :class:`repro.asp.control.PreparedProgram`, and memoized process-wide so
  later sessions over the same inputs skip straight to forking;
* every solve forks the base grounding and grounds only its delta facts
  (semi-naive incremental grounding, see
  :meth:`repro.asp.grounder.Grounder.ground_delta`);
* results are memoized in a :class:`repro.spack.store.SolveCache`, so
  repeated specs — the dominant case in build-cache population runs — skip
  encode/ground/solve entirely and replay the extracted DAG.

Mutating the repository (a new package version), swapping compiler
registries, or switching presets changes the content hash, which transparently
bypasses every stale cache layer.

Two orthogonal extensions scale sessions beyond one process (see
``docs/ARCHITECTURE.md`` for the full data-flow picture and
``docs/CACHING.md`` for the on-disk contracts):

* **parallel solving** — ``ConcretizationSession(workers=N)`` (or the
  :class:`ParallelConcretizationSession` convenience wrapper) grounds the
  shared base once in the parent, then fans the independent per-spec
  delta-ground + solve work out to a pool of workers behind one executor
  abstraction.  The default backend forks processes, so workers inherit the
  read-only grounded base for free; a thread backend exists for platforms
  without ``fork``.  Results keep the input order and are element-wise
  identical to a sequential :meth:`ConcretizationSession.solve`;

* **persistence** — ``SessionConfig(cache_dir=...)`` swaps the
  private in-memory :class:`~repro.spack.store.SolveCache` for a
  :class:`~repro.spack.store.PersistentSolveCache` and adds a
  :class:`~repro.spack.store.PersistentGroundCache` plus a flat mmap-able
  :class:`~repro.spack.store.SnapshotStore` under ``_base_for``, so a
  second process pointed at the same directory replays a warm batch with
  zero grounding and zero solver calls — attaching the shared ground
  snapshot near-zero-copy instead of unpickling an object graph where
  possible.  All layers are keyed by the same content hashes as the
  in-memory caches, so repo/preset/store changes invalidate disk entries
  exactly like memory ones.

Every execution knob (workers, backends, cache directories and budgets,
join strategy, profiling, portfolio, snapshots) lives on one frozen
:class:`~repro.spack.concretize.config.SessionConfig` accepted by all
front-ends via ``session_config=``; the historical per-knob keyword
arguments still work and emit a :class:`DeprecationWarning` naming their
replacement.

For *serving* concretizations instead of batching them, the
:class:`~repro.spack.concretize.async_session.AsyncConcretizationSession`
front-end wraps a session in ``asyncio``: awaitable solves, an
``as_completed()`` streaming API over the same worker fan-out, bounded
concurrency, and clean cancellation — sharing this module's caches and
statistics, and element-wise identical to :meth:`ConcretizationSession.solve`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.asp.configs import SolverConfig, SolverPreset
from repro.asp.control import PreparedProgram, grounder_class
from repro.asp.portfolio import PortfolioSolver, resolve_presets
from repro.asp.snapshot import SnapshotError
from repro.asp.stats import ASPStats, Timer
from repro.spack.architecture import Platform, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.concretize.concretizer import (
    ConcretizationResult,
    UnsatOutcome,
    result_from_solve,
)
from repro.spack.concretize.config import SessionConfig, resolve_session_config
from repro.spack.concretize.explain import explain_unsat
from repro.spack.concretize.criteria import (
    BUILD_PRIORITY_OFFSET,
    CRITERIA,
    NUMBER_OF_BUILDS_LEVEL,
)
from repro.spack.concretize.encoder import EncodedLayer, ProblemEncoder
from repro.spack.concretize.logic import logic_program
from repro.spack.errors import UnsatisfiableSpecError
from repro.spack.repo import Repository, ShardedRepository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.store import (
    PersistentGroundCache,
    PersistentSolveCache,
    SnapshotStore,
    SolveCache,
)


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def _describe_compilers(compilers: CompilerRegistry) -> Tuple:
    return tuple(
        sorted((compiler.name, str(compiler.version)) for compiler in compilers)
    )


def _describe_platform(platform: Platform) -> Tuple:
    return (
        platform.name,
        platform.family,
        platform.default_target,
        platform.default_os,
        tuple(platform.operating_systems),
    )


def _describe_criteria() -> Tuple:
    return (
        BUILD_PRIORITY_OFFSET,
        NUMBER_OF_BUILDS_LEVEL,
        tuple((c.number, c.name, c.scope) for c in CRITERIA),
    )


def _context_description(
    platform: Platform,
    compilers: CompilerRegistry,
    config: SolverConfig,
    reuse: bool,
) -> Tuple:
    """Everything but the repository that the shared program depends on."""
    return (
        _describe_platform(platform),
        _describe_compilers(compilers),
        repr(config),
        _describe_criteria(),
        logic_program(),
        bool(reuse),
    )


def compute_context_token(
    platform: Platform,
    compilers: CompilerRegistry,
    config: SolverConfig,
    reuse: bool = False,
) -> str:
    """Digest of the repository-independent shared-program inputs.

    Sharded sessions key their per-shard ground layers on this token plus
    the chain of shard hashes, so a single-shard edit leaves every other
    layer's key — and its cached grounding — untouched.
    """
    description = _context_description(platform, compilers, config, reuse)
    return hashlib.sha256(repr(description).encode("utf-8")).hexdigest()[:32]


def compute_content_hash(
    repo: Repository,
    platform: Platform,
    compilers: CompilerRegistry,
    config: SolverConfig,
    reuse: bool = False,
) -> str:
    """Digest of everything the shared (spec-independent) program depends on.

    Two sessions with equal content hashes may share grounded programs and
    solve-cache entries; any difference — a new package version, another
    compiler, a different solver/criteria preset — changes the hash and
    bypasses every cached artifact derived from the old inputs.  (Installed
    stores are hashed separately, per solve, since they mutate mid-session.)

    The repository contributes through :meth:`Repository.content_hash`,
    which for a :class:`~repro.spack.repo.ShardedRepository` is the
    Merkle-style combination of its per-shard hashes — editing one shard
    re-hashes only that shard, and the layers above see exactly which shard
    moved (:meth:`~repro.spack.repo.ShardedRepository.shard_hashes`).
    """
    description = (
        repo.content_hash(),
        _context_description(platform, compilers, config, reuse),
    )
    digest = hashlib.sha256(repr(description).encode("utf-8"))
    return digest.hexdigest()[:32]


def _canonical_spec(spec: Spec) -> str:
    """A canonical rendering of an abstract spec for cache keys (stable under
    variant/dependency declaration order)."""
    parts = [spec.name or ""]
    if not spec.versions.is_any:
        parts.append(f"@{spec.versions}")
    for variant in sorted(spec.variants):
        value = spec.variants[variant]
        if isinstance(value, tuple):
            value = ",".join(str(v) for v in sorted(value))
        parts.append(f" {variant}={value}")
    if spec.compiler:
        parts.append(f" %{spec.compiler}")
        if not spec.compiler_versions.is_any:
            parts.append(f"@{spec.compiler_versions}")
    if spec.os:
        parts.append(f" os={spec.os}")
    if spec.target:
        parts.append(f" target={spec.target}")
    for dep_name in sorted(spec.dependencies):
        parts.append(f" ^{_canonical_spec(spec.dependencies[dep_name])}")
    return "".join(parts)


# ---------------------------------------------------------------------------
# Shared grounded bases
# ---------------------------------------------------------------------------


class _GroundedBase:
    """One spec-independent fact layer, encoded and grounded once.

    Holds the base :class:`ProblemEncoder` (forked per solve to continue its
    condition-id sequence) and the :class:`PreparedProgram` whose grounding is
    forked per solve.

    For a monolithic :class:`Repository` the whole base is encoded and
    grounded in one shot.  For a :class:`~repro.spack.repo.ShardedRepository`
    it is built as a *chain* of prepared programs — a context layer plus one
    layer per shard (:meth:`ProblemEncoder.encode_base_layers`), each
    ``extend``-ed incrementally onto the previous one and cached per chain
    prefix (in memory and, with a ``cache_dir``, on disk) — so a session
    over an edited shard replays every unaffected prefix and re-grounds only
    the layers from the edited shard on.  The encoder always re-runs in full
    (fact generation is cheap and deterministic); only *grounding* is
    skipped on warm prefixes.
    """

    def __init__(self, session: "ConcretizationSession", abstract: Sequence[Spec]):
        self.encoder = ProblemEncoder(
            session.repo,
            platform=session.platform,
            compilers=session.compilers,
            store=session.store,
            reuse=session.reuse,
        )
        #: layer bookkeeping (all zero on the monolithic path)
        self.layers_total = 0
        self.layers_grounded = 0
        self.layers_replayed_memory = 0
        self.layers_replayed_disk = 0
        #: True when the grounding came from an mmap-attached snapshot
        self.snapshot_attached = False
        if isinstance(session.repo, ShardedRepository):
            self._build_layered(session, abstract)
        else:
            self._build_monolithic(session, abstract)

    def _build_monolithic(self, session: "ConcretizationSession", abstract: Sequence[Spec]):
        encoder = self.encoder

        # Stream encoder -> grounder: every emitted fact is interned into
        # the ground state as soon as `_fact` produces it, so no
        # intermediate base-fact list is materialized on the hot path (the
        # encoder still records facts for provenance/explanations).  The
        # source *returns* the root-possibility hints because
        # `possible_packages` is only known once encoding ran: grounding
        # the base as if any possible package could be a root lets every
        # node/version/variant rule instantiate once, up front, so
        # per-spec deltas only ground the input conditions themselves.
        # Hinted-but-unsupported atoms are forced false by completion, so
        # solves stay exact.
        def stream_base(write):
            encoder.encode_base(abstract, sink=write)
            return [("root", name) for name in sorted(encoder.possible_packages)]

        self.prepared = PreparedProgram(
            logic_program(),
            config=session.config,
            join_strategy=session.join_strategy,
            stats=session.asp_stats,
            fact_source=stream_base,
        )

    def _build_layered(self, session: "ConcretizationSession", abstract: Sequence[Spec]):
        layers = self.encoder.encode_base_layers(abstract)
        self.layers_total = len(layers)
        keys = session._layer_keys(layers, self.encoder)

        # Longest warm prefix first (deepest key wins; a fully warm chain is
        # one lookup), then extend with the remaining layers, registering and
        # persisting every freshly grounded prefix.
        prepared: Optional[PreparedProgram] = None
        start = 0
        for index in range(len(layers) - 1, -1, -1):
            found = session._lookup_layer(keys[index])
            if found is None:
                continue
            prepared, source = found
            start = index + 1
            if source == "disk":
                self.layers_replayed_disk = start
            else:
                self.layers_replayed_memory = start
            # write-through, so warm starts find the replayed prefix on disk
            session._persist_layer(keys[index], prepared)
            break
        for index in range(start, len(layers)):
            layer = layers[index]
            if prepared is None:
                prepared = PreparedProgram(
                    logic_program(),
                    layer.facts,
                    config=session.config,
                    possible_hints=layer.hints,
                    join_strategy=session.join_strategy,
                    stats=session.asp_stats,
                )
            else:
                prepared = prepared.extend(layer.facts, possible_hints=layer.hints)
            self.layers_grounded += 1
            session._remember_layer(keys[index], prepared)
            session._persist_layer(keys[index], prepared)
        self.prepared = prepared

    @classmethod
    def from_snapshot(
        cls,
        session: "ConcretizationSession",
        abstract: Sequence[Spec],
        prepared: PreparedProgram,
    ) -> "_GroundedBase":
        """A base whose *grounding* was attached from a flat mmap snapshot.

        Only the ground state comes from disk (see
        :mod:`repro.asp.snapshot`); the encoder re-runs over the repository
        with a discarding sink to rebuild its provenance log, condition-id
        sequence, and possible-package set — fact generation is cheap and
        deterministic, the same trade the layered path makes on every warm
        replay.  No grounder runs at all, so the session's
        ``base_groundings`` counter stays at zero on this path.
        """
        base = cls.__new__(cls)
        base.encoder = ProblemEncoder(
            session.repo,
            platform=session.platform,
            compilers=session.compilers,
            store=session.store,
            reuse=session.reuse,
        )
        base.layers_total = 0
        base.layers_grounded = 0
        base.layers_replayed_memory = 0
        base.layers_replayed_disk = 0
        base.snapshot_attached = True
        base.encoder.encode_base(abstract, sink=_discard_fact)
        base.prepared = prepared
        return base

    def statistics(self) -> Dict[str, object]:
        stats = self.prepared.statistics()
        if self.layers_total:
            stats["layers"] = {
                "total": self.layers_total,
                "grounded": self.layers_grounded,
                "replayed_memory": self.layers_replayed_memory,
                "replayed_disk": self.layers_replayed_disk,
            }
        if self.snapshot_attached:
            stats["snapshot_attached"] = True
        return stats


def _discard_fact(fact) -> None:
    """Null encoder sink for snapshot-attached bases (grounding is on disk)."""


#: Process-wide memo of grounded bases, keyed by
#: (content hash, frozenset of possible packages).
_SHARED_BASES: "OrderedDict[Tuple, _GroundedBase]" = OrderedDict()
_SHARED_BASES_LIMIT = 8

#: Process-wide memo of layered base *prefixes* (sharded repositories only),
#: keyed by (context token, store token, providers digest, possible-package
#: family, chain of (layer name, shard hash) pairs).  Editing one shard
#: leaves every shorter prefix key valid, so rebuilding a base after the
#: edit replays the longest warm prefix and grounds only the layers above
#: it.  Sized for several families x ~9 layers each.
_SHARED_LAYERS: "OrderedDict[Tuple, PreparedProgram]" = OrderedDict()
_SHARED_LAYERS_LIMIT = 64


def clear_shared_bases() -> None:
    """Drop all memoized grounded bases (mainly for tests and benchmarks)."""
    _SHARED_BASES.clear()
    _SHARED_LAYERS.clear()


# ---------------------------------------------------------------------------
# Worker pools (parallel solving)
# ---------------------------------------------------------------------------

#: State readable by pool workers, keyed by a per-batch token so concurrent
#: ``solve()`` calls (two sessions, or one session driven from two user
#: threads) can never clobber each other.  Process workers are forked *after*
#: their batch's entry is registered, so they inherit it (plus the session's
#: already grounded bases) through copy-on-write memory; thread workers read
#: it directly.  Only :meth:`ConcretizationSession._run_workers` writes it.
_WORKER_BATCHES: Dict[int, Tuple] = {}
_WORKER_BATCH_IDS = iter(range(1, 2**63))


def _worker_solve(batch: int, index: int) -> "ConcretizationResult":
    """Pool entry point: solve one spec of one registered batch.

    Runs :meth:`ConcretizationSession._solve_uncached`, which only *reads*
    the session (the grounded base is forked per solve, never mutated), so
    the same function is safe on thread and on forked process workers.
    """
    entry = _WORKER_BATCHES[batch]
    session, specs = entry[0], entry[1]
    preset = entry[2] if len(entry) > 2 else None
    if preset is not None:
        return session._solve_uncached(specs[index], worker=True, preset=preset)
    return session._solve_uncached(specs[index], worker=True)


def default_worker_count() -> int:
    """The scheduler-visible CPU count (what ``workers="auto"`` resolves to)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity (macOS, Windows)
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


@dataclass
class SessionStatistics:
    """Counters proving (or disproving) that work was shared."""

    #: how many spec-independent layers this session encoded+grounded itself
    base_groundings: int = 0
    #: how many times a memoized grounded base was reused instead
    base_cache_hits: int = 0
    #: how many grounded bases were loaded from the on-disk ground cache
    base_disk_hits: int = 0
    #: disk loads (monolithic bases or shard-layer prefixes) that *attached*
    #: a flat mmap snapshot instead of unpickling an object graph
    snapshot_attaches: int = 0
    #: flat snapshots this session wrote through to disk
    snapshot_writes: int = 0
    #: sharded repositories: shard/context layers this session delta-ground
    shard_layers_grounded: int = 0
    #: sharded repositories: layers replayed from the in-memory prefix memo
    shard_layers_replayed: int = 0
    #: sharded repositories: layers replayed from the on-disk ground cache
    shard_layers_disk: int = 0
    #: solves that forked the base and ground only their delta facts
    delta_groundings: int = 0
    #: solves answered straight from the solve cache (no grounding at all)
    solve_cache_hits: int = 0
    solve_cache_misses: int = 0
    #: total specs concretized through this session
    specs_solved: int = 0
    #: solves executed on pool workers (0 in sequential sessions)
    parallel_solves: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "base_groundings": self.base_groundings,
            "base_cache_hits": self.base_cache_hits,
            "base_disk_hits": self.base_disk_hits,
            "snapshot_attaches": self.snapshot_attaches,
            "snapshot_writes": self.snapshot_writes,
            "shard_layers_grounded": self.shard_layers_grounded,
            "shard_layers_replayed": self.shard_layers_replayed,
            "shard_layers_disk": self.shard_layers_disk,
            "delta_groundings": self.delta_groundings,
            "solve_cache_hits": self.solve_cache_hits,
            "solve_cache_misses": self.solve_cache_misses,
            "specs_solved": self.specs_solved,
            "parallel_solves": self.parallel_solves,
        }


class ConcretizationSession:
    """Concretize many root specs while sharing everything shareable.

    Drop-in relationship to :class:`~repro.spack.concretize.Concretizer`:
    ``session.solve(specs)`` returns one :class:`ConcretizationResult` per
    input spec, element-wise identical to running a fresh concretizer per
    spec — just without re-lexing, re-grounding, and re-solving the shared
    portion of the problem every time.

    Execution knobs live on one frozen
    :class:`~repro.spack.concretize.config.SessionConfig` passed as
    ``session_config=`` — parallelism (``workers``, ``worker_backend``),
    persistence (``cache_dir``, ``persist_ground``, ``snapshots``,
    ``cache_max_entries`` / ``cache_max_bytes``, ``share_ground_cache``),
    and solver behaviour (``join_strategy``, ``profile``, ``portfolio``);
    see :class:`SessionConfig` for per-knob semantics.  The historical
    per-knob keyword arguments are still accepted (each maps 1:1 onto a
    config field, overrides it, and emits a :class:`DeprecationWarning`).
    Problem inputs stay explicit parameters, mirroring
    :class:`Concretizer`, plus:

    * ``solve_cache`` — a :class:`repro.spack.store.SolveCache` to share
      across sessions (defaults to a private one, or to a
      :class:`repro.spack.store.PersistentSolveCache` when
      ``session_config.cache_dir`` is given).

    With a ``cache_dir``, solved results are written through as versioned
    JSON, grounded bases as versioned pickles, and (for the indexed
    grounder) additionally as flat mmap-able ground snapshots
    (:class:`repro.spack.store.SnapshotStore`) that later *processes*
    attach near-zero-copy instead of unpickling; see ``docs/CACHING.md``.
    """

    def __init__(
        self,
        repo: Optional[Repository] = None,
        platform: Optional[Platform] = None,
        compilers: Optional[CompilerRegistry] = None,
        store=None,
        reuse: bool = False,
        config: Optional[SolverConfig] = None,
        solve_cache: Optional[SolveCache] = None,
        session_config: Optional[SessionConfig] = None,
        **legacy,
    ):
        cfg = resolve_session_config(
            session_config, legacy, "ConcretizationSession"
        )
        self.session_config = cfg
        self.repo = repo or builtin_repository()
        self.platform = platform or default_platform()
        self.compilers = compilers or CompilerRegistry()
        self.store = store
        self.reuse = reuse
        self.config = config or SolverConfig.preset("tweety")
        cache_dir = cfg.cache_dir
        self.cache_dir = cache_dir
        if solve_cache is not None:
            self.solve_cache = solve_cache
        elif cache_dir is not None:
            self.solve_cache = PersistentSolveCache(
                cache_dir,
                max_disk_entries=cfg.cache_max_entries,
                max_disk_bytes=cfg.cache_max_bytes,
            )
        else:
            self.solve_cache = SolveCache()
        persist = cache_dir is not None and cfg.persist_ground
        self.ground_cache: Optional[PersistentGroundCache] = (
            PersistentGroundCache(
                cache_dir,
                max_entries=cfg.cache_max_entries,
                max_bytes=cfg.cache_max_bytes,
            )
            if persist
            else None
        )
        self.snapshot_store: Optional[SnapshotStore] = (
            SnapshotStore(
                cache_dir,
                max_entries=cfg.cache_max_entries,
                max_bytes=cfg.cache_max_bytes,
            )
            if persist and cfg.snapshots
            else None
        )
        self.share_ground_cache = cfg.share_ground_cache
        self.workers = (
            default_worker_count() if cfg.workers == "auto" else int(cfg.workers)
        )
        self.worker_backend = cfg.worker_backend
        grounder_class(cfg.join_strategy)  # validate eagerly (raises ValueError)
        self.join_strategy = cfg.join_strategy
        self.profile = cfg.profile
        self.asp_stats: Optional[ASPStats] = (
            ASPStats(per_rule=(cfg.profile == "rules")) if cfg.profile else None
        )
        presets = resolve_presets(cfg.portfolio)
        self.portfolio: Optional[PortfolioSolver] = (
            PortfolioSolver(presets, stats=self.asp_stats) if presets else None
        )
        self.stats = SessionStatistics()
        self._content_hash: Optional[str] = None
        self._context_token: Optional[str] = None
        self._last_base: Optional[_GroundedBase] = None
        self._local_bases: "OrderedDict[Tuple, _GroundedBase]" = OrderedDict()
        # session-local memo of layered base prefixes (sharded repositories);
        # the process-wide _SHARED_LAYERS is consulted too unless
        # share_ground_cache is False
        self._local_layers: "OrderedDict[Tuple, PreparedProgram]" = OrderedDict()
        # per-in-flight-batch base-family counts: _fan_out registers each
        # batch's demand so the local base memo cannot LRU-evict a
        # pre-grounded base while any concurrent solve() still needs it
        self._base_demands: Dict[int, int] = {}
        # base keys known to have a valid disk ground-cache entry (avoids a
        # probe per solve)
        self._ground_persisted: set = set()
        # likewise for the flat snapshot layer
        self._snapshot_persisted: set = set()

    # ------------------------------------------------------------------

    def content_hash(self) -> str:
        """Digest of (repository, platform, compilers, solver/criteria preset).

        Computed once per session — mutate those inputs through a *new*
        session.  The installed-package store is deliberately *not* part of
        this hash: it may legitimately grow mid-session (install, then
        re-solve), so its state is tracked per solve via
        :meth:`Database.content_hash` instead.
        """
        if self._content_hash is None:
            self._content_hash = compute_content_hash(
                self.repo,
                self.platform,
                self.compilers,
                self.config,
                self.reuse,
            )
        return self._content_hash

    def _store_token(self) -> Optional[str]:
        if self.reuse and self.store is not None:
            return self.store.content_hash()
        return None

    def context_token(self) -> str:
        """Digest of the repository-independent shared-program inputs
        (memoized; see :func:`compute_context_token`)."""
        if self._context_token is None:
            self._context_token = compute_context_token(
                self.platform, self.compilers, self.config, self.reuse
            )
        return self._context_token

    # -- layered bases (sharded repositories) ---------------------------

    def _layer_keys(
        self, layers: Sequence[EncodedLayer], encoder: ProblemEncoder
    ) -> List[Tuple]:
        """One cache key per chain *prefix* of a layered base.

        The key of prefix ``0..i`` embeds everything its grounding depends
        on: the context token, the store token (installed versions leak into
        shard layers under reuse), the provider/preference tables (weights
        shift when any provider registers, even outside the possible set),
        the possible-package family, and the ``(layer name, shard hash)``
        chain up to ``i``.  An edit to shard *k* therefore changes exactly
        the keys of prefixes ``k..n`` — everything below stays warm.
        """
        repo: ShardedRepository = self.repo
        shard_hashes = dict(repo.shard_hashes())
        prefix = (
            "shard-layer",
            self.context_token(),
            self.join_strategy,
            self._store_token(),
            repo.providers_digest(),
            frozenset(encoder.possible_packages),
        )
        keys: List[Tuple] = []
        chain: List[Tuple[str, str]] = []
        for layer in layers:
            chain.append((layer.name, shard_hashes.get(layer.shard, "")))
            keys.append(prefix + (tuple(chain),))
        return keys

    def _lookup_layer(self, key: Tuple) -> Optional[Tuple[PreparedProgram, str]]:
        """A memoized or persisted prefix program: (program, source) or None."""
        prepared = self._local_layers.get(key)
        if prepared is not None:
            self._local_layers.move_to_end(key)
            return prepared, "memory"
        if self.share_ground_cache:
            prepared = _SHARED_LAYERS.get(key)
            if prepared is not None:
                _SHARED_LAYERS.move_to_end(key)
                self._local_layers[key] = prepared
                return prepared, "memory"
        if self.snapshot_store is not None:
            # flat snapshot first (same preference as the monolithic path);
            # an attached layer is already on disk in its preferred form, so
            # the pickle write-through is skipped for it as well
            prepared = self._materialize_snapshot(key)
            if prepared is not None:
                self._snapshot_persisted.add(key)
                self._ground_persisted.add(key)
                self._remember_layer(key, prepared)
                return prepared, "disk"
        if self.ground_cache is not None:
            loaded = self.ground_cache.get(key)
            if isinstance(loaded, PreparedProgram):  # reject foreign payloads
                self._ground_persisted.add(key)
                self._remember_layer(key, loaded)
                return loaded, "disk"
        return None

    def _remember_layer(self, key: Tuple, prepared: PreparedProgram) -> None:
        self._local_layers[key] = prepared
        while len(self._local_layers) > _SHARED_LAYERS_LIMIT:
            self._local_layers.popitem(last=False)
        if self.share_ground_cache:
            _SHARED_LAYERS[key] = prepared
            while len(_SHARED_LAYERS) > _SHARED_LAYERS_LIMIT:
                _SHARED_LAYERS.popitem(last=False)

    def _persist_layer(self, key: Tuple, prepared: PreparedProgram) -> None:
        """Write a prefix program through to disk (validated, self-healing).

        Mirrors the monolithic write-through: even a prefix replayed from a
        process-wide memo is persisted if the directory lacks a valid entry,
        so warm starts always find every prefix this session used — as a
        flat snapshot (preferred) and as a pickle.
        """
        self._persist_snapshot(key, prepared)
        if self.ground_cache is None or key in self._ground_persisted:
            return
        if not isinstance(self.ground_cache.get(key), PreparedProgram):
            self.ground_cache.put(key, prepared)
        self._ground_persisted.add(key)

    def _persist_snapshot(self, key: Tuple, prepared: PreparedProgram) -> None:
        """Write a flat snapshot through to disk (validated, self-healing)."""
        if self.snapshot_store is None or key in self._snapshot_persisted:
            return
        if not self.snapshot_store.has_valid(key):
            if self.snapshot_store.put(key, prepared):
                self.stats.snapshot_writes += 1
        self._snapshot_persisted.add(key)

    def _materialize_snapshot(self, key: Tuple) -> Optional[PreparedProgram]:
        """Attach + materialize the snapshot for ``key``, or None on any
        miss.  A snapshot that attaches but turns out corrupt during the
        lazy decode degrades to None too (tallied as a load error on the
        store) — the caller then grounds cold and the subsequent
        write-through replaces the damaged file."""
        snapshot = self.snapshot_store.load(key)
        if snapshot is None:
            return None
        try:
            prepared = snapshot.materialize(stats=self.asp_stats)
        except SnapshotError:
            self.snapshot_store.note_load_error(key)
            snapshot.close()
            return None
        self.stats.snapshot_attaches += 1
        return prepared

    def _attach_instrumentation(self, prepared: PreparedProgram) -> None:
        """Point a (possibly disk- or memo-loaded) prepared program at this
        session's profiling collector, so warm bases report here too."""
        if self.asp_stats is not None and prepared.stats is not self.asp_stats:
            prepared.stats = self.asp_stats
            prepared._base.stats = self.asp_stats

    def statistics(self) -> Dict[str, object]:
        """Session counters plus the active base's grounder statistics."""
        result: Dict[str, object] = dict(self.stats.as_dict())
        result["solve_cache"] = self.solve_cache.statistics()
        if self.snapshot_store is not None:
            result["snapshot_store"] = self.snapshot_store.statistics()
        if self._last_base is not None:
            result["base"] = self._last_base.statistics()
        result["join_strategy"] = self.join_strategy
        if self.portfolio is not None:
            result["portfolio"] = [
                preset.to_dict() for preset in self.portfolio.presets
            ]
        if self.asp_stats is not None:
            result["asp"] = self.asp_stats.as_dict()
        return result

    # ------------------------------------------------------------------

    def _as_specs(self, specs: Sequence[Union[str, Spec]]) -> List[Spec]:
        parsed: List[Spec] = []
        for spec in specs:
            parsed.append(parse_spec(spec) if isinstance(spec, str) else spec.copy())
        return parsed

    def _possible_packages(self, abstract: Sequence[Spec]) -> frozenset:
        # the exact computation the encoder itself performs, so base-cache
        # keys can never diverge from what was actually encoded
        return frozenset(ProblemEncoder.possible_packages_for(self.repo, abstract))

    def _base_for(self, abstract: Sequence[Spec]) -> _GroundedBase:
        """The grounded base for one spec's reachable package set.

        Specs over the same possible-package family (the overwhelmingly
        common case in batch/build-cache runs: variants, versions, compilers
        of the same roots) share one base; each solve then runs on a program
        exactly as large as a standalone concretizer's, so sharing never
        slows the search down.
        """
        key = self._base_key(abstract)
        sharded = isinstance(self.repo, ShardedRepository)
        base = self._local_bases.get(key)
        if base is not None:
            self._local_bases.move_to_end(key)
            self.stats.base_cache_hits += 1
            self._last_base = base
            return base
        if self.share_ground_cache:
            base = _SHARED_BASES.get(key)
            if base is not None:
                _SHARED_BASES.move_to_end(key)
                self.stats.base_cache_hits += 1
        from_snapshot = False
        if base is None and self.snapshot_store is not None and not sharded:
            # flat snapshots first: attaching is O(header) + a lazy decode,
            # cheaper than walking a pickled object graph of the same base
            base = self._attach_snapshot(key, abstract)
            if base is not None:
                from_snapshot = True
                self.stats.base_disk_hits += 1
                self._snapshot_persisted.add(key)
        probed_disk = False
        if base is None and self.ground_cache is not None and not sharded:
            probed_disk = True
            loaded = self.ground_cache.get(key)
            if isinstance(loaded, _GroundedBase):  # reject foreign payloads
                base = loaded
                self.stats.base_disk_hits += 1
                self._ground_persisted.add(key)
        if base is None:
            base = _GroundedBase(self, abstract)
            if base.layers_total:
                # layered construction (sharded repository): account at
                # layer granularity — a fully replayed chain grounds nothing
                self.stats.shard_layers_grounded += base.layers_grounded
                self.stats.shard_layers_replayed += base.layers_replayed_memory
                self.stats.shard_layers_disk += base.layers_replayed_disk
                if base.layers_grounded:
                    self.stats.base_groundings += 1
                elif base.layers_replayed_disk:
                    self.stats.base_disk_hits += 1
                else:
                    self.stats.base_cache_hits += 1
            else:
                self.stats.base_groundings += 1
        if (
            self.ground_cache is not None
            and not sharded
            and not from_snapshot
            and key not in self._ground_persisted
        ):
            # Write through even when the base came from an in-memory memo
            # (e.g. grounded by a cache_dir-less session): warm starts must
            # find every base this session used on disk.  The probe is a
            # *validated* load (not a bare existence check), so corrupted or
            # version-skewed entries get overwritten — the cache self-heals.
            # (Sharded bases persist per chain prefix instead, inside
            # _GroundedBase._build_layered; snapshot-attached bases are
            # already on disk in their preferred form.)
            if probed_disk or not isinstance(
                self.ground_cache.get(key), _GroundedBase
            ):
                self.ground_cache.put(key, base)
            self._ground_persisted.add(key)
        if not sharded:
            # Same write-through contract for the flat snapshot beside the
            # pickle: a validated attach probe, so damaged or skewed files
            # are overwritten and the layer self-heals.  (Sharded bases
            # snapshot per chain prefix inside _persist_layer.)
            self._persist_snapshot(key, base.prepared)
        if self.share_ground_cache:
            _SHARED_BASES[key] = base
            while len(_SHARED_BASES) > _SHARED_BASES_LIMIT:
                _SHARED_BASES.popitem(last=False)
        self._local_bases[key] = base
        limit = max(_SHARED_BASES_LIMIT, sum(self._base_demands.values()))
        while len(self._local_bases) > limit:
            self._local_bases.popitem(last=False)
        self._last_base = base
        return base

    def _attach_snapshot(
        self, key: Tuple, abstract: Sequence[Spec]
    ) -> Optional[_GroundedBase]:
        """A monolithic base materialized from an mmap-attached ground
        snapshot, or None on any miss (see :meth:`_materialize_snapshot`)."""
        prepared = self._materialize_snapshot(key)
        if prepared is None:
            return None
        return _GroundedBase.from_snapshot(self, abstract, prepared)

    def _base_key(self, abstract: Sequence[Spec]) -> Tuple:
        return (
            self.content_hash(),
            self.join_strategy,
            self._store_token(),
            self._possible_packages(abstract),
        )

    def _peek_base(self, key: Tuple) -> Optional[_GroundedBase]:
        """A memoized grounded base, without any cache bookkeeping.

        Pool workers use this instead of :meth:`_base_for`: it neither
        reorders the LRU dicts nor bumps statistics, so concurrent thread
        workers cannot race on shared session state, and worker-side lookups
        (whose stats would be discarded or double-counted) stay invisible.
        """
        base = self._local_bases.get(key)
        if base is None and self.share_ground_cache:
            base = _SHARED_BASES.get(key)
        return base

    def _solve_key(self, spec: Spec) -> Tuple:
        return (self.content_hash(), self._store_token(), _canonical_spec(spec))

    # ------------------------------------------------------------------

    def solve(
        self,
        specs: Sequence[Union[str, Spec]],
        preset=None,
    ) -> List[ConcretizationResult]:
        """Concretize every spec (one independent solve each), sharing the
        grounded base across the batch and replaying cached solves.

        Results keep the input order: ``solve(specs)[i]`` always answers
        ``specs[i]``.  With ``workers > 1`` the cache-missing portion of the
        batch is solved on a worker pool (see :meth:`_solve_parallel`), which
        is element-wise identical to — just faster than — the sequential
        path.

        ``preset`` pins this batch's CDCL heuristics to one validated
        :class:`~repro.asp.configs.SolverPreset` (a preset instance, name,
        or dict; see :meth:`SolverPreset.from_value`).  Extracted results
        are preset-invariant (the optimization criteria pin a unique
        optimum — property-tested), so the solve cache is shared across
        presets and an explicit preset also bypasses the portfolio race.
        """
        if preset is not None:
            preset = SolverPreset.from_value(preset)
        abstract = self._as_specs(specs)
        if self.workers > 1 and len(abstract) > 1:
            return self._solve_parallel(abstract, preset=preset)
        return [self._solve_one(spec, preset=preset) for spec in abstract]

    def concretize(
        self, spec: Union[str, Spec], preset=None
    ) -> ConcretizationResult:
        """Concretize a single abstract spec through the session caches."""
        return self.solve([spec], preset=preset)[0]

    # ------------------------------------------------------------------

    def _solve_uncached(
        self,
        spec: Spec,
        worker: bool = False,
        preset: Optional[SolverPreset] = None,
        race: Optional[bool] = None,
    ) -> ConcretizationResult:
        """One full solve, bypassing the solve cache (shared base + delta).

        This is the unit of work a pool worker executes (``worker=True``):
        the grounded base is looked up without any cache bookkeeping
        (:meth:`_peek_base`) and then only forked, never mutated, so
        concurrent calls are safe on threads and on forked processes alike —
        and worker-side lookups never skew the parent's statistics.  Cache
        lookups, cache writes, and statistics stay with the caller.
        """
        if worker:
            base = self._peek_base(self._base_key([spec]))
            if base is None:  # evicted between pre-grounding and fan-out
                base = self._base_for([spec])
        else:
            base = self._base_for([spec])
        self._attach_instrumentation(base.prepared)
        encoder = base.encoder.fork()

        # Stream the per-spec delta facts from the encoder straight into
        # the forked grounder (no intermediate list on the hot path); the
        # encoder's own fact log still accumulates for the explainer.
        setup_timer = Timer()
        delta_facts: List[Tuple] = []

        def stream_delta(write):
            with setup_timer:
                delta_facts.extend(encoder.encode_delta([spec], sink=write))

        control = base.prepared.fork(
            config=self.config, preset=preset, fact_source=stream_delta
        )
        control.timer.add("setup", setup_timer.elapsed)

        # Race the portfolio unless an explicit preset pins the heuristics
        # or this is a pool worker (never nest a race inside a pool; the
        # async fallback-thread path opts back in via ``race=True``).
        if race is None:
            race = not worker
        if self.portfolio is not None and race and preset is None:
            result = self.portfolio.solve(control)
        else:
            result = control.solve()
        statistics: Dict[str, object] = {
            "encoding": encoder.stats.as_dict(),
            **result.statistics,
            "session": {
                "solve_cache": "miss",
                "shared_base": True,
                **base.statistics(),
            },
        }

        def explainer():
            provenance = list(getattr(base.encoder, "provenance", ())) + list(
                encoder.provenance
            )
            return explain_unsat(
                list(base.encoder.facts) + list(delta_facts),
                provenance,
                self.config,
            )

        return result_from_solve([spec], result, statistics, explainer=explainer)

    def _solve_one(
        self, spec: Spec, preset: Optional[SolverPreset] = None
    ) -> ConcretizationResult:
        self.stats.specs_solved += 1
        key = self._solve_key(spec)
        cached = self.solve_cache.get(key)
        if cached is not None:
            # cache first, base lazily: a fully-cached batch never encodes
            # or grounds anything at all
            self.stats.solve_cache_hits += 1
            if isinstance(cached, UnsatOutcome):
                raise cached.to_error()
            return self._replay(cached)
        self.stats.solve_cache_misses += 1

        try:
            concretization = self._solve_uncached(spec, preset=preset)
        except UnsatisfiableSpecError as error:
            # unsat outcomes (message + minimal core) are cached under the
            # same content-hash key, so warm replays raise identically
            self.stats.delta_groundings += 1
            self.solve_cache.put(key, UnsatOutcome.from_error(error))
            raise
        self.stats.delta_groundings += 1
        # cache a pristine copy: callers may freely mutate the returned DAG
        self.solve_cache.put(key, self._copy_result(concretization))
        return concretization

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _solve_parallel(
        self, abstract: List[Spec], preset: Optional[SolverPreset] = None
    ) -> List[ConcretizationResult]:
        """Fan the batch out to a worker pool, preserving sequential semantics.

        The cache pass runs first, in the parent: hits (including duplicate
        specs within the batch, which the sequential path would also answer
        from the cache) are replayed immediately and never reach a worker.
        Every distinct remaining spec is solved exactly once.  Before the
        pool starts, the parent grounds the shared base for each distinct
        spec family, so forked workers inherit ready-made ground state and
        only ever delta-ground + solve.  Results are reassembled in input
        order, so the return value is element-wise identical to the
        sequential path's.

        Unsat parity: every unsatisfiable outcome (cache hit or fresh) is
        collected rather than raised mid-batch, satisfiable results are
        still cached, and the error belonging to the *earliest input index*
        is raised at the end — the same exception, with the same
        explanation, the sequential path would have raised first.
        """
        results: List[Optional[ConcretizationResult]] = [None] * len(abstract)
        failures: List[Tuple[int, UnsatisfiableSpecError]] = []
        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, spec in enumerate(abstract):
            self.stats.specs_solved += 1
            key = self._solve_key(spec)
            if key in pending:
                # duplicate of a spec already scheduled this batch: the
                # sequential path would replay it from the cache
                self.stats.solve_cache_hits += 1
                pending[key].append(index)
                continue
            cached = self.solve_cache.get(key)
            if cached is not None:
                self.stats.solve_cache_hits += 1
                if isinstance(cached, UnsatOutcome):
                    failures.append((index, cached.to_error()))
                    continue
                results[index] = self._replay(cached)
                continue
            self.stats.solve_cache_misses += 1
            pending[key] = [index]

        if pending:
            unique = [abstract[indices[0]] for indices in pending.values()]
            if len(unique) == 1:
                # a single miss gains nothing from a pool; solve it inline
                try:
                    solved: List[Union[ConcretizationResult, UnsatisfiableSpecError]] = [
                        self._solve_uncached(unique[0], preset=preset)
                    ]
                except UnsatisfiableSpecError as error:
                    solved = [error]
            else:
                solved = self._fan_out(unique, preset=preset)
            for (key, indices), outcome in zip(pending.items(), solved):
                self.stats.delta_groundings += 1
                if isinstance(outcome, UnsatisfiableSpecError):
                    self.solve_cache.put(key, UnsatOutcome.from_error(outcome))
                    failures.append((indices[0], outcome))
                    continue
                pristine = self._copy_result(outcome)
                self.solve_cache.put(key, pristine)
                results[indices[0]] = outcome
                for duplicate in indices[1:]:
                    results[duplicate] = self._replay(pristine)
        if failures:
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]
        return results

    def _fan_out(
        self, unique: List[Spec], preset: Optional[SolverPreset] = None
    ) -> List[ConcretizationResult]:
        """Pre-ground the needed bases, then run ``unique`` on the pool.

        Grounding happens in the parent, before workers fork, so every
        worker finds its base ready-made.  The batch's family count is
        registered in ``_base_demands`` for the duration, widening the local
        base memo, so a batch spanning more families than the steady-state
        LRU limit cannot evict a pre-grounded base before the worker that
        needs it runs — including when several ``solve()`` calls overlap on
        one session (demands are summed, and each batch removes only its
        own registration).
        """
        families = {self._base_key([spec]) for spec in unique}
        token = next(_WORKER_BATCH_IDS)
        self._base_demands[token] = len(families)
        try:
            for spec in unique:
                self._base_for([spec])
            return self._run_workers(unique, preset=preset)
        finally:
            self._base_demands.pop(token, None)

    def _resolve_backend(self) -> str:
        if self.worker_backend != "auto":
            return self.worker_backend
        if "fork" in multiprocessing.get_all_start_methods():
            return "process"
        return "thread"

    def _run_workers(
        self, specs: List[Spec], preset: Optional[SolverPreset] = None
    ) -> List[Union[ConcretizationResult, UnsatisfiableSpecError]]:
        """Solve ``specs`` (all cache misses, bases pre-grounded) on a pool.

        One executor abstraction covers both backends: ``"process"`` builds
        a fork-context :class:`~concurrent.futures.ProcessPoolExecutor`
        (workers inherit the grounded bases through copy-on-write memory and
        ship back only the ~KB-sized results), ``"thread"`` a
        :class:`~concurrent.futures.ThreadPoolExecutor`.  If the pool cannot
        be created, cannot actually start workers (fork happens lazily at
        the first submit), or dies underneath us (sandboxes without
        semaphores, fork guards, the OOM killer, ...), the batch degrades to
        in-process sequential solving rather than failing.  Only pool
        *infrastructure* failures degrade — an unsatisfiable spec is a
        per-spec *outcome*: its :class:`UnsatisfiableSpecError` (explanation
        intact, thanks to ``__reduce__``) is returned in the spec's slot so
        the caller can cache it and decide which failure to raise.
        """

        def solve_inline() -> List[Union[ConcretizationResult, UnsatisfiableSpecError]]:
            outcomes: List[Union[ConcretizationResult, UnsatisfiableSpecError]] = []
            for spec in specs:
                try:
                    outcomes.append(self._solve_uncached(spec, preset=preset))
                except UnsatisfiableSpecError as error:
                    outcomes.append(error)
            return outcomes

        workers = min(self.workers, len(specs))
        backend = self._resolve_backend()
        batch = next(_WORKER_BATCH_IDS)
        _WORKER_BATCHES[batch] = (self, list(specs), preset)
        executor = None
        try:
            try:
                if backend == "process":
                    context = multiprocessing.get_context("fork")
                    executor = ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    )
                else:
                    executor = ThreadPoolExecutor(max_workers=workers)
                futures = [
                    executor.submit(_worker_solve, batch, i)
                    for i in range(len(specs))
                ]
            except (OSError, ValueError, RuntimeError):
                # the pool never came up (no semaphores, cannot fork, cannot
                # start threads): degrade, don't fail
                return solve_inline()
            results: List[Union[ConcretizationResult, UnsatisfiableSpecError]] = []
            try:
                for future in futures:
                    try:
                        results.append(future.result())
                    except UnsatisfiableSpecError as error:
                        results.append(error)
            except BrokenProcessPool:
                # a worker process died mid-batch: degrade, don't fail
                return solve_inline()
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            _WORKER_BATCHES.pop(batch, None)
        self.stats.parallel_solves += len(results)
        for result in results:
            if isinstance(result, UnsatisfiableSpecError):
                continue
            session_stats = result.statistics.get("session")
            if isinstance(session_stats, dict):
                session_stats["parallel_backend"] = backend
        return results

    @staticmethod
    def _copy_specs(result: ConcretizationResult) -> Tuple[List[Spec], Dict[str, Spec]]:
        specs: Dict[str, Spec] = {}
        roots: List[Spec] = []
        for root in result.roots:
            copy = root.copy()
            roots.append(copy)
            for node in copy.traverse():
                specs[node.name] = node
        for name, spec in result.specs.items():
            if name not in specs:
                specs[name] = spec.copy()
        return roots, specs

    def _copy_result(
        self,
        result: ConcretizationResult,
        statistics: Optional[Dict[str, object]] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> ConcretizationResult:
        roots, specs = self._copy_specs(result)
        return ConcretizationResult(
            roots=roots,
            specs=specs,
            costs=dict(result.costs),
            timings=dict(result.timings) if timings is None else timings,
            statistics=dict(result.statistics) if statistics is None else statistics,
            built=set(result.built),
            reused=set(result.reused),
            model=result.model,
        )

    def _replay(self, cached: ConcretizationResult) -> ConcretizationResult:
        """An independent copy of a cached result (callers may mutate specs)."""
        statistics: Dict[str, object] = dict(cached.statistics)
        statistics["session"] = {
            **(cached.statistics.get("session") or {}),
            "solve_cache": "hit",
        }
        timings = {"setup": 0.0, "load": 0.0, "ground": 0.0, "solve": 0.0, "total": 0.0}
        return self._copy_result(cached, statistics=statistics, timings=timings)


class ParallelConcretizationSession(ConcretizationSession):
    """A :class:`ConcretizationSession` that solves batches in parallel.

    Pure convenience: ``ParallelConcretizationSession(...)`` is
    ``ConcretizationSession(..., session_config=SessionConfig(workers="auto"))``
    — the shared base is still grounded exactly once (in the parent), the
    solve cache still answers repeats, and results are still element-wise
    identical to a sequential session in input order.  Pass ``workers=N``
    explicitly to pin the pool size (this class's own parameter, not a
    deprecated one; it overrides ``session_config.workers``), or a
    ``session_config`` with ``worker_backend="thread"`` on platforms
    without ``fork``.
    """

    def __init__(
        self,
        *args,
        workers: Union[int, str] = "auto",
        session_config: Optional[SessionConfig] = None,
        **kwargs,
    ):
        base = session_config if session_config is not None else SessionConfig()
        super().__init__(
            *args, session_config=base.replace(workers=workers), **kwargs
        )
