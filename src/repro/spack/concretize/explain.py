"""Minimal conflict cores for unsatisfiable concretizations.

When the solve phase reports UNSAT, this module answers *why*: which
source-level constraints — ``conflicts`` directives, ``depends_on``
conditions, or the requested input specs themselves — are jointly
unsatisfiable.  The answer is a **minimal unsatisfiable subset (MUS)** of
the retractable constraints: removing any single member yields SAT.

The mechanism mirrors assumption-based unsat cores in incremental SAT
solvers, with one twist forced by the grounder: certain facts are
*simplified out* of ground rule bodies, so the original ground program
cannot be relaxed after the fact.  The explainer therefore re-grounds the
problem once, feeding every suspect constraint's activating facts (recorded
as :class:`repro.spack.errors.ConstraintProvenance` by the encoder) as
*possible hints* rather than facts — they seed rule instantiation without
being asserted — and then:

1. completion guards each suspect group's atoms behind one fresh selector
   variable (``CompletionBuilder._add_retractable_support``), so assuming a
   selector true re-asserts that constraint and leaving it free retracts it;
2. solving under the assumption "all selectors true" reproduces the original
   UNSAT, and the solver's ``failed_assumptions`` (minisat's
   ``analyzeFinal``) give an initial, not-necessarily-minimal core;
3. deletion-based shrinking re-solves with one core member relaxed at a
   time: SAT proves the member necessary, UNSAT drops it — refined by the
   new failed-assumption set.  The solver instance is reused incrementally;
   learnt clauses and loop nogoods are implied by the selector-guarded
   formula, so they stay valid across assumption subsets.

Every SAT test goes through the
:class:`~repro.asp.unfounded.StableModelEnforcer` — a supported-but-unstable
model must not count as satisfiable evidence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.completion import complete
from repro.asp.configs import SolverConfig
from repro.asp.control import parse_program_cached
from repro.asp.grounder import Grounder
from repro.asp.solver import CDCLSolver
from repro.asp.syntax import ground_atom
from repro.asp.unfounded import StableModelEnforcer
from repro.spack.concretize.logic import logic_program
from repro.spack.errors import ConstraintProvenance


def explain_unsat(
    facts: Sequence[Tuple],
    provenance: Sequence[ConstraintProvenance],
    config: Optional[SolverConfig] = None,
) -> List[ConstraintProvenance]:
    """Extract a minimal conflict core from an unsatisfiable problem.

    ``facts`` is the complete input fact list of the failing solve (base +
    delta layers for sessions, the one-shot encoding otherwise) and
    ``provenance`` the concatenated provenance of the encoders that produced
    it.  Returns the provenance entries of a MUS over the retractable
    constraint groups, ordered deterministically (by package, kind,
    directive, when) so every entry point — one-shot, session, worker pool,
    async — produces an identical explanation for the same problem.
    Returns ``[]`` when the program is satisfiable with all constraints
    active (no diagnosis to give) or unsatisfiable even with every suspect
    constraint relaxed (the cause lies outside the retractable constraints).
    """
    config = config or SolverConfig.preset("tweety")

    suspect_atoms: Dict[Tuple, int] = {}
    groups: List[ConstraintProvenance] = []
    for entry in provenance:
        claimed = [
            tuple(fact) for fact in entry.facts if tuple(fact) not in suspect_atoms
        ]
        if not claimed:
            continue
        group_index = len(groups)
        for fact in claimed:
            suspect_atoms[fact] = group_index
        groups.append(entry)
    if not groups:
        return []

    # Re-ground with the suspect facts demoted to possibility hints: they
    # seed the same rule instances, but stay out of rule-body simplification
    # so completion can guard them behind selectors.
    kept = [ground_atom(*fact) for fact in facts if tuple(fact) not in suspect_atoms]
    hints = [ground_atom(*fact) for fact in suspect_atoms]
    grounder = Grounder(parse_program_cached(logic_program()), kept, possible_hints=hints)
    program = grounder.ground()

    retractable: Dict[int, int] = {}
    for fact, group_index in suspect_atoms.items():
        atom_id = program.atoms.lookup(ground_atom(*fact))
        if atom_id is not None:
            retractable[atom_id] = group_index
    if not retractable:
        return []

    solver = CDCLSolver(
        heuristic=config.heuristic,
        default_phase=config.default_phase,
        restart_strategy=config.restart_strategy,
        restart_base=config.restart_base,
        var_decay=config.var_decay,
    )
    completed = complete(program, solver, retractable=retractable)
    enforcer = StableModelEnforcer(completed, enabled=config.enforce_stability)
    selectors = completed.selectors  # group index -> selector variable
    selector_groups = {var: group for group, var in selectors.items()}

    def solve_with(active: Set[int]) -> bool:
        return bool(enforcer.solve([selectors[g] for g in sorted(active)]))

    def failed_groups() -> Set[int]:
        found: Set[int] = set()
        for literal in solver.failed_assumptions:
            group = selector_groups.get(abs(literal))
            if group is not None:
                found.add(group)
        return found

    if solve_with(set(selectors)):
        return []  # satisfiable with everything active: nothing to explain

    core = failed_groups()
    if not core:
        return []  # unsat even with every suspect relaxed

    # deletion-based minimization: the final core is a subset of every
    # tested set, so each SAT answer for `core - {member}` certifies that
    # member as necessary for the *final* core too (monotonicity)
    for member in sorted(core):
        if member not in core:
            continue
        trial = core - {member}
        if solve_with(trial):
            continue  # removing `member` frees the program: it is necessary
        refined = failed_groups()
        if not refined:
            return []  # became unsat independent of all suspects
        core = refined

    ordered = [groups[index] for index in sorted(core)]
    ordered.sort(key=lambda p: (p.package, p.kind, p.directive, p.when))
    return ordered
