"""The original greedy, fixed-point concretizer (the baseline).

This reimplements the algorithm the paper replaces (Section III-C): a greedy
pass that fills in versions, variants, compilers, and targets node by node
*without backtracking*.  Its two known deficiencies are intentional, because
they are what the paper demonstrates:

* **Incompleteness** — decisions are made from defaults before dependencies
  are expanded, so ``hpctoolkit ^mpich`` fails with "Package hpctoolkit does
  not depend on mpich" even though a valid solution exists (Section VI-B.1).
* **No optimality guarantee** — it stops at the first conflict instead of
  exploring alternatives.

Reuse is hash-based only (Figure 4): after concretizing, a node is "reused"
only when its DAG hash exactly matches an installed spec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.spack.architecture import Platform, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.errors import ConflictError, UnsatisfiableSpecError
from repro.spack.repo import Repository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.version import VersionList


@dataclass
class OriginalResult:
    """Result of a greedy concretization."""

    root: Spec
    specs: Dict[str, Spec]
    reused: Set[str] = field(default_factory=set)
    elapsed: float = 0.0

    @property
    def spec(self) -> Spec:
        return self.root

    @property
    def number_of_builds(self) -> int:
        return len(self.specs) - len(self.reused)

    @property
    def number_reused(self) -> int:
        return len(self.reused)


class OriginalConcretizer:
    """Greedy fixed-point concretization without backtracking."""

    def __init__(
        self,
        repo: Optional[Repository] = None,
        platform: Optional[Platform] = None,
        compilers: Optional[CompilerRegistry] = None,
        store=None,
    ):
        self.repo = repo or builtin_repository()
        self.platform = platform or default_platform()
        self.compilers = compilers or CompilerRegistry()
        self.store = store

    # ------------------------------------------------------------------

    def concretize(self, spec: Union[str, Spec]) -> OriginalResult:
        start = time.perf_counter()
        abstract = parse_spec(spec) if isinstance(spec, str) else spec.copy()
        if abstract.name is None:
            raise UnsatisfiableSpecError("cannot concretize an anonymous spec")

        # Constraints the user placed on specific (transitive) dependencies.
        user_constraints: Dict[str, Spec] = {
            name: dep for name, dep in abstract.dependencies.items()
        }

        concretized: Dict[str, Spec] = {}
        root = abstract.copy(deps=False)
        self._concretize_node(root, concretized, user_constraints)

        # Every user-supplied ^dependency must have ended up in the DAG.
        for name in user_constraints:
            target = name
            if self.repo.is_virtual(name):
                providers = [p for p in self.repo.providers_for(name) if p in concretized]
                if providers:
                    continue
            if target not in concretized:
                raise UnsatisfiableSpecError(
                    f"Package {root.name} does not depend on {name}"
                )

        self._check_conflicts(concretized)

        reused = set()
        if self.store is not None:
            for name, node in concretized.items():
                if self.store.lookup(node.dag_hash()) is not None:
                    node.installed_hash = node.dag_hash()
                    reused.add(name)

        elapsed = time.perf_counter() - start
        return OriginalResult(root=root, specs=concretized, reused=reused, elapsed=elapsed)

    # ------------------------------------------------------------------

    def _concretize_node(
        self,
        node: Spec,
        concretized: Dict[str, Spec],
        user_constraints: Dict[str, Spec],
    ) -> Spec:
        """Greedily pin every parameter of ``node``, then expand dependencies."""
        name = node.name
        if name in concretized:
            # already decided: later constraints can only be *checked*, never
            # revised (this is the greedy algorithm's key weakness)
            return concretized[name]

        cls = self.repo.get(name)

        # 1. user constraints on this node (from the command line)
        if name in user_constraints:
            node.constrain(user_constraints[name])

        # 2. version: newest declared version satisfying the constraints
        version = self._choose_version(cls, node.versions)
        node.versions = VersionList([version])

        # 3. variants: defaults for everything unset
        for variant_name, decl in cls.variants.items():
            if variant_name not in node.variants:
                node.variants[variant_name] = decl.default

        # 4. compiler, OS, target
        if node.compiler is None:
            default = self.compilers.default()
            node.compiler = default.name
            node.compiler_versions = VersionList([default.version])
        elif node.compiler_versions.concrete is None:
            chosen = self.compilers.get(node.compiler)
            node.compiler_versions = VersionList([chosen.version])
        if node.os is None:
            node.os = self.platform.default_os
        if node.target is None:
            node.target = self._choose_target(node)

        node.mark_concrete()
        concretized[name] = node

        # 5. dependencies whose conditions are satisfied *now* (no backtracking)
        for dependency in cls.dependencies:
            if dependency.when is not None and not node.satisfies(dependency.when):
                continue
            dep_name = dependency.name
            dep_constraint = dependency.spec
            if self.repo.is_virtual(dep_name):
                provider = self._choose_provider(dep_name, user_constraints, concretized)
                dep_constraint = Spec(name=provider)
                dep_name = provider

            existing = concretized.get(dep_name)
            if existing is not None:
                self._check_constraint(existing, dependency.spec, dep_name)
                concretized[node.name].dependencies[dep_name] = existing
                continue

            child = Spec(name=dep_name)
            try:
                if dep_constraint.name == dep_name:
                    child.constrain(dep_constraint)
            except Exception as exc:
                raise UnsatisfiableSpecError(str(exc)) from exc
            # propagate toolchain choices downward (greedy "consistency")
            child.compiler = node.compiler
            child.compiler_versions = node.compiler_versions.copy()
            child.os = node.os
            child.target = node.target
            self._concretize_node(child, concretized, user_constraints)
            node.dependencies[dep_name] = concretized[dep_name]

        return node

    # ------------------------------------------------------------------

    def _choose_version(self, cls, constraints: VersionList):
        for version in cls.usable_versions():
            if constraints.is_any or constraints.includes(version):
                return version
        for version in cls.declared_versions():
            if constraints.is_any or constraints.includes(version):
                return version
        raise UnsatisfiableSpecError(
            f"no declared version of {cls.name} satisfies @{constraints}"
        )

    def _choose_target(self, node: Spec) -> str:
        compiler = self.compilers.get(node.compiler, str(node.compiler_versions.concrete or "") or None)
        supported = [
            t for t in self.platform.targets() if compiler.supports_target(t)
        ]
        if not supported:
            return self.platform.generic_target().name
        return max(supported, key=lambda t: t.generation).name

    def _choose_provider(
        self,
        virtual: str,
        user_constraints: Dict[str, Spec],
        concretized: Dict[str, Spec],
    ) -> str:
        providers = self.repo.providers_for(virtual)
        if not providers:
            raise UnsatisfiableSpecError(f"no providers for virtual package {virtual!r}")
        # a provider already in the DAG or requested by the user wins
        for provider in providers:
            if provider in concretized:
                return provider
        for provider in providers:
            if provider in user_constraints:
                return provider
        return providers[0]

    def _check_constraint(self, existing: Spec, constraint: Spec, name: str):
        """A new constraint on an already-concretized node can only be checked."""
        if constraint.name != name:
            return
        if not existing.satisfies(constraint):
            raise UnsatisfiableSpecError(
                f"cannot satisfy constraint {constraint} on already-concretized {existing.format()}"
            )

    def _check_conflicts(self, concretized: Dict[str, Spec]):
        for name, node in concretized.items():
            cls = self.repo.get(name)
            for conflict in cls.conflict_decls:
                if conflict.when is not None and not node.satisfies(conflict.when):
                    continue
                if node.satisfies(conflict.spec):
                    message = conflict.msg or f"{name} conflicts with {conflict.spec}"
                    raise ConflictError(message)
