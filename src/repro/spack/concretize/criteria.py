"""The optimization criteria of Table II and the reuse buckets of Figure 5.

The paper lists 15 minimization criteria, evaluated lexicographically
(criterion 1 is the most important).  With reuse enabled every criterion is
split into two buckets: one for packages that must be *built* and one for
packages *reused* from the store, with the total number of builds in between
(Figure 5):

    [build bucket: criteria 1..15]  >  [number of builds]  >  [reuse bucket: criteria 1..15]

We map criterion ``i`` onto ASP priority level ``16 - i`` for the reuse bucket
and ``200 + 16 - i`` for the build bucket, and put the number of builds at
level ``100`` — the same shape as the paper's Figure 5 (criteria at 203..201,
builds at 100, reused criteria at 3..1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: offset added to a criterion's level when the package must be built
BUILD_PRIORITY_OFFSET = 200
#: priority level of the "number of builds" objective
NUMBER_OF_BUILDS_LEVEL = 100
#: number of criteria in Table II
NUM_CRITERIA = 15


@dataclass(frozen=True)
class Criterion:
    """One row of Table II."""

    number: int  # 1 = highest priority
    name: str
    scope: str  # "roots", "non-roots", or "all"

    @property
    def level(self) -> int:
        """ASP priority level of the reuse bucket for this criterion."""
        return NUM_CRITERIA + 1 - self.number

    @property
    def build_level(self) -> int:
        """ASP priority level of the build bucket for this criterion."""
        return self.level + BUILD_PRIORITY_OFFSET


#: Table II, in priority order.
CRITERIA: Tuple[Criterion, ...] = (
    Criterion(1, "Deprecated versions used", "all"),
    Criterion(2, "Version oldness", "roots"),
    Criterion(3, "Non-default variant values", "roots"),
    Criterion(4, "Non-preferred providers", "roots"),
    Criterion(5, "Unused default variant values", "roots"),
    Criterion(6, "Non-default variant values", "non-roots"),
    Criterion(7, "Non-preferred providers", "non-roots"),
    Criterion(8, "Compiler mismatches", "all"),
    Criterion(9, "OS mismatches", "all"),
    Criterion(10, "Non-preferred OS's", "all"),
    Criterion(11, "Version oldness", "non-roots"),
    Criterion(12, "Unused default variant values", "non-roots"),
    Criterion(13, "Non-preferred compilers", "all"),
    Criterion(14, "Target mismatches", "all"),
    Criterion(15, "Non-preferred targets", "all"),
)


def criterion_by_level(level: int) -> Optional[Criterion]:
    """The criterion whose reuse- or build-bucket level is ``level``."""
    for criterion in CRITERIA:
        if level in (criterion.level, criterion.build_level):
            return criterion
    return None


def describe_costs(costs: Dict[int, int]) -> List[str]:
    """Render a solver cost vector as human-readable lines.

    ``costs`` maps ASP priority levels to objective values (what
    :class:`repro.asp.control.SolveResult` reports); the output lists the
    build bucket first, then the number of builds, then the reuse bucket —
    the same ordering as Figure 5.
    """
    lines: List[str] = []
    for level in sorted(costs, reverse=True):
        value = costs[level]
        if level == NUMBER_OF_BUILDS_LEVEL:
            lines.append(f"[{level:>3}] number of builds: {value}")
            continue
        criterion = criterion_by_level(level)
        if criterion is None:
            lines.append(f"[{level:>3}] (auxiliary objective): {value}")
            continue
        bucket = "build" if level >= BUILD_PRIORITY_OFFSET else "reuse"
        scope = f" ({criterion.scope})" if criterion.scope != "all" else ""
        lines.append(
            f"[{level:>3}] {criterion.number:>2}. {criterion.name}{scope} [{bucket}]: {value}"
        )
    return lines


def cost_summary(costs: Dict[int, int]) -> Dict[str, int]:
    """Aggregate a cost vector into named totals used by tests and benchmarks."""
    summary: Dict[str, int] = {"number_of_builds": costs.get(NUMBER_OF_BUILDS_LEVEL, 0)}
    for criterion in CRITERIA:
        key = f"{criterion.number:02d}_{criterion.name.lower().replace(' ', '_')}"
        if criterion.scope != "all":
            key += f"_{criterion.scope.replace('-', '_')}"
        summary[key] = costs.get(criterion.build_level, 0) + costs.get(criterion.level, 0)
    return summary
