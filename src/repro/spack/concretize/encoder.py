"""Fact generation ("setup" phase): packages + specs + store -> ASP facts.

This is the translation layer described in Section V of the paper: package
directives become *generalized conditions* (``condition`` /
``condition_requirement`` / ``imposed_constraint`` facts), the command-line
spec becomes a trivially-true condition imposing the user's constraints, and
— when reuse is enabled — every installed package in the store becomes an
``installed_hash`` fact whose metadata is encoded as imposed constraints keyed
by the hash (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.spack.architecture import Platform, TARGETS, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.errors import ConstraintProvenance, SpackError
from repro.spack.repo import Repository, ShardedRepository
from repro.spack.spec import Spec
from repro.spack.version import Version, parse_version_constraint

Fact = Tuple


@dataclass
class EncodedLayer:
    """One slice of a layered spec-independent encoding.

    ``facts`` is the layer's contribution to the base fact list and
    ``hints`` its layer-local possibility seeds (``root(P)`` for the
    packages the layer introduces), handed to
    :meth:`repro.asp.grounder.Grounder.ground_delta` so node/version/variant
    rules for those packages instantiate in *this* layer rather than up
    front.  ``shard`` names the originating repository shard (None for the
    platform/compiler context layer); the final layer additionally carries
    the catalog-wide linking facts (virtual providers, installed store,
    deferred constraint-membership facts) and is marked ``links=True``.
    """

    name: str
    shard: Optional[str] = None
    links: bool = False
    facts: List[Fact] = field(default_factory=list)
    hints: List[Fact] = field(default_factory=list)


class EncodingStatistics:
    """Bookkeeping the benchmarks report (fact counts, possible dependencies)."""

    def __init__(self):
        self.possible_packages = 0
        self.possible_dependencies = 0
        self.facts = 0
        self.conditions = 0
        self.installed_candidates = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "possible_packages": self.possible_packages,
            "possible_dependencies": self.possible_dependencies,
            "facts": self.facts,
            "conditions": self.conditions,
            "installed_candidates": self.installed_candidates,
        }


class ProblemEncoder:
    """Builds the fact list for one concretization problem."""

    def __init__(
        self,
        repo: Repository,
        platform: Optional[Platform] = None,
        compilers: Optional[CompilerRegistry] = None,
        store=None,
        reuse: bool = False,
    ):
        self.repo = repo
        self.platform = platform or default_platform()
        self.compilers = compilers or CompilerRegistry()
        self.store = store
        self.reuse = reuse

        self.facts: List[Fact] = []
        #: optional streaming sink: when set, every emitted fact is pushed
        #: through it as soon as it is built (grounder writer callback), in
        #: addition to being recorded in :attr:`facts` for provenance and
        #: unsat explanations
        self.sink = None
        # one entry per retractable constraint this encoder emitted, in
        # emission order; a forked (delta) encoder records only its own —
        # explanation callers concatenate base + delta provenance
        self.provenance: List[ConstraintProvenance] = []
        self.stats = EncodingStatistics()
        self._condition_counter = 0
        self._version_constraints: Dict[str, Set[str]] = {}
        self._compiler_constraints: Dict[str, Set[str]] = {}
        self._extra_versions: Dict[str, Set[str]] = {}
        self._possible: Set[str] = set()
        # (package, constraint) pairs whose version_possible /
        # compiler_version_possible support facts were already emitted —
        # lets a forked encoder emit only the pairs its spec introduced.
        self._emitted_version_pairs: Set[Tuple[str, str]] = set()
        self._emitted_compiler_pairs: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def encode(self, specs: Sequence[Spec]) -> List[Fact]:
        """Produce all facts for concretizing ``specs`` together.

        Same components as the layered :meth:`encode_base` /
        :meth:`encode_delta` API, in the classic one-shot order (input specs
        first, so they take the lowest condition ids).
        """
        self._determine_possible_packages(specs)
        installed = self._encode_context()
        for spec in specs:
            self._encode_input_spec(spec)
        self._encode_universe(installed)
        self._encode_constraint_support()
        self.stats.facts = len(self.facts)
        return self.facts

    @property
    def possible_packages(self) -> Set[str]:
        """Names (packages and virtuals) this encoding considers possible."""
        return set(self._possible)

    # -- layered encoding (batch concretization sessions) ---------------

    def encode_base(
        self, specs: Optional[Sequence[Spec]] = None, sink=None
    ) -> List[Fact]:
        """The *spec-independent* fact layer.

        Covers everything derived from the repository, platform, compiler
        registry, and (with reuse) the installed-package store: package
        versions/variants/dependencies/conflicts/provides, virtual providers,
        installed hashes, and the version/compiler constraint-membership
        facts for every constraint those declarations mention.  Nothing in
        this layer depends on what the user asked to concretize, so it can be
        grounded once and shared across solves.

        With ``specs``, possible packages are restricted to the union
        reachable from them (what a batch session uses); without, the whole
        repository is encoded.  With ``sink``, every fact streams through the
        callback as it is emitted (grounder fact writer) instead of being
        consumed from the returned list afterwards.
        """
        if sink is not None:
            self.sink = sink
        try:
            return self._encode_base(specs)
        finally:
            self.sink = None

    def _encode_base(self, specs: Optional[Sequence[Spec]]) -> List[Fact]:
        if specs is not None:
            self._determine_possible_packages(specs)
        else:
            names = self.repo.all_package_names()
            self._possible = self.repo.possible_dependencies(*names)
            self.stats.possible_packages = len(self._possible)
        installed = self._encode_context()
        self._encode_universe(installed)
        self._encode_constraint_support()
        self.stats.facts = len(self.facts)
        return self.facts

    def _encode_context(self) -> List[Spec]:
        """Platform + compiler facts; returns the relevant installed specs
        (whose versions must be known before packages are encoded)."""
        self._encode_platform()
        self._encode_compilers()
        installed = self._relevant_installed_specs()
        self._collect_installed_versions(installed)
        return installed

    def _encode_universe(self, installed: Sequence[Spec]):
        """Package declarations, virtual providers, and installed hashes."""
        for name in sorted(self._possible):
            if self.repo.exists(name):
                self._encode_package(name)
        self._encode_virtuals()
        for installed_spec in installed:
            self._encode_installed(installed_spec)

    def _encode_constraint_support(self):
        """version_possible / compiler_version_possible membership facts.

        Must come after everything else: every constraint string seen
        anywhere has been registered by then.  Emits each (package,
        constraint) pair once per encoder lineage, so delta layers only add
        the pairs their input specs introduced.
        """
        self._encode_version_constraints()
        self._encode_compiler_constraints()

    def encode_base_layers(self, specs: Optional[Sequence[Spec]] = None) -> List[EncodedLayer]:
        """The spec-independent layer as a *stack* of per-shard slices.

        Requires a :class:`~repro.spack.repo.ShardedRepository`.  The union
        of all returned layers' facts equals one :meth:`encode_base` pass
        over an equivalent monolithic repository (modulo fact order and
        condition-id assignment, which the solver is insensitive to): first a
        *context* layer (platform + compilers), then one layer per shard
        with a possible package (its package declarations plus ``root``
        possibility hints for them), with the catalog-wide *linking* facts —
        virtual providers, installed-store hashes, deferred
        constraint-membership facts — folded into the final layer, whose
        cache key already covers every shard hash.

        Grounded incrementally (one ``ground_delta`` per layer) and cached
        per chain prefix by the session, this is what makes editing one
        shard re-ground only that shard's layer; cross-shard dependency
        edges that point at *later* layers are correct because the grounder
        re-expands affected choice instances in place (see
        :class:`repro.asp.grounder.Grounder`).
        """
        repo = self.repo
        if not isinstance(repo, ShardedRepository):
            raise SpackError("encode_base_layers requires a ShardedRepository")
        if specs is not None:
            self._determine_possible_packages(specs)
        else:
            names = repo.all_package_names()
            self._possible = repo.possible_dependencies(*names)
            self.stats.possible_packages = len(self._possible)

        layers: List[EncodedLayer] = []
        mark = 0

        def close_layer(layer: EncodedLayer) -> EncodedLayer:
            nonlocal mark
            layer.facts = self.facts[mark:]
            mark = len(self.facts)
            layers.append(layer)
            return layer

        installed = self._encode_context()
        close_layer(EncodedLayer("context"))

        included = []
        # grounding order, not insertion order: dirty (post-attach-edited)
        # shards sink to the end of the chain so repeated edits converge to
        # re-grounding exactly one layer (see ShardedRepository.layering_shards)
        for shard in repo.layering_shards():
            names = sorted(name for name in self._possible if name in shard)
            if names:
                included.append((shard, names))
        for index, (shard, names) in enumerate(included):
            for name in names:
                self._encode_package(name)
            links = index == len(included) - 1
            if links:
                self._encode_links(installed)
            close_layer(
                EncodedLayer(
                    shard.name,
                    shard=shard.name,
                    links=links,
                    hints=[("root", name) for name in names],
                )
            )
        if not included:
            self._encode_links(installed)
            close_layer(EncodedLayer("link", links=True))

        self.stats.facts = len(self.facts)
        return layers

    def _encode_links(self, installed: Sequence[Spec]):
        """The catalog-wide facts that must follow every package layer."""
        self._encode_virtuals()
        for installed_spec in installed:
            self._encode_installed(installed_spec)
        self._encode_constraint_support()

    def fork(self) -> "ProblemEncoder":
        """A child encoder for one solve's *spec-dependent* layer.

        The child continues this encoder's condition-id sequence and knows
        which constraint support facts the base already emitted, so its
        :meth:`encode_delta` output can be layered onto the base grounding
        without colliding with it.
        """
        child = ProblemEncoder(
            self.repo,
            platform=self.platform,
            compilers=self.compilers,
            store=self.store,
            reuse=self.reuse,
        )
        child._condition_counter = self._condition_counter
        child._version_constraints = {k: set(v) for k, v in self._version_constraints.items()}
        child._compiler_constraints = {k: set(v) for k, v in self._compiler_constraints.items()}
        child._extra_versions = {k: set(v) for k, v in self._extra_versions.items()}
        child._possible = set(self._possible)
        child._emitted_version_pairs = set(self._emitted_version_pairs)
        child._emitted_compiler_pairs = set(self._emitted_compiler_pairs)
        child.stats.possible_packages = self.stats.possible_packages
        child.stats.installed_candidates = self.stats.installed_candidates
        return child

    def encode_delta(self, specs: Sequence[Spec], sink=None) -> List[Fact]:
        """The *spec-dependent* fact layer for ``specs`` (on a fork).

        Emits the roots, their imposed constraints (as fresh conditions), and
        constraint-membership facts only for version/compiler constraints the
        input specs introduced beyond the base layer.  With ``sink``, facts
        stream through the callback as they are emitted.
        """
        if sink is not None:
            self.sink = sink
        try:
            for spec in specs:
                if spec.name is None:
                    raise SpackError("cannot concretize an anonymous spec")
                self._encode_input_spec(spec)
            self._encode_constraint_support()
        finally:
            self.sink = None
        self.stats.facts = len(self.facts)
        return self.facts

    # ------------------------------------------------------------------
    # Possible packages
    # ------------------------------------------------------------------

    @staticmethod
    def possible_packages_for(repo: Repository, specs: Sequence[Spec]) -> Set[str]:
        """Names reachable from ``specs`` in ``repo`` (the encoding universe).

        Exposed so callers that key caches on the reachable set (the batch
        session) use the exact computation the encoding itself uses.
        """
        roots: List[str] = []
        for spec in specs:
            if spec.name is None:
                raise SpackError("cannot concretize an anonymous spec")
            roots.append(spec.name)
            roots.extend(spec.dependencies)
        real_roots = [name for name in roots if repo.exists(name) or repo.is_virtual(name)]
        return repo.possible_dependencies(*real_roots)

    def _determine_possible_packages(self, specs: Sequence[Spec]):
        self._possible = self.possible_packages_for(self.repo, specs)
        self.stats.possible_packages = len(self._possible)
        root_names = {spec.name for spec in specs}
        self.stats.possible_dependencies = len(self._possible - root_names)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------

    def _fact(self, *atom):
        fact = tuple(atom)
        self.facts.append(fact)
        if self.sink is not None:
            self.sink(fact)

    def _new_condition(self) -> int:
        self._condition_counter += 1
        self.stats.conditions += 1
        self._fact("condition", self._condition_counter)
        return self._condition_counter

    def _register_version_constraint(self, package: str, constraint: str):
        if constraint:
            self._version_constraints.setdefault(package, set()).add(constraint)

    def _register_compiler_constraint(self, compiler: str, constraint: str):
        if constraint:
            self._compiler_constraints.setdefault(compiler, set()).add(constraint)

    # -- spec -> requirement / imposition translation ------------------------

    def _target_requirement(self, package: str, target: str) -> Fact:
        base = target.rstrip(":")
        if TARGETS.is_family(base):
            return ("node_target_family", package, base)
        return ("node_target", package, target)

    def _spec_requirements(self, package: str, spec: Optional[Spec]) -> List[Fact]:
        """Requirements (attr tuples) for "``package`` matches ``spec``"."""
        if spec is None:
            return []
        requirements: List[Fact] = []
        if not spec.versions.is_any:
            constraint = str(spec.versions)
            self._register_version_constraint(package, constraint)
            requirements.append(("version_satisfies", package, constraint))
        for variant, value in spec.variants.items():
            for single in value if isinstance(value, tuple) else (value,):
                requirements.append(("variant_value", package, variant, single))
        if spec.compiler:
            requirements.append(("node_compiler", package, spec.compiler))
            if not spec.compiler_versions.is_any:
                constraint = str(spec.compiler_versions)
                self._register_compiler_constraint(spec.compiler, constraint)
                requirements.append(
                    ("node_compiler_version_satisfies", package, spec.compiler, constraint)
                )
        if spec.os:
            requirements.append(("node_os", package, spec.os))
        if spec.target:
            requirements.append(self._target_requirement(package, spec.target))
        for dep_name in spec.dependencies:
            # "^openblas" inside a when= clause: the dependency must appear in
            # the subtree below this package.
            requirements.append(("path", package, dep_name))
            nested = self._spec_requirements(dep_name, spec.dependencies[dep_name])
            requirements.extend(nested)
        return requirements

    def _spec_impositions(self, package: str, spec: Spec, is_virtual: bool) -> List[Fact]:
        """Imposed constraints for "``package`` must satisfy ``spec``"."""
        imposed: List[Fact] = []
        if not spec.versions.is_any:
            constraint = str(spec.versions)
            if is_virtual:
                imposed.append(("provider_version_satisfies", package, constraint))
            else:
                self._register_version_constraint(package, constraint)
                imposed.append(("version_satisfies", package, constraint))
        for variant, value in spec.variants.items():
            if is_virtual:
                continue  # variant constraints through virtuals are not modeled
            for single in value if isinstance(value, tuple) else (value,):
                imposed.append(("variant_value", package, variant, single))
        if spec.compiler:
            imposed.append(("node_compiler", package, spec.compiler))
            if not spec.compiler_versions.is_any:
                constraint = str(spec.compiler_versions)
                self._register_compiler_constraint(spec.compiler, constraint)
                imposed.append(
                    ("node_compiler_version_satisfies", package, spec.compiler, constraint)
                )
        if spec.os:
            imposed.append(("node_os", package, spec.os))
        if spec.target:
            imposed.append(self._target_requirement(package, spec.target))
        return imposed

    # ------------------------------------------------------------------
    # Input (command line) specs
    # ------------------------------------------------------------------

    def _encode_input_spec(self, spec: Spec):
        self._fact("root", spec.name)
        condition = self._new_condition()
        # the bare node imposition stays outside the suspect group: the root
        # node itself is re-derived from the (non-retractable) root fact, so
        # relaxing the group drops the user's *constraints*, not the request
        self._fact("imposed_constraint", condition, "node", spec.name)
        group: List[Fact] = []
        for imposed in self._spec_impositions(spec.name, spec, self.repo.is_virtual(spec.name)):
            group.append(("imposed_constraint", condition) + tuple(imposed))
            self._fact(*group[-1])
        if group:
            self.provenance.append(
                ConstraintProvenance(
                    kind="requested",
                    package=spec.name,
                    directive=f'requested spec "{spec}"',
                    facts=tuple(group),
                )
            )

        for dep_name, dep_spec in spec.dependencies.items():
            dep_condition = self._new_condition()
            dep_group: List[Fact] = []
            if self.repo.is_virtual(dep_name):
                # Constraining a virtual on the command line constrains its
                # eventual provider.
                for imposed in self._spec_impositions(dep_name, dep_spec, True):
                    dep_group.append(("imposed_constraint", dep_condition) + tuple(imposed))
                    self._fact(*dep_group[-1])
            else:
                dep_group.append(("imposed_constraint", dep_condition, "node", dep_name))
                self._fact(*dep_group[-1])
                for imposed in self._spec_impositions(dep_name, dep_spec, False):
                    dep_group.append(("imposed_constraint", dep_condition) + tuple(imposed))
                    self._fact(*dep_group[-1])
            if dep_group:
                self.provenance.append(
                    ConstraintProvenance(
                        kind="requested",
                        package=dep_name,
                        directive=f'requested spec "{spec}"',
                        facts=tuple(dep_group),
                    )
                )

    # ------------------------------------------------------------------
    # Platform / compilers
    # ------------------------------------------------------------------

    def _encode_platform(self):
        weights = self.platform.target_weights()
        for target in self.platform.targets():
            self._fact("target", target.name)
            self._fact("target_family", target.name, target.family)
            self._fact("target_weight", target.name, weights[target.name])
        for os_name, weight in self.platform.os_weights().items():
            self._fact("os", os_name)
            self._fact("os_weight", os_name, weight)

    def _encode_compilers(self):
        weights = self.compilers.weights()
        platform_targets = {t.name for t in self.platform.targets()}
        for compiler in self.compilers:
            version = str(compiler.version)
            self._fact("compiler", compiler.name, version)
            self._fact("compiler_weight", compiler.name, version, weights[(compiler.name, version)])
            for target in self.compilers.supported_targets(compiler, self.platform.family):
                if target.name in platform_targets:
                    self._fact("compiler_supports_target", compiler.name, version, target.name)

    # ------------------------------------------------------------------
    # Packages
    # ------------------------------------------------------------------

    def _encode_package(self, name: str):
        cls = self.repo.get(name)
        self._encode_versions(name, cls)
        self._encode_variants(name, cls)
        self._encode_dependencies(name, cls)
        self._encode_conflicts(name, cls)
        self._encode_provides(name, cls)

    def _encode_versions(self, name: str, cls):
        weights = cls.version_weights()
        known = {str(v) for v in weights}
        next_weight = len(weights)
        for version, weight in weights.items():
            self._fact("version_declared", name, str(version), weight)
        for extra in sorted(self._extra_versions.get(name, ())):
            if extra not in known:
                self._fact("version_declared", name, extra, next_weight)
                next_weight += 1
        for version, decl in cls.versions.items():
            if decl.deprecated:
                self._fact("version_deprecated", name, str(version))

    def _encode_variants(self, name: str, cls):
        for variant_name, decl in cls.variants.items():
            self._fact("variant", name, variant_name)
            if decl.multi:
                self._fact("variant_multi", name, variant_name)
            else:
                self._fact("variant_single", name, variant_name)
            defaults = decl.default if isinstance(decl.default, tuple) else (decl.default,)
            for default in defaults:
                self._fact("variant_default", name, variant_name, default)
            for value in decl.values:
                self._fact("variant_possible_value", name, variant_name, value)

    def _encode_dependencies(self, name: str, cls):
        for dependency in cls.dependencies:
            dep_name = dependency.name
            is_virtual = self.repo.is_virtual(dep_name)
            if not is_virtual and not self.repo.exists(dep_name):
                continue  # dependency on a package missing from the repository
            condition = self._new_condition()
            self._fact("condition_requirement", condition, "node", name)
            for requirement in self._spec_requirements(name, dependency.when):
                self._fact("condition_requirement", condition, *requirement)
            # the suspect group spans the activation fact AND the imposed
            # constraints: `impose(ID) :- condition_holds(ID)` would keep the
            # impositions active if only the activation fact were retracted
            group: List[Fact] = [("dependency_condition", condition, name, dep_name)]
            self._fact(*group[0])
            for imposed in self._spec_impositions(dep_name, dependency.spec, is_virtual):
                group.append(("imposed_constraint", condition) + tuple(imposed))
                self._fact(*group[-1])
            # Constraints on transitive dependencies inside the dependency
            # spec (e.g. depends_on("hdf5+mpi ^zlib@1.2.8:")).
            for sub_name, sub_spec in dependency.spec.dependencies.items():
                if not self.repo.exists(sub_name):
                    continue
                group.append(("imposed_constraint", condition, "node", sub_name))
                self._fact(*group[-1])
                for imposed in self._spec_impositions(sub_name, sub_spec, False):
                    group.append(("imposed_constraint", condition) + tuple(imposed))
                    self._fact(*group[-1])
            self.provenance.append(
                ConstraintProvenance(
                    kind="depends_on",
                    package=name,
                    directive=dependency.directive_string(),
                    when=str(dependency.when) if dependency.when is not None else "",
                    facts=tuple(group),
                )
            )

    def _encode_conflicts(self, name: str, cls):
        for conflict in cls.conflict_decls:
            condition = self._new_condition()
            self._fact("condition_requirement", condition, "node", name)
            for requirement in self._spec_requirements(name, conflict.when):
                self._fact("condition_requirement", condition, *requirement)
            for requirement in self._spec_requirements(name, conflict.spec):
                self._fact("condition_requirement", condition, *requirement)
            self._fact("conflict", condition, name)
            # retracting the conflict fact disables the integrity constraint
            self.provenance.append(
                ConstraintProvenance(
                    kind="conflict",
                    package=name,
                    directive=conflict.directive_string(),
                    when=str(conflict.when) if conflict.when is not None else "",
                    facts=(("conflict", condition, name),),
                )
            )

    def _encode_provides(self, name: str, cls):
        for provided in cls.provided:
            virtual = provided.name
            condition = self._new_condition()
            self._fact("condition_requirement", condition, "node", name)
            for requirement in self._spec_requirements(name, provided.when):
                self._fact("condition_requirement", condition, *requirement)
            self._fact("provider_condition", condition, name, virtual)

    def _encode_virtuals(self):
        for virtual in self.repo.virtuals():
            providers = [p for p in self.repo.providers_for(virtual) if p in self._possible]
            if not providers:
                continue
            self._fact("virtual", virtual)
            weights = self.repo.provider_weights(virtual)
            for provider in providers:
                self._fact("possible_provider", virtual, provider, weights[provider])

    # ------------------------------------------------------------------
    # Installed packages (reuse)
    # ------------------------------------------------------------------

    def _relevant_installed_specs(self) -> List[Spec]:
        if not self.reuse or self.store is None:
            return []
        relevant = []
        for spec in self.store.all_specs():
            if spec.name in self._possible:
                relevant.append(spec)
        self.stats.installed_candidates = len(relevant)
        return relevant

    def _collect_installed_versions(self, installed: Iterable[Spec]):
        for spec in installed:
            concrete = spec.versions.concrete
            if concrete is not None:
                self._extra_versions.setdefault(spec.name, set()).add(str(concrete))

    def _encode_installed(self, spec: Spec):
        digest = spec.dag_hash()
        name = spec.name
        self._fact("installed_hash", name, digest)
        self._fact("imposed_constraint", digest, "node", name)
        concrete = spec.versions.concrete
        if concrete is not None:
            self._fact("imposed_constraint", digest, "version", name, str(concrete))
        for variant, value in spec.variants.items():
            for single in value if isinstance(value, tuple) else (value,):
                self._fact("imposed_constraint", digest, "variant_value", name, variant, single)
        if spec.compiler:
            self._fact("imposed_constraint", digest, "node_compiler", name, spec.compiler)
            compiler_version = spec.compiler_versions.concrete
            if compiler_version is not None:
                self._fact(
                    "imposed_constraint",
                    digest,
                    "node_compiler_version",
                    name,
                    spec.compiler,
                    str(compiler_version),
                )
        if spec.os:
            self._fact("imposed_constraint", digest, "node_os", name, spec.os)
        if spec.target:
            self._fact("imposed_constraint", digest, "node_target", name, spec.target)
        for dep_name, dep in spec.dependencies.items():
            self._fact("imposed_constraint", digest, "depends_on", name, dep_name)
            self._fact("imposed_constraint", digest, "hash", dep_name, dep.dag_hash())

    # ------------------------------------------------------------------
    # Deferred constraint-membership facts
    # ------------------------------------------------------------------

    def _known_versions(self, package: str) -> List[str]:
        versions: List[str] = []
        if self.repo.exists(package):
            versions.extend(str(v) for v in self.repo.get(package).declared_versions())
        versions.extend(sorted(self._extra_versions.get(package, ())))
        return versions

    def _encode_version_constraints(self):
        for package, constraints in sorted(self._version_constraints.items()):
            known = self._known_versions(package)
            for constraint in sorted(constraints):
                if (package, constraint) in self._emitted_version_pairs:
                    continue
                self._emitted_version_pairs.add((package, constraint))
                constraint_list = parse_version_constraint(constraint)
                for version_string in known:
                    if constraint_list.includes(Version(version_string)):
                        self._fact("version_possible", package, constraint, version_string)

    def _encode_compiler_constraints(self):
        for compiler_name, constraints in sorted(self._compiler_constraints.items()):
            versions = [c.version for c in self.compilers.by_name(compiler_name)]
            for constraint in sorted(constraints):
                if (compiler_name, constraint) in self._emitted_compiler_pairs:
                    continue
                self._emitted_compiler_pairs.add((compiler_name, constraint))
                constraint_list = parse_version_constraint(constraint)
                for version in versions:
                    if constraint_list.includes(version):
                        self._fact(
                            "compiler_version_possible", compiler_name, constraint, str(version)
                        )
