"""Concretizers: the ASP-based solver (the paper's contribution) and the
original greedy baseline.

* :class:`repro.spack.concretize.concretizer.Concretizer` — drives the ASP
  pipeline: encode facts (setup), load the logic program, ground, solve,
  extract a concrete Spec DAG (Section V of the paper), with optional reuse of
  installed packages (Section VI).
* :class:`repro.spack.concretize.original.OriginalConcretizer` — the greedy
  fixed-point algorithm Spack used before, which is neither complete nor
  optimal (Section III-C); used as the baseline in Figure 7h and in the
  usability comparisons of Section VI-B.
* :class:`repro.spack.concretize.session.ConcretizationSession` — batch
  concretization: many root specs against one shared, incrementally layered
  grounding, with content-hash-keyed ground and solve caches.  All tuning
  rides in one frozen :class:`repro.spack.concretize.config.SessionConfig`:
  ``SessionConfig(workers=N)`` (or
  :class:`repro.spack.concretize.session.ParallelConcretizationSession`)
  fans per-spec solves out to a worker pool over the shared base, and
  ``SessionConfig(cache_dir=...)`` persists the ground/solve caches — plus
  mmap-able ground *snapshots* that a second process attaches near
  zero-copy — on disk across processes (see ``docs/ARCHITECTURE.md`` and
  ``docs/CACHING.md``).
* :class:`repro.spack.concretize.async_session.AsyncConcretizationSession` —
  the ``asyncio`` front-end over the same machinery: ``await
  session.concretize(spec)``, ``concretize_batch()``, and an
  ``as_completed()`` streaming API that yields results in completion order
  with bounded concurrency and clean cancellation.
* :func:`repro.spack.concretize.explain.explain_unsat` — the minimal
  conflict core behind every
  :class:`~repro.spack.errors.UnsatisfiableSpecError`.
"""

from repro.spack.concretize.async_session import AsyncConcretizationSession
from repro.spack.concretize.concretizer import ConcretizationResult, Concretizer
from repro.spack.concretize.config import SessionConfig
from repro.spack.concretize.criteria import CRITERIA, Criterion, describe_costs
from repro.spack.concretize.explain import ConstraintProvenance, explain_unsat
from repro.spack.concretize.original import OriginalConcretizer
from repro.spack.concretize.session import (
    ConcretizationSession,
    ParallelConcretizationSession,
    SessionStatistics,
    compute_content_hash,
    default_worker_count,
)

__all__ = [
    "CRITERIA",
    "AsyncConcretizationSession",
    "ConcretizationResult",
    "ConcretizationSession",
    "Concretizer",
    "ConstraintProvenance",
    "Criterion",
    "OriginalConcretizer",
    "ParallelConcretizationSession",
    "SessionConfig",
    "SessionStatistics",
    "compute_content_hash",
    "default_worker_count",
    "describe_costs",
    "explain_unsat",
]
