"""Concretizers: the ASP-based solver (the paper's contribution) and the
original greedy baseline.

* :class:`repro.spack.concretize.concretizer.Concretizer` — drives the ASP
  pipeline: encode facts (setup), load the logic program, ground, solve,
  extract a concrete Spec DAG (Section V of the paper), with optional reuse of
  installed packages (Section VI).
* :class:`repro.spack.concretize.original.OriginalConcretizer` — the greedy
  fixed-point algorithm Spack used before, which is neither complete nor
  optimal (Section III-C); used as the baseline in Figure 7h and in the
  usability comparisons of Section VI-B.
"""

from repro.spack.concretize.concretizer import ConcretizationResult, Concretizer
from repro.spack.concretize.criteria import CRITERIA, Criterion, describe_costs
from repro.spack.concretize.original import OriginalConcretizer

__all__ = [
    "CRITERIA",
    "ConcretizationResult",
    "Concretizer",
    "Criterion",
    "OriginalConcretizer",
    "describe_costs",
]
