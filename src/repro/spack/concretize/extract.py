"""Turn a stable model back into a concrete Spec DAG (step 4 of Section V)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.asp.control import Model
from repro.spack.errors import SpackError
from repro.spack.spec import Spec
from repro.spack.version import VersionList, Version


def extract_specs(model: Model) -> Dict[str, Spec]:
    """Build the concrete Spec for every node in the model, wired into a DAG.

    Returns a dict keyed by package name (the solver produces a single node
    per package, exactly like Spack's unified concretization).
    """
    specs: Dict[str, Spec] = {}

    for (name,) in model.arguments("node"):
        specs[name] = Spec(name=name)

    for atom in model.atoms("attr"):
        args = atom[1:]
        attr_name = args[0]
        if attr_name == "version" and len(args) == 3:
            _, name, version = args
            if name in specs:
                specs[name].versions = VersionList([Version(version)])
        elif attr_name == "variant_value" and len(args) == 4:
            _, name, variant, value = args
            if name not in specs:
                continue
            spec = specs[name]
            existing = spec.variants.get(variant)
            if existing is None:
                spec.variants[variant] = value
            elif isinstance(existing, tuple):
                if value not in existing:
                    spec.variants[variant] = tuple(sorted(existing + (value,)))
            elif existing != value:
                spec.variants[variant] = tuple(sorted((existing, value)))
        elif attr_name == "node_compiler" and len(args) == 3:
            _, name, compiler = args
            if name in specs:
                specs[name].compiler = compiler
        elif attr_name == "node_compiler_version" and len(args) == 4:
            _, name, compiler, version = args
            if name in specs:
                specs[name].compiler = compiler
                specs[name].compiler_versions = VersionList([Version(version)])
        elif attr_name == "node_os" and len(args) == 3:
            _, name, os_name = args
            if name in specs:
                specs[name].os = os_name
        elif attr_name == "node_target" and len(args) == 3:
            _, name, target = args
            if name in specs:
                specs[name].target = target

    for name, digest in model.arguments("hash"):
        if name in specs:
            specs[name].installed_hash = digest

    for parent, child in model.arguments("depends_on"):
        if parent in specs and child in specs:
            specs[parent].dependencies[child] = specs[child]

    for spec in specs.values():
        spec.mark_concrete()

    return specs


def root_specs(model: Model, specs: Dict[str, Spec]) -> List[Spec]:
    """The concrete specs corresponding to the solve's root packages."""
    roots = []
    for (name,) in model.arguments("root"):
        if name not in specs:
            raise SpackError(f"solver model is missing root node {name!r}")
        roots.append(specs[name])
    return roots


def built_and_reused(model: Model) -> Tuple[Set[str], Set[str]]:
    """Names of packages the model builds vs. reuses from the store."""
    built = {name for (name,) in model.arguments("build")}
    reused = {name for (name, _digest) in model.arguments("hash")}
    return built, reused
