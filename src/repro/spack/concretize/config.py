"""The public session configuration: one frozen object, every knob.

:class:`~repro.spack.concretize.session.ConcretizationSession` grew its
execution knobs one keyword at a time — workers, backends, cache
directories, disk budgets, join strategies, profiling, portfolios, snapshot
behaviour.  Threading a dozen keyword arguments through every front-end
(sync session, async session, HTTP service, CLI) made each new knob an
N-signature change.  :class:`SessionConfig` collapses them into a single
frozen dataclass that all front-ends accept via ``session_config=``::

    config = SessionConfig(workers=4, cache_dir="/var/cache/concretize")
    session = ConcretizationSession(repo, session_config=config)
    service = ConcretizationService(catalogs, session_config=config)

The legacy keyword arguments keep working — each maps 1:1 onto a
:class:`SessionConfig` field (see :data:`LEGACY_SESSION_KWARGS`) and emits a
:class:`DeprecationWarning` pointing at the replacement — so existing
callers migrate on their own schedule.  Mixing is allowed: explicit legacy
kwargs override the corresponding ``session_config`` fields (the warning
still fires).

``SessionConfig`` is immutable (hashable whenever its ``portfolio`` value
is), so it is safe to share one instance across sessions, services, and
threads; derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Sequence, Union

__all__ = ["SessionConfig", "LEGACY_SESSION_KWARGS", "resolve_session_config"]


@dataclass(frozen=True)
class SessionConfig:
    """Execution configuration shared by every concretization front-end.

    Grouped by concern (each field mirrors one legacy keyword argument of
    :class:`~repro.spack.concretize.session.ConcretizationSession`; the
    async session and the service accept the same object):

    *Parallelism*

    * ``workers`` — solver workers per batch: ``1`` (sequential, default),
      ``N > 1`` (pool fan-out), or ``"auto"`` (scheduler-visible CPU count);
    * ``worker_backend`` — ``"process"``, ``"thread"``, or ``"auto"``
      (processes wherever ``fork`` exists);
    * ``max_concurrency`` — async front-end only: the semaphore bound on
      simultaneously leased workers (``None`` derives it from ``workers``).

    *Persistence*

    * ``cache_dir`` — directory for the persistent solve/ground/snapshot
      layers; ``None`` (default) stays purely in-memory;
    * ``persist_ground`` — set False to keep the solve cache on disk but
      skip persisting grounded bases;
    * ``snapshots`` — set False to skip the flat mmap-able ground snapshots
      (``cache_dir`` then persists pickled bases only; see
      ``docs/CACHING.md``);
    * ``cache_max_entries`` / ``cache_max_bytes`` — LRU disk budgets,
      applied to each persistent layer;
    * ``share_ground_cache`` — set False to opt out of the process-wide
      in-memory grounded-base memo.

    *Solver behaviour*

    * ``join_strategy`` — ``"indexed"`` (default) or ``"naive"`` (the
      reference oracle grounder);
    * ``profile`` — ``True`` for per-stage grounding/solving timers,
      ``"rules"`` to also time each rule;
    * ``portfolio`` — race CDCL presets per solve: ``True`` for the default
      lineup, an int for the first ``n`` presets, or a sequence of preset
      values.
    """

    workers: Union[int, str] = 1
    worker_backend: str = "auto"
    max_concurrency: Optional[int] = None
    cache_dir: Optional[str] = None
    persist_ground: bool = True
    snapshots: bool = True
    cache_max_entries: Optional[int] = None
    cache_max_bytes: Optional[int] = None
    share_ground_cache: bool = True
    join_strategy: str = "indexed"
    profile: Union[bool, str] = False
    portfolio: Union[bool, int, Sequence] = field(default=False)

    def __post_init__(self):
        if self.workers != "auto" and int(self.workers) < 1:
            raise ValueError(f"workers must be >= 1 or 'auto', got {self.workers!r}")
        if self.worker_backend not in ("auto", "process", "thread"):
            raise ValueError(f"unknown worker backend: {self.worker_backend!r}")
        if self.max_concurrency is not None and int(self.max_concurrency) < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency!r}"
            )

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)


#: Legacy constructor keyword -> :class:`SessionConfig` field.  Every entry
#: is accepted (with a :class:`DeprecationWarning`) by the session, async
#: session, and service constructors; this table *is* the documented
#: migration map (see the README migration note).
LEGACY_SESSION_KWARGS: Dict[str, str] = {
    "workers": "workers",
    "worker_backend": "worker_backend",
    "max_concurrency": "max_concurrency",
    "cache_dir": "cache_dir",
    "persist_ground": "persist_ground",
    "snapshots": "snapshots",
    "cache_max_entries": "cache_max_entries",
    "cache_max_bytes": "cache_max_bytes",
    "share_ground_cache": "share_ground_cache",
    "join_strategy": "join_strategy",
    "profile": "profile",
    "portfolio": "portfolio",
}

_FIELD_NAMES = frozenset(f.name for f in fields(SessionConfig))
assert frozenset(LEGACY_SESSION_KWARGS.values()) == _FIELD_NAMES


def resolve_session_config(
    session_config: Optional[SessionConfig],
    legacy: Dict[str, object],
    owner: str,
    stacklevel: int = 3,
) -> SessionConfig:
    """Merge ``session_config`` with legacy keyword arguments.

    ``legacy`` is the constructor's captured ``**kwargs``; every key must
    appear in :data:`LEGACY_SESSION_KWARGS` (anything else raises
    :class:`TypeError`, preserving the old signature's strictness).  Each
    legacy kwarg emits a :class:`DeprecationWarning` naming the
    :class:`SessionConfig` replacement and overrides the corresponding
    field of ``session_config`` (or of the default config when none was
    given).
    """
    overrides: Dict[str, object] = {}
    for name, value in legacy.items():
        target = LEGACY_SESSION_KWARGS.get(name)
        if target is None:
            raise TypeError(
                f"{owner}() got an unexpected keyword argument {name!r}"
            )
        warnings.warn(
            f"{owner}({name}=...) is deprecated; pass "
            f"session_config=SessionConfig({target}=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        overrides[target] = value
    base = session_config if session_config is not None else SessionConfig()
    if not isinstance(base, SessionConfig):
        raise TypeError(
            f"session_config must be a SessionConfig, got {type(base).__name__}"
        )
    return replace(base, **overrides) if overrides else base
