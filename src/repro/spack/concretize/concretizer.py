"""The ASP-based concretizer (the paper's contribution).

The pipeline follows Section V of the paper:

1. **setup** — generate facts for all possible dependencies and installs;
2. **load** — load the logic program encoding the software model;
3. **ground** — ground the program against the facts;
4. **solve** — search for the best stable model;
5. build an optimal concrete DAG from the model.

Per-phase timings are recorded exactly as in Section VII so the benchmark
harness can reproduce Figures 7a–7h.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.asp.configs import SolverConfig
from repro.asp.control import Control, Model
from repro.spack.architecture import Platform, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.concretize.encoder import ProblemEncoder
from repro.spack.concretize.explain import explain_unsat
from repro.spack.concretize.extract import built_and_reused, extract_specs, root_specs
from repro.spack.concretize.logic import logic_program
from repro.spack.errors import ConstraintProvenance, UnsatisfiableSpecError
from repro.spack.repo import Repository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec


@dataclass
class ConcretizationResult:
    """Everything a caller may want to know about one concretization."""

    roots: List[Spec]
    specs: Dict[str, Spec]
    costs: Dict[int, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    statistics: Dict[str, object] = field(default_factory=dict)
    built: Set[str] = field(default_factory=set)
    reused: Set[str] = field(default_factory=set)
    model: Optional[Model] = None

    @property
    def spec(self) -> Spec:
        """The (single) concrete root spec."""
        return self.roots[0]

    @property
    def number_of_builds(self) -> int:
        return len(self.built)

    @property
    def number_reused(self) -> int:
        return len(self.reused)

    def summary(self) -> str:
        lines = [f"concretized {len(self.specs)} nodes "
                 f"({self.number_of_builds} to build, {self.number_reused} reused)"]
        for root in self.roots:
            lines.append(root.tree())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (persistent solve caches, see repro.spack.store)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-serializable description of this result.

        Everything needed to *replay* the result survives the round trip:
        the concrete root DAGs, auxiliary specs, optimization costs, the
        built/reused partition, timings, and statistics.  The raw solver
        :class:`~repro.asp.control.Model` does not — it is an in-memory
        artifact of the solve and is restored as ``None``.
        """
        reachable = set()
        for root in self.roots:
            for node in root.traverse():
                reachable.add(node.name)
        return {
            "roots": [root.to_dict() for root in self.roots],
            "extra_specs": {
                name: spec.to_dict()
                for name, spec in sorted(self.specs.items())
                if name not in reachable
            },
            "costs": {str(level): cost for level, cost in self.costs.items()},
            "timings": dict(self.timings),
            "statistics": self.statistics,
            "built": sorted(self.built),
            "reused": sorted(self.reused),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ConcretizationResult":
        """Rebuild a result produced by :meth:`to_dict` (``model`` is None)."""
        roots: List[Spec] = []
        specs: Dict[str, Spec] = {}
        for payload in data["roots"]:
            root = Spec.from_dict(payload)
            roots.append(root)
            for node in root.traverse():
                specs[node.name] = node
        for name, payload in data.get("extra_specs", {}).items():
            if name not in specs:
                specs[name] = Spec.from_dict(payload)
        return cls(
            roots=roots,
            specs=specs,
            costs={int(level): cost for level, cost in data.get("costs", {}).items()},
            timings=dict(data.get("timings", {})),
            statistics=dict(data.get("statistics", {})),
            built=set(data.get("built", ())),
            reused=set(data.get("reused", ())),
            model=None,
        )


@dataclass
class UnsatOutcome:
    """A cacheable unsatisfiable outcome: the message plus its conflict core.

    What the solve cache stores for unsat solves — keyed by the same
    content-hash keys as satisfiable results — so warm replays raise an
    :class:`UnsatisfiableSpecError` with an explanation identical to the
    original solve's, without re-running MUS extraction.
    """

    message: str
    explanation: List[ConstraintProvenance] = field(default_factory=list)
    specs: List[str] = field(default_factory=list)

    @classmethod
    def from_error(cls, error: UnsatisfiableSpecError) -> "UnsatOutcome":
        return cls(str(error), list(error.explanation), list(error.specs))

    def to_error(self) -> UnsatisfiableSpecError:
        """A fresh error to raise (never re-raise a cached exception object)."""
        return UnsatisfiableSpecError(
            self.message, explanation=list(self.explanation), specs=list(self.specs)
        )

    def to_dict(self) -> Dict:
        return {
            "unsat": True,
            "message": self.message,
            "explanation": [p.to_dict() for p in self.explanation],
            "specs": list(self.specs),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "UnsatOutcome":
        return cls(
            message=data.get("message", ""),
            explanation=[
                ConstraintProvenance.from_dict(p) for p in data.get("explanation", ())
            ],
            specs=list(data.get("specs", ())),
        )


def result_from_solve(
    abstract: Sequence[Spec],
    result,
    statistics: Dict[str, object],
    explainer=None,
) -> ConcretizationResult:
    """Turn a satisfiable solver outcome into a :class:`ConcretizationResult`
    (shared by :class:`Concretizer` and the batch concretization session).

    ``explainer`` is an optional zero-argument callable returning the
    minimal conflict core (a list of
    :class:`~repro.spack.errors.ConstraintProvenance`); it is only invoked
    on unsat, and any failure inside it degrades to an explanation-free
    error rather than masking the unsat itself.
    """
    if not result.satisfiable:
        requested = ", ".join(str(s) for s in abstract)
        explanation: List[ConstraintProvenance] = []
        if explainer is not None:
            try:
                explanation = list(explainer())
            except Exception:
                explanation = []
        message = f"no valid concretization exists for: {requested}"
        if explanation:
            core = "\n".join(
                f"  {index}. {entry.describe()}"
                for index, entry in enumerate(explanation, 1)
            )
            message = f"{message}\nminimal conflict core:\n{core}"
        raise UnsatisfiableSpecError(
            message,
            explanation=explanation,
            specs=[str(s) for s in abstract],
        )

    specs_by_name = extract_specs(result.model)
    roots = root_specs(result.model, specs_by_name)
    built, reused = built_and_reused(result.model)

    return ConcretizationResult(
        roots=roots,
        specs=specs_by_name,
        costs=result.costs,
        timings=result.timings,
        statistics=statistics,
        built=built,
        reused=reused,
        model=result.model,
    )


class Concretizer:
    """The new, complete, optimizing concretizer."""

    def __init__(
        self,
        repo: Optional[Repository] = None,
        platform: Optional[Platform] = None,
        compilers: Optional[CompilerRegistry] = None,
        store=None,
        reuse: bool = False,
        config: Optional[SolverConfig] = None,
    ):
        self.repo = repo or builtin_repository()
        self.platform = platform or default_platform()
        self.compilers = compilers or CompilerRegistry()
        self.store = store
        self.reuse = reuse
        self.config = config or SolverConfig.preset("tweety")

    # ------------------------------------------------------------------

    def _as_specs(self, specs: Sequence[Union[str, Spec]]) -> List[Spec]:
        parsed: List[Spec] = []
        for spec in specs:
            parsed.append(parse_spec(spec) if isinstance(spec, str) else spec.copy())
        return parsed

    def solve(self, specs: Sequence[Union[str, Spec]]) -> ConcretizationResult:
        """Concretize one or more root specs together (unified concretization)."""
        abstract = self._as_specs(specs)
        control = Control(config=self.config)

        # setup: generate the problem facts
        control.timer.start("setup")
        encoder = ProblemEncoder(
            self.repo,
            platform=self.platform,
            compilers=self.compilers,
            store=self.store,
            reuse=self.reuse,
        )
        facts = encoder.encode(abstract)
        control.timer.stop("setup")

        # load / ground / solve
        control.load(logic_program())
        control.add_facts(facts)
        control.ground()
        result = control.solve()

        statistics: Dict[str, object] = {
            "encoding": encoder.stats.as_dict(),
            **result.statistics,
        }

        def explainer():
            return explain_unsat(facts, encoder.provenance, self.config)

        return result_from_solve(abstract, result, statistics, explainer=explainer)

    def concretize(self, spec: Union[str, Spec]) -> ConcretizationResult:
        """Concretize a single abstract spec."""
        return self.solve([spec])


def concretize(
    spec: Union[str, Spec],
    repo: Optional[Repository] = None,
    reuse: bool = False,
    store=None,
    **kwargs,
) -> ConcretizationResult:
    """Module-level convenience wrapper (mirrors ``spack spec``)."""
    concretizer = Concretizer(repo=repo, reuse=reuse, store=store, **kwargs)
    return concretizer.concretize(spec)
