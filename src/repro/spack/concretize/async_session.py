"""Async concretization sessions: ``await``-able solves over the worker pool.

A batch :class:`~repro.spack.concretize.session.ConcretizationSession` is a
*blocking* API: ``solve(specs)`` returns when the whole batch is done.  A
service concretizing on behalf of many users needs the opposite shape — it
wants to ``await`` individual requests, stream results out as they finish,
and cancel work whose requester went away, all without blocking the event
loop on a CPU-bound solver.  :class:`AsyncConcretizationSession` is that
front-end:

* ``await session.concretize(spec)`` — one spec through the session caches;
* ``await session.concretize_batch(specs)`` — a whole batch, input order,
  element-wise identical to the sequential session;
* ``async for index, result in session.as_completed(specs)`` — results stream
  back in *completion* order, each tagged with its input index, so the first
  answer is available long before the slowest solve finishes.

The execution model reuses the worker-pool fan-out underneath the sync
session, layer by layer:

* the cache pass runs on the event loop: hits (and in-batch duplicates)
  yield immediately and never lease a worker;
* the shared grounded base is built once per spec family in a helper thread
  (serialized, so concurrent calls cannot race the session's base memo)
  *before* any worker starts — forked process workers inherit it for free;
* every cache-missing spec is solved by
  :func:`~repro.spack.concretize.session._worker_solve` on a per-call
  executor (fork-based processes where available, threads otherwise), with a
  session-wide :class:`asyncio.Semaphore` bounding in-flight solves across
  *all* concurrent calls (``max_concurrency``);
* cancelling an ``as_completed`` consumer (or a ``concretize_batch`` task)
  cancels the not-yet-started pool futures, returns the leased workers, and
  shuts the executor down — the event loop never hangs on abandoned work;
* a worker process that dies mid-solve (:class:`BrokenProcessPool`) degrades
  that call to sequential solving on a fallback thread instead of failing the
  batch, mirroring the sync session's degradation contract.  Solver errors
  (e.g. an unsatisfiable spec) are *not* degradation: they propagate to the
  awaiter exactly like the sequential path raises them.

Results, statistics, and caches are those of the wrapped sync session — an
async session over the same inputs is element-wise identical to
``ConcretizationSession.solve``, and mixing sync and async use of one
session is safe (the cache layers in :mod:`repro.spack.store` are
lock-protected).
"""

from __future__ import annotations

import asyncio
import multiprocessing
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import AsyncIterator, List, Optional, Sequence, Tuple, Union

from repro.asp.configs import SolverPreset
from repro.spack.concretize.concretizer import ConcretizationResult, UnsatOutcome
from repro.spack.concretize.session import (
    _WORKER_BATCHES,
    _WORKER_BATCH_IDS,
    ConcretizationSession,
    SessionStatistics,
    _worker_solve,
    default_worker_count,
)
from repro.spack.errors import UnsatisfiableSpecError
from repro.spack.spec import Spec


class AsyncConcretizationSession:
    """An ``asyncio`` front-end over a :class:`ConcretizationSession`.

    Construct it either around an existing session (``AsyncConcretizationSession(
    session=sync_session)``) or with the same arguments as
    :class:`ConcretizationSession` (they are forwarded verbatim — including
    ``session_config=``, a
    :class:`~repro.spack.concretize.config.SessionConfig`, and the
    deprecated per-knob keywords it replaces).  Additional knobs:

    * ``max_concurrency`` — the semaphore bound on simultaneously leased
      workers across *all* concurrent calls on this session.  Defaults to
      ``session_config.max_concurrency`` when set, else the wrapped
      session's ``workers`` when that is > 1, else the scheduler-visible
      CPU count (:func:`default_worker_count`).

    Use it as an async context manager (``async with``) or call
    :meth:`aclose` when done to release the fallback thread pool.
    """

    def __init__(
        self,
        *args,
        session: Optional[ConcretizationSession] = None,
        max_concurrency: Optional[int] = None,
        **kwargs,
    ):
        if session is not None and (args or kwargs):
            raise ValueError(
                "pass either an existing session= or ConcretizationSession "
                "arguments, not both"
            )
        self.session = session if session is not None else ConcretizationSession(*args, **kwargs)
        if max_concurrency is None:
            max_concurrency = self.session.session_config.max_concurrency
        if max_concurrency is None:
            max_concurrency = (
                self.session.workers
                if self.session.workers > 1
                else default_worker_count()
            )
        if int(max_concurrency) < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency!r}")
        self.max_concurrency = int(max_concurrency)
        # loop-bound primitives, created lazily inside the running loop (one
        # session object may serve several sequential asyncio.run loops)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._ground_lock: Optional[asyncio.Lock] = None
        self._fallback: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> SessionStatistics:
        """The wrapped session's sharing counters."""
        return self.session.stats

    def statistics(self):
        return self.session.statistics()

    def content_hash(self) -> str:
        return self.session.content_hash()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AsyncConcretizationSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Release the fallback thread pool (leased pool workers are per-call
        and already returned by then)."""
        if self._fallback is not None:
            self._fallback.shutdown(wait=False, cancel_futures=True)
            self._fallback = None

    def _primitives(self) -> Tuple[asyncio.Semaphore, asyncio.Lock]:
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
            self._ground_lock = asyncio.Lock()
        return self._semaphore, self._ground_lock

    def _fallback_pool(self) -> ThreadPoolExecutor:
        """The helper thread pool (base grounding, degraded solves)."""
        if self._fallback is None:
            self._fallback = ThreadPoolExecutor(
                max_workers=self.max_concurrency, thread_name_prefix="repro-async"
            )
        return self._fallback

    # ------------------------------------------------------------------
    # Public solve API
    # ------------------------------------------------------------------

    async def concretize(
        self, spec: Union[str, Spec], preset=None
    ) -> ConcretizationResult:
        """Concretize one abstract spec through the session caches."""
        results = await self.concretize_batch([spec], preset=preset)
        return results[0]

    async def concretize_batch(
        self, specs: Sequence[Union[str, Spec]], preset=None
    ) -> List[ConcretizationResult]:
        """Concretize every spec; results in *input* order.

        Element-wise identical to ``ConcretizationSession.solve(specs)`` —
        the work just runs off the event loop, bounded by
        ``max_concurrency``.

        The underlying :meth:`as_completed` stream is explicitly closed on
        *every* exit — including cancellation of the awaiting task (e.g. a
        service deadline firing via ``asyncio.wait_for``) — so leased
        semaphore permits and in-flight executor futures are released
        deterministically, not whenever the garbage collector notices the
        abandoned generator.
        """
        results: List[Optional[ConcretizationResult]] = [None] * len(specs)
        stream = self.as_completed(specs, preset=preset)
        try:
            async for index, result in stream:
                results[index] = result
        finally:
            await stream.aclose()
        return results

    async def as_completed(
        self, specs: Sequence[Union[str, Spec]], preset=None
    ) -> AsyncIterator[Tuple[int, ConcretizationResult]]:
        """Stream ``(input index, result)`` pairs in *completion* order.

        Cache hits and in-batch duplicates yield first (they never lease a
        worker); each remaining distinct spec is delta-ground + solved on the
        pool and yielded the moment it finishes, so the first result arrives
        in roughly one solve's latency regardless of the batch size.  The
        union of yielded pairs is element-wise identical to the sequential
        session's ``solve``.

        Cancelling the consuming task (or closing the generator early)
        cancels pending pool futures and returns the leased workers; a solver
        error propagates to the consumer after the same cleanup.

        ``preset`` pins every solve in the batch to one validated
        :class:`~repro.asp.configs.SolverPreset` (same contract as
        ``ConcretizationSession.solve``); it bypasses the portfolio race.
        """
        session = self.session
        if preset is not None:
            preset = SolverPreset.from_value(preset)
        semaphore, ground_lock = self._primitives()
        loop = asyncio.get_running_loop()
        abstract = session._as_specs(specs)

        # Unsat parity with the sync paths: failed specs are collected (and
        # their outcomes cached) rather than aborting the stream mid-batch;
        # after every satisfiable result has been yielded, the failure with
        # the earliest *input* index is raised — the same exception, with the
        # same explanation, the sequential session would have raised first.
        failures: List[Tuple[int, UnsatisfiableSpecError]] = []

        def raise_earliest():
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]

        # -- cache pass (event-loop thread, like the parent in _solve_parallel)
        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, spec in enumerate(abstract):
            session.stats.specs_solved += 1
            key = session._solve_key(spec)
            if key in pending:
                session.stats.solve_cache_hits += 1
                pending[key].append(index)
                continue
            cached = session.solve_cache.get(key)
            if cached is not None:
                session.stats.solve_cache_hits += 1
                if isinstance(cached, UnsatOutcome):
                    failures.append((index, cached.to_error()))
                    continue
                yield index, session._replay(cached)
                continue
            session.stats.solve_cache_misses += 1
            pending[key] = [index]
        if not pending:
            if failures:
                raise_earliest()
            return

        keys = list(pending.keys())
        unique = [abstract[indices[0]] for indices in pending.values()]

        # -- pre-ground the shared bases off-loop, serialized, before fan-out
        families = {session._base_key([spec]) for spec in unique}
        demand_token = next(_WORKER_BATCH_IDS)
        session._base_demands[demand_token] = len(families)
        try:
            async with ground_lock:
                for spec in unique:
                    await loop.run_in_executor(
                        self._fallback_pool(), session._base_for, [spec]
                    )

            async def finish(unique_index: int, concretization: ConcretizationResult):
                """Cache bookkeeping for one solved spec (event-loop thread)."""
                session.stats.delta_groundings += 1
                pristine = session._copy_result(concretization)
                session.solve_cache.put(keys[unique_index], pristine)
                indices = pending[keys[unique_index]]
                replays = [
                    (duplicate, session._replay(pristine))
                    for duplicate in indices[1:]
                ]
                return [(indices[0], concretization)] + replays

            if len(unique) == 1:
                # a single miss gains nothing from a pool; solve it on the
                # fallback thread so the loop stays responsive.  worker=True:
                # off-loop solves must not mutate the session's base memo or
                # statistics (a concurrent call may be doing the same)
                async with semaphore:
                    try:
                        # race=True: off-thread state isolation is what
                        # worker=True is for here; a portfolio race is still
                        # welcome on the fallback thread (no pool to nest in).
                        # Extra kwargs only when those features are active
                        # (tests wrap _solve_uncached with the base signature)
                        kwargs = {"worker": True}
                        if preset is not None:
                            kwargs["preset"] = preset
                        elif session.portfolio is not None:
                            kwargs["race"] = True
                        concretization = await loop.run_in_executor(
                            self._fallback_pool(),
                            lambda: session._solve_uncached(unique[0], **kwargs),
                        )
                    except UnsatisfiableSpecError as error:
                        session.stats.delta_groundings += 1
                        session.solve_cache.put(keys[0], UnsatOutcome.from_error(error))
                        failures.append((pending[keys[0]][0], error))
                        concretization = None
                if concretization is not None:
                    for pair in await finish(0, concretization):
                        yield pair
                if failures:
                    raise_earliest()
                return

            # -- fan out: one executor per call, workers leased under the
            #    session-wide semaphore
            batch_token = next(_WORKER_BATCH_IDS)
            _WORKER_BATCHES[batch_token] = (session, list(unique), preset)
            backend = session._resolve_backend()
            executor = self._make_executor(backend, len(unique))
            tasks = [
                asyncio.ensure_future(
                    self._solve_on_pool(
                        executor, backend, batch_token, i, unique[i], preset
                    )
                )
                for i in range(len(unique))
            ]
            try:
                for completed in asyncio.as_completed(tasks):
                    unique_index, outcome = await completed
                    if isinstance(outcome, UnsatisfiableSpecError):
                        session.stats.delta_groundings += 1
                        session.solve_cache.put(
                            keys[unique_index], UnsatOutcome.from_error(outcome)
                        )
                        failures.append((pending[keys[unique_index]][0], outcome))
                        continue
                    for pair in await finish(unique_index, outcome):
                        yield pair
            finally:
                # cancellation/error path: return leased workers cleanly.
                # Pending pool futures are cancelled; running solves finish
                # in the (non-blocking) executor shutdown and their workers
                # exit — the event loop never waits on them.
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
                _WORKER_BATCHES.pop(batch_token, None)
            if failures:
                raise_earliest()
        finally:
            session._base_demands.pop(demand_token, None)

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------

    def _make_executor(self, backend: str, size: int) -> Optional[Executor]:
        """A per-call executor, or None to run everything on the fallback
        threads (pool infrastructure failures degrade, never fail)."""
        workers = min(self.max_concurrency, size)
        try:
            if backend == "process":
                context = multiprocessing.get_context("fork")
                return ProcessPoolExecutor(max_workers=workers, mp_context=context)
            return ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-async-pool"
            )
        except (OSError, ValueError, RuntimeError):
            return None

    async def _solve_on_pool(
        self,
        executor: Optional[Executor],
        backend: str,
        batch_token: int,
        index: int,
        spec: Spec,
        preset=None,
    ) -> Tuple[int, Union[ConcretizationResult, UnsatisfiableSpecError]]:
        """Solve one cache-missing spec under the concurrency semaphore.

        Pool path first; a broken pool (a worker process died, or the
        executor could not start) degrades *this* solve to the fallback
        thread — results stay element-wise identical, the event loop stays
        live.  An unsatisfiable spec is a per-spec *outcome*, not a pool
        failure: its error (explanation intact across process pickling) is
        returned in the spec's slot for the consumer to cache and raise.
        """
        semaphore, _ = self._primitives()
        loop = asyncio.get_running_loop()
        async with semaphore:
            if executor is not None:
                try:
                    pool_future = executor.submit(_worker_solve, batch_token, index)
                except RuntimeError:
                    pool_future = None  # executor already shut down: degrade
                if pool_future is not None:
                    try:
                        result = await asyncio.wrap_future(pool_future)
                    except BrokenProcessPool:
                        pass  # worker died mid-solve: degrade to sequential
                    except UnsatisfiableSpecError as error:
                        self.session.stats.parallel_solves += 1
                        return index, error
                    except asyncio.CancelledError:
                        pool_future.cancel()  # return the leased worker
                        raise
                    else:
                        self.session.stats.parallel_solves += 1
                        session_stats = result.statistics.get("session")
                        if isinstance(session_stats, dict):
                            session_stats["parallel_backend"] = backend
                            session_stats["async"] = True
                        return index, result
            # worker=True: several degraded solves may run on fallback
            # threads at once, and only the worker path is guaranteed not to
            # mutate shared session state (base LRU, statistics)
            try:
                kwargs = {"worker": True}
                if preset is not None:
                    kwargs["preset"] = preset
                result = await loop.run_in_executor(
                    self._fallback_pool(),
                    lambda: self.session._solve_uncached(spec, **kwargs),
                )
            except UnsatisfiableSpecError as error:
                return index, error
            session_stats = result.statistics.get("session")
            if isinstance(session_stats, dict):
                session_stats["async"] = True
            return index, result
