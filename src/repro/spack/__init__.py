"""A Spack-like package-manager substrate.

This subpackage models the parts of Spack the paper's concretizer needs:

* :mod:`repro.spack.version` — versions, ranges, and ``@1.2:`` constraints;
* :mod:`repro.spack.architecture` — microarchitecture targets, families,
  operating systems, and platforms;
* :mod:`repro.spack.compilers` — compilers, versions, and which targets each
  can generate code for;
* :mod:`repro.spack.spec` / :mod:`repro.spack.spec_parser` — the spec DAG
  model and the sigil syntax of Table I;
* :mod:`repro.spack.package` / :mod:`repro.spack.directives` — the package
  DSL (Figure 2);
* :mod:`repro.spack.repo` — package repositories and possible-dependency
  expansion;
* :mod:`repro.spack.store` — the installed-package database / buildcache;
* :mod:`repro.spack.concretize` — the ASP-based concretizer (the paper's
  contribution) and the original greedy concretizer (the baseline);
* :mod:`repro.spack.service` — the HTTP concretization service.

The names re-exported here (and listed in ``__all__``) are the supported
public surface: the spec/version model, the sessions and their
:class:`~repro.spack.concretize.config.SessionConfig`, the service, the
error hierarchy, and :func:`~repro.spack.concretize.explain.explain_unsat`.
``tools/check_docs.py`` holds the README and docs to this surface.
"""

from repro.spack.concretize import (
    AsyncConcretizationSession,
    ConcretizationResult,
    ConcretizationSession,
    ParallelConcretizationSession,
    SessionConfig,
    explain_unsat,
)
from repro.spack.errors import (
    SpackError,
    SpecSyntaxError,
    UnknownPackageError,
    UnsatisfiableSpecError,
)
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.version import Version, VersionList, VersionRange, ver

__all__ = [
    "AsyncConcretizationSession",
    "ConcretizationResult",
    "ConcretizationSession",
    "ParallelConcretizationSession",
    "SessionConfig",
    "SpackError",
    "Spec",
    "SpecSyntaxError",
    "UnknownPackageError",
    "UnsatisfiableSpecError",
    "Version",
    "VersionList",
    "VersionRange",
    "explain_unsat",
    "parse_spec",
    "ver",
]
