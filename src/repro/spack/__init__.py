"""A Spack-like package-manager substrate.

This subpackage models the parts of Spack the paper's concretizer needs:

* :mod:`repro.spack.version` — versions, ranges, and ``@1.2:`` constraints;
* :mod:`repro.spack.architecture` — microarchitecture targets, families,
  operating systems, and platforms;
* :mod:`repro.spack.compilers` — compilers, versions, and which targets each
  can generate code for;
* :mod:`repro.spack.spec` / :mod:`repro.spack.spec_parser` — the spec DAG
  model and the sigil syntax of Table I;
* :mod:`repro.spack.package` / :mod:`repro.spack.directives` — the package
  DSL (Figure 2);
* :mod:`repro.spack.repo` — package repositories and possible-dependency
  expansion;
* :mod:`repro.spack.store` — the installed-package database / buildcache;
* :mod:`repro.spack.concretize` — the ASP-based concretizer (the paper's
  contribution) and the original greedy concretizer (the baseline).
"""

from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.version import Version, VersionList, VersionRange, ver

__all__ = [
    "Spec",
    "Version",
    "VersionList",
    "VersionRange",
    "parse_spec",
    "ver",
]
