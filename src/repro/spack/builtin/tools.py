"""Performance tools and developer tools (HPCToolkit, TAU-like stack, dyninst...)."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, Package


class Hpctoolkit(AutotoolsPackage):
    """Integrated suite of tools for measurement and analysis of program performance.

    The paper's Section VI-B.1 example: ``depends_on('mpi', when='+mpi')`` with
    ``mpi`` defaulting to False means the greedy concretizer cannot solve
    ``hpctoolkit ^mpich``, while the ASP concretizer flips the variant.
    """

    version("2023.03.01")
    version("2022.10.01")
    version("2022.04.15")

    variant("mpi", default=False, description="Build the MPI analysis tool hpcprof-mpi")
    variant("papi", default=True, description="Use PAPI hardware counters")
    variant("cuda", default=False, description="Support CUDA kernel profiling")
    variant("rocm", default=False, description="Support ROCm kernel profiling")
    variant("viewer", default=False, description="Also install hpcviewer")

    depends_on("mpi", when="+mpi")
    depends_on("papi", when="+papi")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")
    depends_on("boost")
    depends_on("binutils")
    depends_on("dyninst")
    depends_on("elfutils")
    depends_on("intel-tbb")
    depends_on("intel-xed", when="target=x86_64")
    depends_on("libdwarf")
    depends_on("libmonitor")
    depends_on("libunwind")
    depends_on("xz")
    depends_on("zlib")
    depends_on("hpcviewer", when="+viewer")
    conflicts("%intel", msg="hpctoolkit does not build with classic Intel compilers")


class Hpcviewer(Package):
    """Java-based viewer for HPCToolkit databases."""

    version("2023.04")
    version("2022.10")
    depends_on("openjdk")


class Openjdk(Package):
    """The Java Development Kit."""

    version("17.0.5_8")
    version("11.0.17_8")


class Dyninst(CMakePackage):
    """Tools for binary instrumentation, analysis, and modification."""

    version("12.3.0")
    version("12.1.0")
    version("11.0.1")

    variant("openmp", default=True, description="OpenMP support for parallel parsing")
    variant("static", default=False, description="Also build static libraries")
    depends_on("boost@1.70:")
    depends_on("intel-tbb")
    depends_on("elfutils")
    depends_on("libiberty")
    conflicts("%intel", msg="dyninst requires gcc or clang")


class Libiberty(AutotoolsPackage):
    """GNU libiberty utility functions."""

    version("2.40")
    version("2.37")


class Tau(Package):
    """Tuning and Analysis Utilities: profiling and tracing toolkit."""

    version("2.32.1")
    version("2.31.1")

    variant("mpi", default=True, description="MPI measurement")
    variant("python", default=False, description="Python instrumentation")
    variant("cuda", default=False, description="CUDA measurement")
    variant("papi", default=True, description="PAPI counters")
    variant("otf2", default=True, description="OTF2 trace output")
    depends_on("mpi", when="+mpi")
    depends_on("python", when="+python")
    depends_on("cuda", when="+cuda")
    depends_on("papi", when="+papi")
    depends_on("otf2", when="+otf2")
    depends_on("pdt")
    depends_on("binutils")
    depends_on("zlib")


class Pdt(AutotoolsPackage):
    """Program Database Toolkit for source analysis."""

    version("3.25.2")
    version("3.25.1")


class Otf2(AutotoolsPackage):
    """Open Trace Format 2."""

    version("3.0.2")
    version("2.3")
    depends_on("python", type="build")


class Gperftools(AutotoolsPackage):
    """Fast malloc and performance analysis tools from Google."""

    version("2.10")
    version("2.9.1")
    variant("libunwind", default=True, description="Use libunwind for stack traces")
    depends_on("libunwind", when="+libunwind")


class Memkind(AutotoolsPackage):
    """User-extensible heap manager for heterogeneous memory."""

    version("1.14.0")
    version("1.13.0")
    depends_on("numactl")
    conflicts("target=aarch64:", msg="memkind requires x86 or ppc NUMA semantics here")


class Umap(CMakePackage):
    """User-space mmap page management."""

    version("2.1.0")
    version("2.0.0")


class Metall(CMakePackage):
    """Persistent memory allocator on memory-mapped files."""

    version("0.25")
    version("0.23.1")
    depends_on("boost@1.64:")


class Legion(CMakePackage):
    """Data-centric parallel programming system."""

    version("23.03.0")
    version("22.12.0")

    variant("cuda", default=False, description="CUDA support")
    variant("openmp", default=True, description="OpenMP processors")
    variant("hdf5", default=False, description="HDF5 attach support")
    variant("network", default="gasnet", values=("gasnet", "mpi", "none"), description="Networking layer")
    depends_on("gasnet", when="network=gasnet")
    depends_on("mpi", when="network=mpi")
    depends_on("cuda", when="+cuda")
    depends_on("hdf5", when="+hdf5")
    depends_on("zlib")
    depends_on("python", type="build")


class Hpx(CMakePackage):
    """C++ standard library for concurrency and parallelism."""

    version("1.9.0")
    version("1.8.1")

    variant("cuda", default=False, description="CUDA support")
    variant("networking", default="mpi", values=("mpi", "tcp", "none"), description="Parcelport")
    variant("examples", default=False, description="Build examples")
    depends_on("boost@1.71:")
    depends_on("hwloc")
    depends_on("gperftools")
    depends_on("asio")
    depends_on("mpi", when="networking=mpi")
    depends_on("cuda", when="+cuda")
    conflicts("%gcc@:8", when="@1.9:", msg="HPX 1.9 requires C++17")


class Asio(AutotoolsPackage):
    """C++ library for network and low-level I/O programming."""

    version("1.28.0")
    version("1.24.0")


class Charliecloud(AutotoolsPackage):
    """Unprivileged containers for HPC."""

    version("0.32")
    version("0.30")
    variant("docs", default=False, description="Build documentation")
    depends_on("python@3.6:")
    depends_on("py-pip", type="build")


class Nrm(Package):
    """Node Resource Manager."""

    version("0.7.0")
    version("0.6.0")
    depends_on("python")
    depends_on("py-numpy")
    depends_on("py-pyyaml")
    depends_on("libzmq")


class Turbine(AutotoolsPackage):
    """Swift/T runtime for extreme-scale workflows."""

    version("1.3.0")
    version("1.2.3")
    depends_on("adlbx")
    depends_on("mpi")
    depends_on("tcl")
    depends_on("zsh", type="build")
    depends_on("swig", type="build")


class Adlbx(AutotoolsPackage):
    """Asynchronous Dynamic Load Balancing library (eXtended)."""

    version("1.0.0")
    version("0.9.2")
    depends_on("exmcutils")
    depends_on("mpi")


class Exmcutils(AutotoolsPackage):
    """ExM C utilities library."""

    version("0.6.0")
    version("0.5.7")


class Tcl(AutotoolsPackage):
    """Tool Command Language."""

    version("8.6.12")
    version("8.6.11")
    depends_on("zlib")


class Zsh(AutotoolsPackage):
    """The Z shell."""

    version("5.8.1")
    version("5.8")
    depends_on("ncurses")
    depends_on("pcre2")


class Papyrus(CMakePackage):
    """Parallel aggregate persistent storage (ECP)."""

    version("1.0.2")
    version("1.0.1")
    depends_on("mpi")


class Aml(AutotoolsPackage):
    """Memory management library for explicit memory tiers."""

    version("0.2.1")
    version("0.2.0")
    variant("cuda", default=False, description="CUDA memory tier")
    depends_on("numactl")
    depends_on("cuda", when="+cuda")


class Bolt(CMakePackage):
    """OpenMP runtime over lightweight threads (Argobots)."""

    version("2.0")
    version("1.0.1")
    depends_on("argobots")
    depends_on("autoconf", type="build")
    depends_on("automake", type="build")


class Libquo(AutotoolsPackage):
    """Dynamic process binding for MPI+X applications."""

    version("1.3.1")
    version("1.3")
    depends_on("mpi")
    depends_on("libtool", type="build")


class Loki(Package):
    """C++ design-pattern template library."""

    version("0.1.7")
