"""Python and the py-* ecosystem used throughout E4S."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, Package, PythonPackage


class Python(Package):
    """The Python interpreter."""

    version("3.11.2")
    version("3.10.10")
    version("3.9.16")
    version("3.8.16")
    version("2.7.18", deprecated=True)

    variant("optimizations", default=False, description="Enable PGO/LTO")
    variant("ssl", default=True, description="Build the ssl module")
    variant("sqlite3", default=True, description="Build the sqlite3 module")
    variant("readline", default=True, description="Build the readline module")
    variant("tkinter", default=False, description="Build tkinter")
    variant("shared", default=True, description="Build libpython as a shared library")

    depends_on("openssl", when="+ssl")
    depends_on("sqlite", when="+sqlite3")
    depends_on("readline", when="+readline")
    depends_on("bzip2")
    depends_on("expat")
    depends_on("gdbm")
    depends_on("gettext")
    depends_on("libffi")
    depends_on("xz")
    depends_on("zlib")
    depends_on("util-linux-uuid")
    depends_on("pkgconfig", type="build")


class PySetuptools(Package):
    """Python packaging tools (kept out of PythonPackage to avoid self-dependency)."""

    name = "py-setuptools"

    version("67.6.0")
    version("63.4.3")
    version("59.4.0")
    depends_on("python@3.7:", type=("build", "run"))


class PyPip(Package):
    name = "py-pip"

    version("23.0")
    version("22.2.2")
    depends_on("python@3.7:", type=("build", "run"))


class PyWheel(Package):
    name = "py-wheel"

    version("0.40.0")
    version("0.37.1")
    depends_on("python@3.7:", type=("build", "run"))
    depends_on("py-setuptools", type="build")


class PyCython(PythonPackage):
    """Optimising static compiler for Python."""

    version("0.29.34")
    version("0.29.32")
    version("3.0.0")


class PyNumpy(PythonPackage):
    """Fundamental package for scientific computing with Python."""

    version("1.24.3")
    version("1.23.5")
    version("1.21.6")

    variant("blas", default=True, description="Link against an optimized BLAS")
    variant("lapack", default=True, description="Link against an optimized LAPACK")
    depends_on("blas", when="+blas")
    depends_on("lapack", when="+lapack")
    depends_on("py-cython@0.29.30:", type="build")
    depends_on("python@3.8:", when="@1.23:", type=("build", "run"))


class PyScipy(PythonPackage):
    """Scientific algorithms for Python."""

    version("1.10.1")
    version("1.9.3")
    version("1.8.1")

    depends_on("py-numpy@1.19.5:")
    depends_on("blas")
    depends_on("lapack")
    depends_on("py-cython@0.29.32:", type="build")
    depends_on("py-pybind11", type="build")


class PyPybind11(PythonPackage):
    """Seamless operability between C++11 and Python."""

    name = "py-pybind11"

    version("2.10.4")
    version("2.9.2")
    depends_on("cmake", type="build")


class PyMpi4py(PythonPackage):
    """Python bindings for MPI."""

    name = "py-mpi4py"

    version("3.1.4")
    version("3.1.2")
    depends_on("mpi")
    depends_on("py-cython", type="build")


class PyH5py(PythonPackage):
    """Python interface to HDF5."""

    name = "py-h5py"

    version("3.8.0")
    version("3.7.0")

    variant("mpi", default=True, description="Build with MPI support")
    depends_on("hdf5+hl")
    depends_on("hdf5+mpi", when="+mpi")
    depends_on("mpi", when="+mpi")
    depends_on("py-mpi4py", when="+mpi")
    depends_on("py-numpy@1.17.3:")
    depends_on("py-cython@0.29:", type="build")
    depends_on("py-pkgconfig", type="build")


class PyPkgconfig(PythonPackage):
    """Python interface to pkg-config."""

    name = "py-pkgconfig"

    version("1.5.5")
    depends_on("pkgconfig", type="run")


class PyYaml(PythonPackage):
    """YAML parser and emitter for Python."""

    name = "py-pyyaml"

    version("6.0")
    version("5.4.1")
    variant("libyaml", default=True, description="Use the fast libyaml bindings")
    depends_on("libyaml", when="+libyaml")
    depends_on("py-cython", when="+libyaml", type="build")


class PyJsonschema(PythonPackage):
    name = "py-jsonschema"

    version("4.17.3")
    version("4.16.0")
    depends_on("py-attrs", type=("build", "run"))


class PyAttrs(PythonPackage):
    name = "py-attrs"

    version("22.2.0")
    version("21.4.0")


class PyPandas(PythonPackage):
    """Data analysis library."""

    name = "py-pandas"

    version("2.0.1")
    version("1.5.3")
    depends_on("py-numpy@1.20.3:")
    depends_on("py-python-dateutil", type=("build", "run"))
    depends_on("py-pytz", type=("build", "run"))
    depends_on("py-cython@0.29.33:", type="build")


class PyPythonDateutil(PythonPackage):
    name = "py-python-dateutil"

    version("2.8.2")
    depends_on("py-six", type=("build", "run"))


class PyPytz(PythonPackage):
    name = "py-pytz"

    version("2023.3")
    version("2022.7.1")


class PySix(PythonPackage):
    name = "py-six"

    version("1.16.0")
    version("1.15.0")
