"""The builtin package repository: an E4S-style catalog.

The packages here model (a representative subset of) the Extreme-scale
Scientific Software Stack the paper evaluates on: the virtual MPI/BLAS/LAPACK
ecosystem, the build-tool tangle (cmake, python, perl, autotools), math
libraries, I/O libraries, performance tools, GPU runtimes, and a set of
application roots.  Metadata (versions, variants, conditional dependencies,
conflicts, virtual providers) approximates the real Spack recipes closely
enough to reproduce the paper's qualitative behaviour:

* packages that can reach ``mpi`` drag in hundreds of possible dependencies
  (the two-cluster structure of Figures 7a–7c);
* conditional dependencies such as ``hpctoolkit``'s ``depends_on('mpi',
  when='+mpi')`` reproduce the Section VI-B usability cases;
* ``berkeleygw`` reproduces the provider-specialization case;
* ``mpilander`` (an MPI provider that needs cmake) creates the circular
  *possible* dependencies discussed in Section VII-B.
"""

from __future__ import annotations

import inspect
from typing import List, Type

from repro.spack.package import PackageBase
from repro.spack.repo import Repository


def _module_packages(module) -> List[Type[PackageBase]]:
    classes = []
    for _, obj in sorted(vars(module).items()):
        if (
            inspect.isclass(obj)
            and issubclass(obj, PackageBase)
            and obj.__module__ == module.__name__
        ):
            classes.append(obj)
    return classes


def all_package_classes() -> List[Type[PackageBase]]:
    """Every package class in the builtin catalog."""
    from repro.spack.builtin import (
        apps,
        core,
        io_libs,
        math_libs,
        mpi_stack,
        python_stack,
        runtimes,
        tools,
    )

    classes: List[Type[PackageBase]] = []
    for module in (core, python_stack, mpi_stack, math_libs, io_libs, runtimes, tools, apps):
        classes.extend(_module_packages(module))
    return classes


def build_repository(name: str = "builtin") -> Repository:
    """Construct a fresh :class:`Repository` with the whole builtin catalog."""
    repo = Repository(name=name, packages=all_package_classes())
    # Provider preferences (user configuration in real Spack): these drive the
    # "non-preferred providers" criteria (Table II, criteria 4 and 7).
    repo.set_provider_preference("mpi", ["mpich", "openmpi", "mvapich2", "mpilander"])
    repo.set_provider_preference("blas", ["openblas", "netlib-lapack"])
    repo.set_provider_preference("lapack", ["openblas", "netlib-lapack"])
    repo.set_provider_preference("scalapack", ["netlib-scalapack"])
    repo.set_provider_preference("pkgconfig", ["pkgconf"])
    repo.set_provider_preference("fftw-api", ["fftw"])
    return repo
