"""The builtin package repository: an E4S-style catalog.

The packages here model (a representative subset of) the Extreme-scale
Scientific Software Stack the paper evaluates on: the virtual MPI/BLAS/LAPACK
ecosystem, the build-tool tangle (cmake, python, perl, autotools), math
libraries, I/O libraries, performance tools, GPU runtimes, and a set of
application roots.  Metadata (versions, variants, conditional dependencies,
conflicts, virtual providers) approximates the real Spack recipes closely
enough to reproduce the paper's qualitative behaviour:

* packages that can reach ``mpi`` drag in hundreds of possible dependencies
  (the two-cluster structure of Figures 7a–7c);
* conditional dependencies such as ``hpctoolkit``'s ``depends_on('mpi',
  when='+mpi')`` reproduce the Section VI-B usability cases;
* ``berkeleygw`` reproduces the provider-specialization case;
* ``mpilander`` (an MPI provider that needs cmake) creates the circular
  *possible* dependencies discussed in Section VII-B.
"""

from __future__ import annotations

import inspect
from typing import List, Tuple, Type

from repro.spack.package import PackageBase
from repro.spack.repo import Repository, RepositoryShard, ShardedRepository

#: The builtin shard layout: one shard per catalog module, ordered roughly
#: by stability (toolchain first, applications last).  The concretization
#: session grounds one base layer per shard in this order and caches every
#: prefix, so edits to the *later* — more frequently churning — shards
#: invalidate the fewest layers (an ``apps`` edit re-grounds exactly one).
SHARD_MODULES: Tuple[str, ...] = (
    "core",
    "python_stack",
    "mpi_stack",
    "math_libs",
    "io_libs",
    "runtimes",
    "tools",
    "apps",
)


def _builtin_modules():
    from repro.spack.builtin import (
        apps,
        core,
        io_libs,
        math_libs,
        mpi_stack,
        python_stack,
        runtimes,
        tools,
    )

    modules = {
        "core": core,
        "python_stack": python_stack,
        "mpi_stack": mpi_stack,
        "math_libs": math_libs,
        "io_libs": io_libs,
        "runtimes": runtimes,
        "tools": tools,
        "apps": apps,
    }
    return [(name, modules[name]) for name in SHARD_MODULES]


def _module_packages(module) -> List[Type[PackageBase]]:
    classes = []
    for _, obj in sorted(vars(module).items()):
        if (
            inspect.isclass(obj)
            and issubclass(obj, PackageBase)
            and obj.__module__ == module.__name__
        ):
            classes.append(obj)
    return classes


def all_package_classes() -> List[Type[PackageBase]]:
    """Every package class in the builtin catalog."""
    classes: List[Type[PackageBase]] = []
    for _name, module in _builtin_modules():
        classes.extend(_module_packages(module))
    return classes


def _set_builtin_preferences(repo: Repository) -> Repository:
    # Provider preferences (user configuration in real Spack): these drive the
    # "non-preferred providers" criteria (Table II, criteria 4 and 7).
    repo.set_provider_preference("mpi", ["mpich", "openmpi", "mvapich2", "mpilander"])
    repo.set_provider_preference("blas", ["openblas", "netlib-lapack"])
    repo.set_provider_preference("lapack", ["openblas", "netlib-lapack"])
    repo.set_provider_preference("scalapack", ["netlib-scalapack"])
    repo.set_provider_preference("pkgconfig", ["pkgconf"])
    repo.set_provider_preference("fftw-api", ["fftw"])
    return repo


def build_repository(name: str = "builtin") -> Repository:
    """A fresh *monolithic* :class:`Repository` with the whole catalog.

    Kept as the reference flavor: sharded-vs-monolithic equivalence tests
    concretize against both and assert element-wise identical results.
    """
    return _set_builtin_preferences(Repository(name=name, packages=all_package_classes()))


def build_sharded_repository(name: str = "builtin") -> ShardedRepository:
    """A fresh :class:`ShardedRepository`, one shard per catalog module.

    Same packages and preferences as :func:`build_repository`; only the
    registration structure (and therefore the content-hash granularity and
    the session's base-grounding layering) differs.
    """
    shards = [
        RepositoryShard(shard_name, packages=_module_packages(module))
        for shard_name, module in _builtin_modules()
    ]
    return _set_builtin_preferences(ShardedRepository(name=name, shards=shards))
