"""GPU runtimes and performance-portability layers (CUDA, ROCm, Kokkos, RAJA)."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, Package


class Cuda(Package):
    """The NVIDIA CUDA toolkit (modeled as an ordinary package)."""

    version("12.1.1")
    version("11.8.0")
    version("11.4.4")
    version("10.2.89")

    variant("dev", default=False, description="Install development tools")
    conflicts("target=ppc64le", when="@12:", msg="CUDA 12 dropped ppc64le support")
    conflicts("%gcc@12:", when="@:11.8.0", msg="older CUDA does not support gcc 12+")


class LlvmAmdgpu(CMakePackage):
    """The ROCm fork of LLVM."""

    name = "llvm-amdgpu"

    version("5.4.3")
    version("5.2.3")
    depends_on("zlib")
    depends_on("ncurses")
    depends_on("python", type="build")
    depends_on("perl", type="build")
    conflicts("target=ppc64le", msg="ROCm is x86_64-only in this model")
    conflicts("target=aarch64:", msg="ROCm is x86_64-only in this model")


class HsaRocrDev(CMakePackage):
    """ROCm HSA runtime."""

    name = "hsa-rocr-dev"

    version("5.4.3")
    version("5.2.3")
    depends_on("llvm-amdgpu")
    depends_on("libelf")
    depends_on("numactl")
    conflicts("target=ppc64le", msg="ROCm is x86_64-only in this model")


class Hip(CMakePackage):
    """The HIP GPU programming interface for AMD GPUs."""

    version("5.4.3")
    version("5.2.3")
    depends_on("hsa-rocr-dev")
    depends_on("llvm-amdgpu")
    depends_on("perl", type="build")
    conflicts("target=ppc64le", msg="ROCm is x86_64-only in this model")


class RocmCmake(CMakePackage):
    """CMake helpers for the ROCm stack."""

    name = "rocm-cmake"

    version("5.4.3")
    version("5.2.3")


class Rocblas(CMakePackage):
    """ROCm BLAS implementation."""

    version("5.4.3")
    version("5.2.3")
    depends_on("hip")
    depends_on("rocm-cmake", type="build")
    depends_on("python", type="build")


class Rocsparse(CMakePackage):
    """ROCm sparse linear algebra."""

    version("5.4.3")
    version("5.2.3")
    depends_on("hip")
    depends_on("rocprim")
    depends_on("rocm-cmake", type="build")


class Rocsolver(CMakePackage):
    """ROCm dense solvers."""

    version("5.4.3")
    version("5.2.3")
    depends_on("rocblas")
    depends_on("hip")
    depends_on("rocm-cmake", type="build")


class Rocprim(CMakePackage):
    """ROCm parallel primitives."""

    version("5.4.3")
    version("5.2.3")
    depends_on("hip")
    depends_on("rocm-cmake", type="build")


class Rocthrust(CMakePackage):
    """Thrust ported to HIP/ROCm."""

    version("5.4.3")
    version("5.2.3")
    depends_on("hip")
    depends_on("rocprim")
    depends_on("rocm-cmake", type="build")


class Kokkos(CMakePackage):
    """C++ performance-portability programming ecosystem."""

    version("4.0.01")
    version("3.7.02")
    version("3.6.01")

    variant("openmp", default=True, description="OpenMP backend")
    variant("cuda", default=False, description="CUDA backend")
    variant("rocm", default=False, description="HIP backend")
    variant("serial", default=True, description="Serial backend")
    variant("shared", default=True, description="Build shared libraries")
    variant("cuda_lambda", default=False, description="Enable CUDA lambdas")

    depends_on("cuda@10.1:", when="+cuda")
    depends_on("kokkos-nvcc-wrapper", when="+cuda")
    depends_on("hip", when="+rocm")
    conflicts("+cuda", when="+rocm", msg="pick one GPU backend")
    conflicts("+cuda_lambda", when="~cuda", msg="CUDA lambdas require the CUDA backend")
    conflicts("%gcc@:7", when="@4:", msg="Kokkos 4 requires C++17")


class KokkosNvccWrapper(Package):
    """Wrapper that makes nvcc usable as a Kokkos compiler."""

    name = "kokkos-nvcc-wrapper"

    version("4.0.01")
    version("3.7.02")
    depends_on("cuda")


class KokkosKernels(CMakePackage):
    """Math kernels built on Kokkos."""

    name = "kokkos-kernels"

    version("4.0.01")
    version("3.7.01")

    variant("cuda", default=False, description="CUDA backend")
    variant("openmp", default=True, description="OpenMP backend")
    depends_on("kokkos")
    depends_on("kokkos+cuda", when="+cuda")
    depends_on("kokkos+openmp", when="+openmp")
    depends_on("blas")


class Camp(CMakePackage):
    """Compiler-agnostic metaprogramming library (RAJA portability suite)."""

    version("2022.10.1")
    version("2022.03.2")
    version("0.2.3")

    variant("cuda", default=False, description="CUDA support")
    variant("rocm", default=False, description="HIP support")
    depends_on("blt", type="build")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")


class Blt(Package):
    """CMake-based build and test framework from LLNL."""

    version("0.5.3")
    version("0.5.2")
    version("0.4.1")
    depends_on("cmake", type="run")


class Raja(CMakePackage):
    """Performance-portability abstractions for loop-based codes."""

    version("2022.10.4")
    version("2022.03.0")
    version("0.14.0")

    variant("openmp", default=True, description="OpenMP backend")
    variant("cuda", default=False, description="CUDA backend")
    variant("rocm", default=False, description="HIP backend")
    variant("shared", default=True, description="Build shared libraries")
    variant("examples", default=False, description="Build examples")

    depends_on("blt", type="build")
    depends_on("camp")
    depends_on("camp+cuda", when="+cuda")
    depends_on("camp+rocm", when="+rocm")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")
    conflicts("+cuda", when="+rocm", msg="pick one GPU backend")


class Umpire(CMakePackage):
    """Memory-resource management for heterogeneous architectures."""

    version("2022.10.0")
    version("2022.03.1")
    version("6.0.0")

    variant("openmp", default=False, description="OpenMP support")
    variant("cuda", default=False, description="CUDA support")
    variant("rocm", default=False, description="HIP support")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("blt", type="build")
    depends_on("camp")
    depends_on("camp+cuda", when="+cuda")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")


class Chai(CMakePackage):
    """Managed arrays that copy themselves between memory spaces."""

    version("2022.10.0")
    version("2022.03.0")

    variant("cuda", default=False, description="CUDA support")
    variant("rocm", default=False, description="HIP support")
    depends_on("umpire")
    depends_on("raja")
    depends_on("blt", type="build")
    depends_on("camp")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")


class Adiak(CMakePackage):
    """Collects metadata about HPC application runs."""

    version("0.4.0")
    version("0.2.2")
    variant("mpi", default=True, description="MPI metadata")
    depends_on("mpi", when="+mpi")


class Caliper(CMakePackage):
    """Application-level performance instrumentation library."""

    version("2.9.0")
    version("2.8.0")

    variant("mpi", default=True, description="MPI support")
    variant("papi", default=True, description="PAPI counter support")
    variant("libunwind", default=True, description="Callpath sampling via libunwind")
    variant("cuda", default=False, description="CUpti support")
    depends_on("adiak")
    depends_on("mpi", when="+mpi")
    depends_on("papi", when="+papi")
    depends_on("libunwind", when="+libunwind")
    depends_on("cuda", when="+cuda")
    depends_on("python", type="build")


class Upcxx(Package):
    """Partitioned Global Address Space (PGAS) library for C++."""

    version("2023.3.0")
    version("2022.9.0")

    variant("mpi", default=False, description="Enable the MPI-based spawner")
    variant("cuda", default=False, description="CUDA memory kinds")
    depends_on("mpi", when="+mpi")
    depends_on("cuda", when="+cuda")
    depends_on("python", type="build")


class Qthreads(AutotoolsPackage):
    """Lightweight locality-aware user-level threading."""

    version("1.18")
    version("1.16")
    variant("hwloc", default=True, description="Use hwloc for topology")
    depends_on("hwloc", when="+hwloc")


class Gasnet(AutotoolsPackage):
    """Networking middleware for PGAS runtimes."""

    version("2023.3.0")
    version("2022.9.0")
    variant("mpi", default=False, description="MPI conduit")
    variant("ofi", default=False, description="OFI conduit")
    depends_on("mpi", when="+mpi")
    depends_on("libfabric", when="+ofi")
