"""MPI implementations and the communication/runtime layer.

The virtual ``mpi`` package and its providers are central to the paper: they
drive provider selection (Section V), the usability improvements of Section
VI-B (``hpctoolkit ^mpich``), and the possible-dependency clustering of
Section VII-B.  ``mpilander`` is the paper's example of an MPI provider that
itself needs cmake, creating circular *possible* dependencies
(``mpilander -> cmake -> ... -> valgrind -> mpi``).
"""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, Package


class Mpich(AutotoolsPackage):
    """High-performance implementation of the MPI standard."""

    version("4.1.1")
    version("4.0.2")
    version("3.4.3")
    version("3.1")

    provides("mpi")
    provides("mpi@:3.1", when="@3:3.4.3")
    provides("mpi@:4.0", when="@4:")

    variant(
        "device",
        default="ch4",
        values=("ch3", "ch4"),
        description="Communication device implementation",
    )
    variant("pmi", default="pmi", values=("pmi", "pmi2", "pmix"), description="PMI interface")
    variant("fortran", default=True, description="Build Fortran bindings")
    variant("romio", default=True, description="Build the ROMIO MPI-IO implementation")
    variant("slurm", default=False, description="Use Slurm for process management")
    variant("libfabric", default=True, description="Use libfabric (OFI) for networking")

    depends_on("hwloc")
    depends_on("libfabric", when="+libfabric")
    depends_on("slurm", when="+slurm")
    depends_on("libpciaccess")
    depends_on("libxml2")
    depends_on("findutils", type="build")
    depends_on("pkgconfig", type="build")


class Openmpi(AutotoolsPackage):
    """Open MPI: an open-source MPI implementation."""

    version("4.1.5")
    version("4.1.4")
    version("4.0.7")
    version("3.1.6", deprecated=True)

    provides("mpi")
    provides("mpi@:3.1", when="@3.0.0:")

    variant("cuda", default=False, description="CUDA-aware MPI")
    variant("pmix", default=True, description="Use PMIx for process management")
    variant("romio", default=True, description="Build the ROMIO MPI-IO implementation")
    variant(
        "fabrics",
        default="ucx",
        values=("ucx", "ofi", "none"),
        description="High-speed fabric support",
    )
    variant("legacylaunchers", default=False, description="Keep mpirun/mpiexec")

    depends_on("hwloc")
    depends_on("libevent")
    depends_on("openssl")
    depends_on("pmix", when="+pmix")
    depends_on("ucx", when="fabrics=ucx")
    depends_on("libfabric", when="fabrics=ofi")
    depends_on("cuda", when="+cuda")
    depends_on("zlib")
    depends_on("perl", type="build")
    depends_on("pkgconfig", type="build")


class Mvapich2(AutotoolsPackage):
    """MVAPICH2: MPI over InfiniBand and friends."""

    version("2.3.7")
    version("2.3.6")

    provides("mpi")
    provides("mpi@:3.1")

    variant("wrapperrpath", default=True, description="Enable wrapper rpath")
    variant("debug", default=False, description="Enable debug info")
    depends_on("libpciaccess")
    depends_on("libxml2")
    depends_on("bison", type="build")
    conflicts("target=aarch64:", msg="mvapich2 is not validated on ARM64 here")


class Mpilander(CMakePackage):
    """A single-node MPI implementation (the paper's circular-dependency example)."""

    version("0.1.0")

    provides("mpi")
    provides("mpi@:3.1")
    conflicts("%intel", msg="mpilander requires a modern C++ compiler")


class Libfabric(AutotoolsPackage):
    """Open Fabric Interfaces (OFI) user-space library."""

    version("1.18.0")
    version("1.17.1")
    version("1.14.1")

    variant(
        "fabrics",
        default="sockets",
        values=("sockets", "tcp", "udp", "verbs", "shm"),
        multi=True,
        description="Enabled fabrics",
    )
    variant("debug", default=False, description="Enable debug logging")
    depends_on("pkgconfig", type="build")


class Ucx(AutotoolsPackage):
    """Unified Communication X."""

    version("1.14.0")
    version("1.13.1")
    version("1.12.1")

    variant("thread_multiple", default=True, description="MPI_THREAD_MULTIPLE support")
    variant("cuda", default=False, description="CUDA transport")
    variant("rocm", default=False, description="ROCm transport")
    depends_on("numactl")
    depends_on("cuda", when="+cuda")
    depends_on("hip", when="+rocm")
    depends_on("pkgconfig", type="build")


class Pmix(AutotoolsPackage):
    """Process Management Interface for Exascale."""

    version("4.2.3")
    version("4.1.2")
    version("3.2.3")

    variant("python", default=False, description="Python bindings")
    depends_on("hwloc")
    depends_on("libevent")
    depends_on("zlib")
    depends_on("python", when="+python")
    depends_on("pkgconfig", type="build")


class Slurm(AutotoolsPackage):
    """Workload manager (client libraries)."""

    version("23.02.1")
    version("22.05.8")

    variant("pmix", default=True, description="Build PMIx plugin")
    variant("readline", default=True, description="readline support in scontrol")
    depends_on("munge")
    depends_on("pmix", when="+pmix")
    depends_on("readline", when="+readline")
    depends_on("curl")
    depends_on("openssl")
    depends_on("pkgconfig", type="build")


class Munge(AutotoolsPackage):
    """MUNGE Uid 'N' Gid Emporium authentication service."""

    version("0.5.15")
    version("0.5.14")
    depends_on("openssl")
    depends_on("libgcrypt")


class Libgcrypt(AutotoolsPackage):
    """General purpose cryptographic library."""

    version("1.10.2")
    version("1.9.4")
    depends_on("libgpg-error")


class LibgpgError(AutotoolsPackage):
    """Common error values for GnuPG components."""

    version("1.47")
    version("1.45")


class FluxCore(AutotoolsPackage):
    """A next-generation resource manager framework."""

    name = "flux-core"

    version("0.49.0")
    version("0.47.0")

    variant("cuda", default=False, description="CUDA-aware job management")
    depends_on("czmq")
    depends_on("hwloc")
    depends_on("libyaml")
    depends_on("lua")
    depends_on("python@3.6:")
    depends_on("py-cffi", type=("build", "run"))
    depends_on("py-pyyaml", type=("build", "run"))
    depends_on("sqlite")
    depends_on("util-linux-uuid")
    depends_on("libedit")
    depends_on("cuda", when="+cuda")
    depends_on("pkgconfig", type="build")


class FluxSched(CMakePackage):
    """Advanced job scheduling for flux-core."""

    name = "flux-sched"

    version("0.27.0")
    version("0.25.0")
    depends_on("flux-core")
    depends_on("boost@1.66:")
    depends_on("libedit")
    depends_on("python@3.6:")
    depends_on("yaml-cpp")


class Czmq(AutotoolsPackage):
    """High-level C binding for ZeroMQ."""

    version("4.2.1")
    version("4.2.0")
    depends_on("libzmq")
    depends_on("util-linux-uuid")


class Libzmq(AutotoolsPackage):
    """ZeroMQ messaging kernel."""

    version("4.3.4")
    version("4.3.3")
    depends_on("libsodium")


class Libsodium(AutotoolsPackage):
    """Modern, easy-to-use crypto library."""

    version("1.0.18")
    version("1.0.17")


class PyCffi(Package):
    """C Foreign Function Interface for Python."""

    name = "py-cffi"

    version("1.15.1")
    version("1.15.0")
    depends_on("python", type=("build", "run"))
    depends_on("py-setuptools", type="build")
    depends_on("libffi")


class Lua(AutotoolsPackage):
    """Lightweight scripting language."""

    version("5.4.4")
    version("5.3.6")
    depends_on("ncurses")
    depends_on("readline")
