"""I/O libraries: HDF5, NetCDF, ADIOS2, and the checkpoint/restart stack."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, Package


class Hdf5(CMakePackage):
    """HDF5: a data model, library, and file format for storing and managing data.

    This is the running example of the paper (Figures 4 and 6 concretize an
    ``hdf5`` build and reuse most of its dependencies from the store).
    """

    version("1.14.1")
    version("1.13.1")
    version("1.12.2")
    version("1.10.8")
    version("1.10.2")
    version("1.8.22", deprecated=True)

    variant("mpi", default=True, description="Enable parallel HDF5 (MPI-IO)")
    variant("hl", default=False, description="Build the high-level API")
    variant("cxx", default=False, description="Build the C++ API")
    variant("fortran", default=False, description="Build the Fortran API")
    variant("szip", default=False, description="Enable szip compression")
    variant("threadsafe", default=False, description="Thread-safe library")
    variant("shared", default=True, description="Build shared libraries")
    variant(
        "api",
        default="default",
        values=("default", "v18", "v110", "v112"),
        description="Compatibility API version",
    )

    depends_on("zlib@1.1.2:")
    depends_on("mpi", when="+mpi")
    depends_on("szip", when="+szip")
    depends_on("pkgconfig", type="build")
    conflicts("+threadsafe", when="+cxx", msg="HDF5 C++ API is not thread safe")
    conflicts("api=v18", when="@1.8:1.9", msg="cannot select a newer API than the library")


class Szip(AutotoolsPackage):
    """Implementation of the extended-Rice lossless compression algorithm."""

    version("2.1.1")
    version("2.1")


class NetcdfC(AutotoolsPackage):
    """NetCDF C library."""

    name = "netcdf-c"

    version("4.9.2")
    version("4.8.1")

    variant("mpi", default=True, description="Parallel I/O via HDF5")
    variant("parallel-netcdf", default=False, description="Parallel I/O via PnetCDF")
    variant("dap", default=False, description="Enable DAP remote access")
    depends_on("hdf5+mpi", when="+mpi")
    depends_on("hdf5", when="~mpi")
    depends_on("parallel-netcdf", when="+parallel-netcdf")
    depends_on("mpi", when="+mpi")
    depends_on("curl", when="+dap")
    depends_on("zlib")
    depends_on("xz")
    depends_on("m4", type="build")


class ParallelNetcdf(AutotoolsPackage):
    """PnetCDF: parallel I/O for NetCDF files."""

    name = "parallel-netcdf"

    version("1.12.3")
    version("1.12.2")

    variant("fortran", default=True, description="Fortran interfaces")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("mpi")
    depends_on("m4", type="build")
    depends_on("perl", type="build")


class Adios2(CMakePackage):
    """The Adaptable Input Output System, version 2."""

    version("2.9.0")
    version("2.8.3")

    variant("mpi", default=True, description="MPI support")
    variant("hdf5", default=False, description="HDF5 engine")
    variant("python", default=False, description="Python bindings")
    variant("sst", default=True, description="Staging engine")
    variant("bzip2", default=True, description="BZip2 compression")
    variant("zfp", default=True, description="ZFP lossy compression")
    variant("sz", default=False, description="SZ lossy compression")
    depends_on("mpi", when="+mpi")
    depends_on("hdf5+mpi", when="+hdf5+mpi")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")
    depends_on("py-mpi4py", when="+python+mpi")
    depends_on("bzip2", when="+bzip2")
    depends_on("zfp", when="+zfp")
    depends_on("sz", when="+sz")
    depends_on("libfabric", when="+sst")
    depends_on("pkgconfig", type="build")


class Hdf5VolAsync(CMakePackage):
    """Asynchronous I/O VOL connector for HDF5."""

    name = "hdf5-vol-async"

    version("1.5")
    version("1.4")
    depends_on("hdf5+mpi+threadsafe")
    depends_on("argobots")
    depends_on("mpi")


class Argobots(AutotoolsPackage):
    """Lightweight low-level threading and tasking framework."""

    version("1.1")
    version("1.0.1")
    variant("perf", default=True, description="Performance optimizations")


class Conduit(CMakePackage):
    """Simplified data exchange for HPC simulations."""

    version("0.8.7")
    version("0.8.4")

    variant("mpi", default=True, description="MPI support")
    variant("hdf5", default=True, description="HDF5 I/O")
    variant("python", default=False, description="Python bindings")
    depends_on("mpi", when="+mpi")
    depends_on("hdf5", when="+hdf5")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")


class DarshanRuntime(AutotoolsPackage):
    """I/O characterization runtime library."""

    name = "darshan-runtime"

    version("3.4.2")
    version("3.4.0")

    variant("mpi", default=True, description="Instrument MPI applications")
    variant("hdf5", default=False, description="Instrument HDF5 calls")
    depends_on("mpi", when="+mpi")
    depends_on("hdf5", when="+hdf5")
    depends_on("zlib")


class DarshanUtil(AutotoolsPackage):
    """Darshan log analysis utilities."""

    name = "darshan-util"

    version("3.4.2")
    version("3.4.0")
    variant("bzip2", default=False, description="bzip2 log compression")
    depends_on("zlib")
    depends_on("bzip2", when="+bzip2")


class Scr(CMakePackage):
    """Scalable Checkpoint / Restart library."""

    version("3.0.1")
    version("3.0")

    variant("libyogrt", default=True, description="Use libyogrt for time-left queries")
    depends_on("mpi")
    depends_on("axl")
    depends_on("er")
    depends_on("kvtree+mpi")
    depends_on("rankstr")
    depends_on("redset")
    depends_on("shuffile")
    depends_on("spath+mpi")
    depends_on("libyogrt", when="+libyogrt")
    depends_on("zlib")


class Axl(CMakePackage):
    """Asynchronous transfer library for checkpointing."""

    version("0.7.1")
    version("0.6.0")
    depends_on("kvtree")
    depends_on("zlib")


class Kvtree(CMakePackage):
    """Key-value tree data structure for HPC tools."""

    version("1.4.0")
    version("1.3.0")
    variant("mpi", default=True, description="MPI serialization helpers")
    depends_on("mpi", when="+mpi")


class Er(CMakePackage):
    """Encoding and redundancy library (SCR component)."""

    version("0.4.0")
    version("0.3.0")
    depends_on("kvtree+mpi")
    depends_on("rankstr")
    depends_on("redset")
    depends_on("shuffile")
    depends_on("mpi")


class Rankstr(CMakePackage):
    """String utilities across MPI ranks."""

    version("0.3.0")
    version("0.2.0")
    depends_on("mpi")


class Redset(CMakePackage):
    """Redundancy descriptor sets for checkpoints."""

    version("0.3.0")
    version("0.2.0")
    depends_on("kvtree+mpi")
    depends_on("rankstr")
    depends_on("mpi")


class Shuffile(CMakePackage):
    """Shuffle files between MPI ranks."""

    version("0.3.0")
    version("0.2.0")
    depends_on("kvtree+mpi")
    depends_on("mpi")


class Spath(CMakePackage):
    """Path manipulation for HPC tools."""

    version("0.2.0")
    version("0.1.0")
    variant("mpi", default=True, description="MPI broadcast of paths")
    depends_on("mpi", when="+mpi")


class Libyogrt(AutotoolsPackage):
    """Your One Get Remaining Time library."""

    version("1.33")
    version("1.27")
    variant("scheduler", default="slurm", values=("slurm", "lsf", "none"), description="Scheduler backend")
    depends_on("slurm", when="scheduler=slurm")


class Mpifileutils(CMakePackage):
    """File utilities designed for scalable parallel execution."""

    version("0.11.1")
    version("0.11")

    variant("lustre", default=False, description="Lustre support")
    variant("xattr", default=True, description="Copy extended attributes")
    depends_on("mpi")
    depends_on("libcircle")
    depends_on("lwgrp")
    depends_on("dtcmp")
    depends_on("libarchive")
    depends_on("openssl")


class Libcircle(AutotoolsPackage):
    """Distributed termination detection / work-stealing queue."""

    version("0.3")
    version("0.2.1-rc.1")
    depends_on("mpi")
    depends_on("pkgconfig", type="build")


class Lwgrp(AutotoolsPackage):
    """Lightweight group representation for MPI."""

    version("1.0.5")
    version("1.0.4")
    depends_on("mpi")


class Dtcmp(AutotoolsPackage):
    """Datatype comparison operations for MPI."""

    version("1.1.4")
    version("1.1.3")
    depends_on("mpi")
    depends_on("lwgrp")


class Libarchive(AutotoolsPackage):
    """Multi-format archive and compression library."""

    version("3.6.2")
    version("3.5.3")
    depends_on("zlib")
    depends_on("bzip2")
    depends_on("xz")
    depends_on("zstd")
    depends_on("openssl")
    depends_on("libxml2")


class Unifyfs(AutotoolsPackage):
    """User-level burst buffer file system."""

    version("1.1")
    version("1.0.1")

    variant("hdf5", default=False, description="Build HDF5 examples")
    depends_on("gotcha")
    depends_on("mpi")
    depends_on("openssl")
    depends_on("mochi-margo")
    depends_on("hdf5", when="+hdf5")


class MochiMargo(AutotoolsPackage):
    """Argobots-aware Mercury RPC wrapper."""

    name = "mochi-margo"

    version("0.13.1")
    version("0.11.1")
    depends_on("argobots")
    depends_on("mercury")
    depends_on("json-c")
    depends_on("pkgconfig", type="build")


class Mercury(CMakePackage):
    """RPC framework for HPC."""

    version("2.3.0")
    version("2.2.0")
    variant("ofi", default=True, description="libfabric plugin")
    variant("boostsys", default=True, description="Use Boost preprocessor")
    depends_on("libfabric", when="+ofi")
    depends_on("boost", when="+boostsys")


class JsonC(CMakePackage):
    """JSON implementation in C."""

    name = "json-c"

    version("0.16")
    version("0.15")
